//! Serialization support types.

pub use crate::Serialize;
