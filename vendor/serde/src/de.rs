//! Deserialization support types.

pub use crate::Deserialize;

/// A deserialization (or serialization) error with a human-readable message.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Owned deserialization: satisfied by every [`Deserialize`] type here
/// because the value tree is always owned.
pub trait DeserializeOwned: Deserialize {}

impl<T: Deserialize> DeserializeOwned for T {}
