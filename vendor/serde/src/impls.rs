//! `Serialize`/`Deserialize` implementations for std types.

use crate::de::Error;
use crate::value::Value;
use crate::{Deserialize, Serialize};

macro_rules! unsigned {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::U64(*self as u64)
                }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    let n = v
                        .as_u64()
                        .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                    <$t>::try_from(n)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
                }
            }
        )*
    };
}

unsigned!(u8, u16, u32, u64, usize);

macro_rules! signed {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    let n = *self as i64;
                    if n >= 0 {
                        Value::U64(n as u64)
                    } else {
                        Value::I64(n)
                    }
                }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    let n = v
                        .as_i64()
                        .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                    <$t>::try_from(n)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
                }
            }
        )*
    };
}

signed!(i8, i16, i32, i64, isize);

macro_rules! float {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::F64(*self as f64)
                }
            }
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    v.as_f64()
                        .map(|x| x as $t)
                        .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
                }
            }
        )*
    };
}

float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! tuple {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$idx.to_value()),+])
                }
            }
            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                    let expected = [$($idx),+].len();
                    if arr.len() != expected {
                        return Err(Error::custom(format!(
                            "expected tuple of length {expected}, got {}",
                            arr.len()
                        )));
                    }
                    Ok(($($name::from_value(&arr[$idx])?,)+))
                }
            }
        )*
    };
}

tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected map array"))?;
        arr.iter().map(<(K, V)>::from_value).collect()
    }
}
