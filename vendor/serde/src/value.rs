//! The owned JSON-like value tree shared by `serde` and `serde_json`.

use crate::de::Error;

/// An owned JSON-like value.
///
/// Objects preserve insertion order (serde_json's `preserve_order`
/// behaviour), which keeps serialized output stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up `key` in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field lookup; missing keys and non-objects yield `Null`.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element lookup; out-of-range and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {
        $(impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(unused_comparisons)]
                if *other < 0 {
                    self.as_i64() == Some(*other as i64)
                } else {
                    self.as_u64() == Some(*other as u64)
                }
            }
        })*
    };
}

eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::F64(x) if x == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(n: $t) -> Value {
                #[allow(unused_comparisons)]
                if n < 0 {
                    Value::I64(n as i64)
                } else {
                    Value::U64(n as u64)
                }
            }
        })*
    };
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::F64(x as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
