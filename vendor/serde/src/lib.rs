//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the thin slice of serde it actually uses: `Serialize`/`Deserialize`
//! traits over an owned JSON-like [`value::Value`] tree, derive macros with
//! serde's externally-tagged enum representation, and `#[serde(skip)]`.
//! The sibling `serde_json` shim supplies the text format. This is not a
//! general serde replacement; it is just enough for config round-trips,
//! crash-recovery snapshots, and the Autopilot config store.

pub mod de;
pub mod ser;
pub mod value;

mod impls;

pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// Serialization into the owned [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from a borrowed [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}
