//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace's micro-benchmarks use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `sample_size`) with a simple
//! measure-and-print harness: per benchmark it warms up, then runs
//! `sample_size` samples of auto-calibrated batches and reports
//! min / median / mean time per iteration. No statistics framework, no
//! HTML reports — just numbers on stdout, which is what a CI log needs.

use std::time::{Duration, Instant};

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Mirrors real criterion's CLI hook; arguments are ignored here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_bench(name, sample_size, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (separator line).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.report(name);
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`, storing per-iteration times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch calibration: target ~2ms per sample.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < Duration::from_millis(30) {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((0.002 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
