//! Vendored minimal stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest this workspace uses: the `proptest!` macro,
//! `prop_assert*` macros, `prop_oneof!`, `any::<T>()`, range strategies,
//! tuple composition, `prop_map`, `proptest::collection::vec`, and
//! `proptest::option::of`.
//!
//! Sampling is deterministic (a fixed per-case seed), so test runs are
//! reproducible. There is **no shrinking**: a failing case panics with the
//! sampled inputs via the standard assertion message instead.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `ProptestConfig::cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
