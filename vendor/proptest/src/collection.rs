//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
