//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Some` three times out of four, `None` otherwise
/// (matching proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
