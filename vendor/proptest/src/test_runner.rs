//! Deterministic case generation.

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for one numbered case; fixed seeding keeps runs reproducible.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1) ^ 0xB5AD_4ECE_DA1C_E2A9,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
