//! Strategies: deterministic random generation of test inputs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Flat-maps: the sampled value picks the follow-up strategy.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (type erasure).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> T, T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// The `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> S2, S2: Strategy> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128) + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*
    };
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*
    };
}

float_ranges!(f32, f64);

/// `any::<T>()`: the full-range strategy for primitives.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: the simulator rejects NaN/inf inputs anyway.
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
