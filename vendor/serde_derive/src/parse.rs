//! Hand-rolled parsing of derive input token streams.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

pub struct Input {
    pub name: String,
    pub shape: Shape,
}

pub enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

pub struct Field {
    pub name: String,
    pub skip: bool,
    pub default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: the field is omitted from
    /// serialized output whenever `path(&value)` returns true.
    pub skip_ser_if: Option<String>,
}

pub struct Variant {
    pub name: String,
    pub kind: VariantKind,
}

pub enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading attributes; returns the accumulated serde flags.
///
/// `#[serde(skip)]` means absent on the wire and `Default::default()` on
/// read; `#[serde(default)]` means serialized normally but defaulted when
/// the field is missing from the input (forward-compatible spec files);
/// `#[serde(skip_serializing_if = "path")]` omits the field from output
/// when the predicate holds (fixture-stable new fields).
fn skip_attributes(tokens: &mut Tokens) -> crate::SerdeFlags {
    let mut flags = crate::SerdeFlags::default();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let f = crate::serde_attr_flags(g.stream());
                        flags.skip |= f.skip;
                        flags.default |= f.default;
                        if f.skip_ser_if.is_some() {
                            flags.skip_ser_if = f.skip_ser_if;
                        }
                    }
                    other => panic!("serde_derive: malformed attribute, got {other:?}"),
                }
            }
            _ => return flags,
        }
    }
}

/// Consumes a visibility qualifier if present.
fn skip_visibility(tokens: &mut Tokens) {
    if let Some(TokenTree::Ident(i)) = tokens.peek() {
        if i.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes tokens until a top-level comma (outside `<...>`), eating the
/// comma itself.
fn skip_type(tokens: &mut Tokens) {
    let mut angle_depth = 0i32;
    for t in tokens.by_ref() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Splits a parenthesized tuple-field list into its arity.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_any = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => arity += 1,
                _ => {}
            },
            _ => saw_any = true,
        }
    }
    if saw_any {
        arity + 1
    } else {
        0
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let flags = skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            return fields;
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut tokens);
        fields.push(Field {
            name,
            skip: flags.skip,
            default: flags.default,
            skip_ser_if: flags.skip_ser_if,
        });
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let Some(tt) = tokens.next() else {
            return variants;
        };
        let name = match tt {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant (`= expr`) is not supported with data; a
        // plain `= <literal>` on unit variants is tolerated by skipping to
        // the next comma.
        while let Some(tt) = tokens.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
        variants.push(Variant { name, kind });
    }
}

pub fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let kw = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored shim");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Input { name, shape }
}
