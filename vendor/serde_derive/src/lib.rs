//! Vendored minimal `serde_derive`.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) covering
//! the shapes this workspace derives on: named structs (with
//! `#[serde(skip)]` fields), tuple structs, unit structs, and enums with
//! unit / tuple / struct variants using serde's externally-tagged JSON
//! representation. Generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Field, Input, Shape, VariantKind};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse::parse(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse::parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

fn ser_named_fields(fields: &[Field], access: &str) -> String {
    let mut body = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let push = format!(
            "__fields.push((\"{name}\".to_string(), ::serde::Serialize::to_value({access}{name})));\n",
            name = f.name,
        );
        match &f.skip_ser_if {
            Some(pred) => body.push_str(&format!(
                "if !{pred}({access}{name}) {{\n{push}}}\n",
                name = f.name,
            )),
            None => body.push_str(&push),
        }
    }
    body
}

fn de_named_fields(ty: &str, fields: &[Field], obj: &str) -> String {
    let mut body = String::new();
    for f in fields {
        if f.skip {
            body.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default || f.skip_ser_if.is_some() {
            body.push_str(&format!(
                "{name}: match {obj}.iter().find(|(__k, _)| __k.as_str() == \"{name}\") {{\n\
                     ::std::option::Option::Some((_, __val)) => ::serde::Deserialize::from_value(__val)?,\n\
                     ::std::option::Option::None => ::std::default::Default::default(),\n\
                 }},\n",
                name = f.name,
                obj = obj,
            ));
        } else {
            body.push_str(&format!(
                "{name}: match {obj}.iter().find(|(__k, _)| __k.as_str() == \"{name}\") {{\n\
                     ::std::option::Option::Some((_, __val)) => ::serde::Deserialize::from_value(__val)?,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\n\
                         ::serde::de::Error::custom(\"missing field `{name}` in {ty}\")),\n\
                 }},\n",
                name = f.name,
                obj = obj,
                ty = ty,
            ));
        }
    }
    body
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => format!(
            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = \
             ::std::vec::Vec::new();\n{}\n::serde::value::Value::Object(__fields)",
            ser_named_fields(fields, "&self.")
        ),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name,
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::value::Value::Object(vec![(\
                         \"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n",
                        v = v.name,
                    )),
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({pats}) => ::serde::value::Value::Object(vec![(\
                             \"{v}\".to_string(), ::serde::value::Value::Array(vec![{items}]))]),\n",
                            v = v.name,
                            pats = pats.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pats} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::value::Value)> = ::std::vec::Vec::new();\n{push}\n\
                             ::serde::value::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::value::Value::Object(__fields))])\n}},\n",
                            v = v.name,
                            pats = pats.join(", "),
                            push = ser_named_fields(fields, ""),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Shape::NamedStruct(fields) => format!(
            "let __obj = __v.as_object().ok_or_else(|| \
             ::serde::de::Error::custom(\"expected object for {name}\"))?;\n\
             ::std::result::Result::Ok({name} {{\n{fields}\n}})",
            fields = de_named_fields(name, fields, "__obj"),
        ),
        Shape::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => str_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name,
                    )),
                    VariantKind::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__val)?)),\n",
                        v = v.name,
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        obj_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __arr = __val.as_array().ok_or_else(|| \
                             ::serde::de::Error::custom(\"expected array payload\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::de::Error::custom(\"wrong variant arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{v}({items}))\n}},\n",
                            v = v.name,
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Named(fields) => obj_arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                         let __inner = __val.as_object().ok_or_else(|| \
                         ::serde::de::Error::custom(\"expected object payload\"))?;\n\
                         ::std::result::Result::Ok({name}::{v} {{\n{fields}\n}})\n}},\n",
                        v = v.name,
                        fields = de_named_fields(name, fields, "__inner"),
                    )),
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{str_arms}\
                 _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__s}}` for {name}\"))),\n}}\n\
                 }} else if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                 if __obj.len() != 1 {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"expected single-key object for {name}\")); }}\n\
                 let (__k, __val) = &__obj[0];\n\
                 match __k.as_str() {{\n{obj_arms}\
                 _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 format!(\"unknown variant `{{__k}}` for {name}\"))),\n}}\n\
                 }} else {{\n\
                 ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"expected string or object for {name}\"))\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// The serde requests recognized in a field attribute body (`serde(...)`).
#[derive(Default)]
pub(crate) struct SerdeFlags {
    pub skip: bool,
    pub default: bool,
    pub skip_ser_if: Option<String>,
}

/// Parses one attribute group body for serde flags (`serde(...)`).
fn serde_attr_flags(stream: TokenStream) -> SerdeFlags {
    let mut tokens = stream.into_iter();
    let mut flags = SerdeFlags::default();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let mut args = args.stream().into_iter().peekable();
            while let Some(t) = args.next() {
                let TokenTree::Ident(i) = t else { continue };
                match i.to_string().as_str() {
                    "skip" => flags.skip = true,
                    "default" => flags.default = true,
                    "skip_serializing_if" => match (args.next(), args.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let s = lit.to_string();
                            let path = s.trim_matches('"').to_string();
                            assert!(
                                !path.is_empty() && !path.contains('"'),
                                "serde_derive: skip_serializing_if expects a \
                                     string literal path, got {s}"
                            );
                            flags.skip_ser_if = Some(path);
                        }
                        other => {
                            panic!("serde_derive: malformed skip_serializing_if, got {other:?}")
                        }
                    },
                    _ => {}
                }
            }
            flags
        }
        _ => flags,
    }
}
