//! Recursive-descent JSON parsing.

use serde::de::Error;
use serde::value::Value;

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::custom("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::custom("invalid unicode escape"))?);
                    }
                    _ => return Err(Error::custom("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble a UTF-8 multibyte sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::custom("invalid UTF-8 in string")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::custom("truncated UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("bad hex digit"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || stripped.is_empty() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
