//! Vendored minimal stand-in for `serde_json`.
//!
//! JSON text on top of the vendored `serde` shim's [`Value`] tree:
//! compact and pretty writers, a recursive-descent parser, and a small
//! [`json!`] macro. Non-finite floats serialize as `null`, like real
//! serde_json's default behaviour for `f64::NAN` under `to_value`.

mod parse;
mod write;

pub use serde::de::Error;
pub use serde::value::Value;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Serializes any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, Error> {
    Ok(v.to_value())
}

/// Reconstructs a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write(&v.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write(&v.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `Deserialize` type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports nested objects and arrays, string-literal keys, and arbitrary
/// Rust expressions as values (converted via `Value: From<_>`), following
/// the token-munching structure of real serde_json's `json!`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };

    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => { $crate::Value::Object($crate::json_internal!(@object [] $($tt)+)) };

    // Array munching: accumulate finished elements, peel one value at a
    // time, recognizing nested JSON syntax before the expression fallback.
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::from($next),] $($($rest)*)?)
    };

    // Object munching: peel `"key": value` pairs, recognizing nested JSON
    // syntax in value position before the expression fallback.
    (@object [$($pairs:expr,)*]) => { vec![$($pairs,)*] };
    (@object [$($pairs:expr,)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($pairs,)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@object [$($pairs:expr,)*] $key:literal : true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($pairs,)* ($key.to_string(), $crate::Value::Bool(true)),] $($($rest)*)?)
    };
    (@object [$($pairs:expr,)*] $key:literal : false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($pairs,)* ($key.to_string(), $crate::Value::Bool(false)),] $($($rest)*)?)
    };
    (@object [$($pairs:expr,)*] $key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object
            [$($pairs,)* ($key.to_string(), $crate::json_internal!([$($inner)*])),]
            $($($rest)*)?)
    };
    (@object [$($pairs:expr,)*] $key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object
            [$($pairs,)* ($key.to_string(), $crate::json_internal!({$($inner)*})),]
            $($($rest)*)?)
    };
    (@object [$($pairs:expr,)*] $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object [$($pairs,)* ($key.to_string(), $crate::Value::from($value)),] $($($rest)*)?)
    };

    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = json!({
            "name": "perfiso",
            "cores": 48,
            "buffer": [1, 2, 3],
            "nested": {"enabled": true, "rate": 0.25},
            "nothing": null
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn escapes_strings() {
        let v = json!("line\nbreak \"quoted\" \\ tab\t");
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn extreme_integers_roundtrip() {
        let v = Value::Array(vec![
            json!(0u64),
            json!(18446744073709551615u64),
            Value::I64(i64::MIN),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
