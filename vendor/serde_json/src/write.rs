//! JSON text emission.

use serde::value::Value;

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

pub fn write(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` prints the shortest representation that round-trips.
                let s = format!("{x}");
                out.push_str(&s);
                // Keep the token a JSON number that re-parses as a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}
