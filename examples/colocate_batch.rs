//! Scenario: choose an isolation policy for a colocated batch job.
//!
//! The workload the paper's introduction motivates: a search index server
//! provisioned for peak but running at average load, plus a backlog of
//! CPU-hungry batch work. This example sweeps the evaluated policies at
//! both loads — one `ScenarioSpec` per cell, via the
//! [`scenarios::run_with_policy`] helper — and prints the decision
//! table an operator would want: tail-latency impact vs batch progress.
//!
//! Run with: `cargo run --release --example colocate_batch`

use indexserve::BoxReport;
use scenarios::{run_with_policy, Policy, Scale};
use telemetry::table::{ms, pct, Table};
use workloads::BullyIntensity;

fn cell(policy: Policy, qps: f64, seed: u64) -> BoxReport {
    run_with_policy(policy, BullyIntensity::High, qps, seed, Scale::quick())
}

fn main() {
    let seed = 17;
    println!("Sweeping isolation policies (48-thread CPU bully)...\n");

    for qps in [2_000.0, 4_000.0] {
        let base = cell(Policy::Standalone, qps, seed);
        let mut t = Table::new(&[
            "policy",
            "p99 (ms)",
            "d-p99 (ms)",
            "dropped",
            "batch cpu-s",
            "machine util",
            "verdict",
        ]);
        for policy in [
            Policy::NoIsolation,
            Policy::CycleCap(0.05),
            Policy::StaticCores(8),
            Policy::Blind { buffer_cores: 8 },
        ] {
            let r = cell(policy, qps, seed);
            let d = r.latency.p99.saturating_sub(base.latency.p99);
            let slo =
                telemetry::slo::RelativeSlo::paper_default(base.latency.p99).check(r.latency.p99);
            t.row_owned(vec![
                policy.label(),
                ms(r.latency.p99),
                ms(d),
                pct(r.drop_ratio()),
                format!("{:.1}", r.secondary_cpu.as_secs_f64()),
                pct(r.breakdown.utilization()),
                if slo.met {
                    "SLO met".into()
                } else {
                    "SLO VIOLATED".into()
                },
            ]);
        }
        println!(
            "@ {qps:.0} QPS (standalone p99 = {}):",
            ms(base.latency.p99)
        );
        println!("{}", t.render());
    }
    println!("Blind isolation is the only policy that both meets the SLO and keeps batch throughput high.");
}
