//! Scenario: keep batch I/O off the primary's critical path.
//!
//! Runs the disk-side of PerfIso on one machine: a DiskSPD-style disk bully
//! (33 % read / 67 % write, sequential, synchronous) plus HDFS replication
//! and client traffic, against the shared HDD volume, with the §5.3 static
//! caps (20 MB/s replication, 60 MB/s clients) and DWRR priority
//! adjustment. The managed configuration is the registry's `io-throttle`
//! scenario; the unmanaged one is the same spec with the controller off.
//!
//! Run with: `cargo run --release --example io_throttle`

use scenarios::spec::{self, run_spec, RunOptions};
use scenarios::Policy;

fn main() {
    let managed_spec = spec::named("io-throttle").expect("registered scenario");
    let mut wild_spec = managed_spec.clone();
    wild_spec.name = "io-throttle-unmanaged".into();
    wild_spec.policy = Policy::NoIsolation;
    wild_spec.validate().expect("still a valid spec");

    println!("Disk-bound secondary WITHOUT I/O management ...");
    let wild = run_spec(&wild_spec, &RunOptions::serial()).expect("runnable spec");
    let wild = wild.runs[0].as_single_box().expect("single box");
    println!(
        "  primary p99 {:>6.2} ms   dropped {:>4.2}%",
        wild.latency.p99.as_millis_f64(),
        wild.drop_ratio() * 100.0
    );

    println!("\nDisk-bound secondary WITH PerfIso (static caps + DWRR priorities) ...");
    let managed = run_spec(&managed_spec, &RunOptions::serial()).expect("runnable spec");
    let managed = managed.runs[0].as_single_box().expect("single box");
    println!(
        "  primary p99 {:>6.2} ms   dropped {:>4.2}%",
        managed.latency.p99.as_millis_f64(),
        managed.drop_ratio() * 100.0
    );
    if let Some(stats) = managed.controller {
        println!(
            "  controller: {} I/O rounds, {} priority adjustments",
            stats.io_rounds, stats.io_adjustments
        );
    }
    println!("\nThe primary's SSD index volume is exclusive; its logging and the batch");
    println!("I/O share the HDD stripe, where PerfIso's caps and DWRR keep order.");
}
