//! Scenario: keep batch I/O off the primary's critical path.
//!
//! Runs the disk-side of PerfIso on one machine: a DiskSPD-style disk bully
//! (33 % read / 67 % write, sequential, synchronous) plus HDFS replication
//! and client traffic, against the shared HDD volume, with the §5.3 static
//! caps (20 MB/s replication, 60 MB/s clients) and DWRR priority
//! adjustment.
//!
//! Run with: `cargo run --release --example io_throttle`

use indexserve::boxsim::{run_standalone, RunPlan};
use indexserve::{BoxConfig, SecondaryKind};
use perfiso::PerfIsoConfig;
use simcore::SimDuration;
use workloads::DiskBully;

fn main() {
    let plan = RunPlan {
        qps: 2_000.0,
        warmup: SimDuration::from_millis(500),
        measure: SimDuration::from_secs(3),
        trace: qtrace::TraceConfig::default(),
    };
    let secondary = SecondaryKind {
        cpu_bully: None,
        disk_bully: Some(DiskBully {
            depth: 8,
            ..DiskBully::default()
        }),
        hdfs: true,
    };

    println!("Disk-bound secondary WITHOUT I/O management ...");
    let wild = run_standalone(BoxConfig::paper_box(secondary.clone(), None, 5), &plan);
    println!(
        "  primary p99 {:>6.2} ms   dropped {:>4.2}%",
        wild.latency.p99.as_millis_f64(),
        wild.drop_ratio() * 100.0
    );

    println!("\nDisk-bound secondary WITH PerfIso (static caps + DWRR priorities) ...");
    let managed = run_standalone(
        BoxConfig::paper_box(secondary, Some(PerfIsoConfig::paper_cluster()), 5),
        &plan,
    );
    println!(
        "  primary p99 {:>6.2} ms   dropped {:>4.2}%",
        managed.latency.p99.as_millis_f64(),
        managed.drop_ratio() * 100.0
    );
    if let Some(stats) = managed.controller {
        println!(
            "  controller: {} I/O rounds, {} priority adjustments",
            stats.io_rounds, stats.io_adjustments
        );
    }
    println!("\nThe primary's SSD index volume is exclusive; its logging and the batch");
    println!("I/O share the HDD stripe, where PerfIso's caps and DWRR keep order.");
}
