//! Quickstart: protect a latency-sensitive service from a CPU-hungry batch
//! job with CPU blind isolation.
//!
//! Builds the paper's single production server (48 logical cores, striped
//! SSD + HDD volumes), runs Bing-style IndexServe at average load, throws a
//! 48-thread CPU bully at it, and shows the p99 with and without PerfIso.
//! Every configuration is one declarative `ScenarioSpec`; the same cells
//! are runnable from the CLI (`perfiso-run run quickstart`).
//!
//! Run with: `cargo run --release --example quickstart`

use indexserve::BoxReport;
use scenarios::{run_with_policy, Policy, Scale};
use simcore::SimDuration;
use workloads::BullyIntensity;

fn main() {
    let qps = 2_000.0;
    let scale = Scale {
        warmup: SimDuration::from_millis(500),
        measure: SimDuration::from_secs(4),
    };
    let cell = |policy: Policy| -> BoxReport {
        run_with_policy(policy, BullyIntensity::High, qps, 42, scale)
    };

    println!("IndexServe standalone at {qps} QPS ...");
    let baseline = cell(Policy::Standalone);
    println!(
        "  p50 {:>7.2} ms   p99 {:>7.2} ms   machine idle {:>4.1}%",
        baseline.latency.p50.as_millis_f64(),
        baseline.latency.p99.as_millis_f64(),
        baseline.breakdown.idle_fraction() * 100.0
    );

    println!("\nColocating a 48-thread CPU bully with NO isolation ...");
    let hurt = cell(Policy::NoIsolation);
    println!(
        "  p50 {:>7.2} ms   p99 {:>7.2} ms   dropped {:>4.1}%   (tail destroyed)",
        hurt.latency.p50.as_millis_f64(),
        hurt.latency.p99.as_millis_f64(),
        hurt.drop_ratio() * 100.0
    );

    println!("\nSame bully under PerfIso CPU blind isolation (8 buffer cores) ...");
    let safe = cell(Policy::Blind { buffer_cores: 8 });
    let degradation = safe.latency.p99.saturating_sub(baseline.latency.p99);
    println!(
        "  p50 {:>7.2} ms   p99 {:>7.2} ms   degradation {:+.2} ms",
        safe.latency.p50.as_millis_f64(),
        safe.latency.p99.as_millis_f64(),
        degradation.as_millis_f64()
    );
    println!(
        "  machine utilization {:>4.1}% (was {:>4.1}%)   bully got {:.1} core-seconds of work",
        safe.breakdown.utilization() * 100.0,
        baseline.breakdown.utilization() * 100.0,
        safe.secondary_cpu.as_secs_f64()
    );
    let slo = telemetry::slo::RelativeSlo::paper_default(baseline.latency.p99);
    println!(
        "\nSLO (p99 within 1 ms of standalone): {}",
        slo.check(safe.latency.p99)
    );
}
