//! Scenario: verify end-to-end tail latency across an aggregation tree.
//!
//! "In such multi-layered systems, the slowest server dictates the response
//! time" (§1). This example runs a scaled-down IndexServe cluster (8
//! columns × 2 rows + 4 TLAs), colocates a CPU bully + HDFS on every index
//! machine under PerfIso, and prints latency at all three layers —
//! demonstrating that per-machine blind isolation composes into end-to-end
//! SLO protection. Both cells are declarative `ScenarioSpec`s over the
//! same cluster target.
//!
//! Run with: `cargo run --release --example cluster_tail_latency`

use cluster::{ClusterReport, Topology};
use scenarios::spec::{run_spec, RunOptions, ScenarioBuilder, ScenarioSpec};
use scenarios::Policy;
use telemetry::table::{ms, Table};
use workloads::BullyIntensity;

fn scaled(name: &str) -> ScenarioBuilder {
    ScenarioSpec::builder(name)
        .cluster(
            Topology {
                columns: 8,
                rows: 2,
                tlas: 4,
            },
            2_000.0,
        )
        .policy(Policy::FullPerfIso)
        .custom_scale(300, 900)
        .seed(3)
}

fn run(builder: ScenarioBuilder) -> ClusterReport {
    let spec = builder.build().expect("valid spec");
    // All cores: with one seed the thread knob reaches the cluster's box
    // advance, which is bit-identical to serial by the pool's guarantee.
    let report = run_spec(&spec, &RunOptions::parallel(None)).expect("runnable spec");
    report.runs[0].as_cluster().expect("cluster target").clone()
}

fn main() {
    println!("Scaled cluster: 8 columns x 2 rows + 4 TLAs, 2000 QPS total\n");

    let base = run(scaled("cluster-baseline").hdfs());
    let colo = run(scaled("cluster-colocated")
        .hdfs()
        .cpu_bully(BullyIntensity::High));

    let mut t = Table::new(&[
        "layer",
        "baseline p99 (ms)",
        "colocated p99 (ms)",
        "delta (ms)",
    ]);
    for (name, b, c) in [
        ("local IndexServe", &base.local, &colo.local),
        ("MLA", &base.mla, &colo.mla),
        ("TLA (end-to-end)", &base.tla, &colo.tla),
    ] {
        t.row_owned(vec![
            name.to_string(),
            ms(b.p99),
            ms(c.p99),
            format!("{:+.2}", c.p99.as_millis_f64() - b.p99.as_millis_f64()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "cluster CPU utilization: baseline {:.0}% -> colocated {:.0}%  ({} requests, {} degraded)",
        base.mean_utilization * 100.0,
        colo.mean_utilization * 100.0,
        colo.completed,
        colo.degraded,
    );
    println!("\nBlind isolation on every machine keeps each layer's tail close to baseline,");
    println!("so the end-to-end SLO holds without any component knowing the SLO.");
}
