//! Scenario: the operational story — kill switch and crash recovery.
//!
//! §4.2: PerfIso ships with a kill switch so it can be ruled out during
//! livesite debugging, and recovers its dynamic state from disk after a
//! crash (Autopilot restarts it). This example exercises both paths on a
//! live simulated machine (obtained from the `quickstart` scenario spec)
//! and with the Autopilot substrate.
//!
//! Run with: `cargo run --release --example ops_killswitch`

use autopilot::{RestartDecision, ServiceKind, ServiceManager, ServiceRegistry};
use perfiso::recovery::ControllerState;
use perfiso::Command;
use scenarios::spec;
use simcore::{SimDuration, SimTime};

fn main() {
    // A machine with a high bully under blind isolation: the registry's
    // quickstart scenario, embedded as a live simulator.
    let mut sim = spec::named("quickstart")
        .expect("registered scenario")
        .box_sim(9)
        .expect("single-box scenario");
    sim.advance_to(SimTime::from_millis(50));
    println!(
        "t=50ms   controller active:  {:?}",
        sim.controller_stats().map(|s| s.affinity_updates)
    );

    // --- Kill switch ---
    println!("\n[kill switch] operator disables PerfIso for livesite debugging");
    sim.controller_command(Command::SetEnabled(false));
    sim.advance_to(SimTime::from_millis(100));
    println!("t=100ms  secondary unrestricted (bully may use every core)");
    sim.controller_command(Command::SetEnabled(true));
    sim.advance_to(SimTime::from_millis(150));
    println!("t=150ms  PerfIso re-enabled; restriction reapplied within one poll tick");

    // --- Crash recovery via Autopilot ---
    println!("\n[crash recovery] PerfIso snapshots state; Autopilot restarts it");
    let dir = std::env::temp_dir().join("perfiso-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("perfiso-state.json");

    let mut registry = ServiceRegistry::new();
    registry.register("indexserve", ServiceKind::Primary, vec![100]);
    registry.register("cpu-bully", ServiceKind::Secondary, vec![200]);
    registry.register("perfiso", ServiceKind::Infrastructure, vec![300]);
    let mut manager = ServiceManager::new(Default::default());

    // Snapshot the (simulated) dynamic state to disk.
    let state = ControllerState {
        enabled: true,
        secondary_mask: simcore::CoreMask::range(8, 48),
        io_priorities: vec![(0, 2), (1, 2), (2, 2)],
    };
    state.save(&path).expect("snapshot written");
    println!("  snapshot written to {}", path.display());

    // Crash + restart decision.
    match manager.report_crash(&mut registry, "perfiso") {
        RestartDecision::RestartAfterMs(backoff) => {
            println!("  perfiso crashed; Autopilot restarts after {backoff} ms");
        }
        RestartDecision::GiveUp => unreachable!("first crash never gives up"),
    }
    manager.report_started(&mut registry, "perfiso", vec![301]);

    // The restarted daemon resumes from disk.
    let restored = ControllerState::load(&path).expect("snapshot read");
    assert_eq!(restored, state);
    println!(
        "  restarted perfiso resumed: enabled={} secondary={} ({} cores)",
        restored.enabled,
        restored.secondary_mask,
        restored.secondary_mask.count()
    );
    println!(
        "  managed secondary PIDs from Autopilot registry: {:?}",
        registry.secondary_pids()
    );
    let _ = SimDuration::from_millis(1);
    std::fs::remove_dir_all(&dir).ok();
    println!("\nDone: both operational paths work end to end.");
}
