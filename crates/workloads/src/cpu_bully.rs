//! The CPU bully (§5.3).
//!
//! "A multi-threaded program with each worker thread computing the sum of
//! several integer values. The number of worker threads is configurable and
//! we vary it up to the total number of logical cores ... The bully
//! maximizes CPU utilization since there are very few memory or external
//! storage accesses."
//!
//! Progress is counted in completed compute chunks, which is how the paper
//! reports "bully absolute progress" (Fig 8c) and the §6.1.4 percentages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simcore::{SimDuration, SimTime};
use simcpu::{JobId, Machine, Program, ThreadId};

/// The paper's two bully sizings on a 48-logical-core box.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BullyIntensity {
    /// 24 worker threads ("mid").
    Mid,
    /// 48 worker threads ("high").
    High,
    /// A custom thread count.
    Custom(u32),
}

impl BullyIntensity {
    /// The thread count on a machine with `cores` logical cores.
    pub fn threads(self, cores: u32) -> u32 {
        match self {
            BullyIntensity::Mid => cores / 2,
            BullyIntensity::High => cores,
            BullyIntensity::Custom(n) => n,
        }
    }
}

/// Configuration for the CPU bully.
#[derive(Clone, Debug)]
pub struct CpuBully {
    /// Worker-thread count.
    pub threads: u32,
    /// Compute chunk per progress increment.
    pub chunk: SimDuration,
}

/// The bully's progress-accounting chunk.
///
/// A real bully is a tight loop that never yields; the simulated program
/// therefore computes in segments much longer than the scheduler quantum,
/// so a bully thread loses its core only at quantum expiries (or resched
/// IPIs) — exactly like the integer-summing loop of §5.3. The chunk size
/// only sets the granularity of the progress counter; prefer
/// [`Machine::job_cpu_time`](simcpu::Machine::job_cpu_time) (exposed as
/// `secondary_cpu` in box reports) for progress comparisons.
pub const BULLY_PROGRESS_CHUNK: SimDuration = SimDuration::from_millis(250);

impl CpuBully {
    /// A bully with the given intensity on a `cores`-core machine.
    pub fn new(intensity: BullyIntensity, cores: u32) -> Self {
        CpuBully {
            threads: intensity.threads(cores),
            chunk: BULLY_PROGRESS_CHUNK,
        }
    }

    /// Spawns the bully's threads into `job` on `machine`.
    ///
    /// The returned handle exposes the shared progress counter.
    pub fn spawn(&self, machine: &mut Machine, job: JobId, now: SimTime) -> CpuBullyHandle {
        let progress = Arc::new(AtomicU64::new(0));
        let mut tids = Vec::with_capacity(self.threads as usize);
        for i in 0..self.threads {
            let tid = machine.spawn_program(
                now,
                job,
                Program::compute_loop(self.chunk, progress.clone()),
                CPU_BULLY_TAG_BASE + i as u64,
            );
            tids.push(tid);
        }
        CpuBullyHandle {
            progress,
            tids,
            chunk: self.chunk,
        }
    }
}

/// Thread tags `CPU_BULLY_TAG_BASE..` identify bully threads in machine
/// outputs.
pub const CPU_BULLY_TAG_BASE: u64 = 1 << 40;

/// A running CPU bully.
#[derive(Clone, Debug)]
pub struct CpuBullyHandle {
    progress: Arc<AtomicU64>,
    /// Spawned thread handles (for killing the bully).
    pub tids: Vec<ThreadId>,
    chunk: SimDuration,
}

impl CpuBullyHandle {
    /// Completed compute chunks ("absolute progress", Fig 8c).
    ///
    /// The loop program increments at each chunk *start*; the first start
    /// per thread is subtracted so this counts completions.
    pub fn progress_chunks(&self) -> u64 {
        self.progress
            .load(Ordering::Relaxed)
            .saturating_sub(self.tids.len() as u64)
    }

    /// Progress expressed as consumed CPU time.
    pub fn progress_cpu_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.progress_chunks() * self.chunk.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::CoreMask;
    use simcpu::MachineConfig;
    use telemetry::TenantClass;

    #[test]
    fn intensity_scales_with_cores() {
        assert_eq!(BullyIntensity::Mid.threads(48), 24);
        assert_eq!(BullyIntensity::High.threads(48), 48);
        assert_eq!(BullyIntensity::Custom(7).threads(48), 7);
    }

    #[test]
    fn bully_saturates_unrestricted_machine() {
        let mut m = Machine::new(MachineConfig::small(4));
        let job = m.create_job(TenantClass::Secondary, CoreMask::all(4));
        let bully = CpuBully {
            threads: 4,
            chunk: SimDuration::from_millis(1),
        };
        let h = bully.spawn(&mut m, job, SimTime::ZERO);
        m.advance_to(SimTime::from_millis(100));
        assert_eq!(m.idle_core_mask().count(), 0);
        // 4 cores * 100ms = 400 chunks of 1ms (minus in-flight).
        let p = h.progress_chunks();
        assert!((390..=400).contains(&p), "progress {p}");
        let b = m.breakdown();
        assert!(b.fraction(TenantClass::Secondary) > 0.95);
    }

    #[test]
    fn restricted_bully_makes_less_progress() {
        let mut m = Machine::new(MachineConfig::small(4));
        let job = m.create_job(TenantClass::Secondary, CoreMask::range(0, 1));
        let h = CpuBully {
            threads: 4,
            chunk: SimDuration::from_millis(1),
        }
        .spawn(&mut m, job, SimTime::ZERO);
        m.advance_to(SimTime::from_millis(100));
        let p = h.progress_chunks();
        assert!((95..=100).contains(&p), "1 core => ~100 chunks, got {p}");
    }

    #[test]
    fn killed_bully_stops() {
        let mut m = Machine::new(MachineConfig::small(2));
        let job = m.create_job(TenantClass::Secondary, CoreMask::all(2));
        let h = CpuBully {
            threads: 2,
            chunk: SimDuration::from_millis(1),
        }
        .spawn(&mut m, job, SimTime::ZERO);
        m.advance_to(SimTime::from_millis(10));
        for &tid in &h.tids {
            m.kill_thread(SimTime::from_millis(10), tid);
        }
        let at_kill = h.progress_chunks();
        m.advance_to(SimTime::from_millis(50));
        assert_eq!(h.progress_chunks(), at_kill);
        assert_eq!(m.idle_core_mask().count(), 2);
    }
}
