//! The machine-learning training batch job (§6.2, Fig 10).
//!
//! The 650-machine production experiment colocates IndexServe with "a large
//! batch job executing the training phase of a machine-learning
//! computation". Modelled as data-parallel minibatch training: `workers`
//! threads each compute a minibatch, then synchronise at a barrier every
//! `steps_per_sync` steps (parameter exchange, modelled as a short sleep).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simcore::{SimDuration, SimRng, SimTime};
use simcpu::{JobId, Machine, Program, Step, ThreadId, ThreadProgram};

/// Thread tags `ML_TAG_BASE..` identify trainer threads.
pub const ML_TAG_BASE: u64 = 1 << 43;

/// The trainer configuration.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MlTrainer {
    /// Parallel worker threads.
    pub workers: u32,
    /// CPU time per minibatch.
    pub minibatch: SimDuration,
    /// Steps between synchronisation pauses.
    pub steps_per_sync: u32,
    /// Pause duration at each sync (parameter exchange).
    pub sync_pause: SimDuration,
}

impl Default for MlTrainer {
    fn default() -> Self {
        MlTrainer {
            workers: 40,
            minibatch: SimDuration::from_millis(2),
            steps_per_sync: 50,
            sync_pause: SimDuration::from_millis(3),
        }
    }
}

impl MlTrainer {
    /// Spawns the trainer into `job`; returns the progress counter handle.
    pub fn spawn(&self, machine: &mut Machine, job: JobId, now: SimTime) -> MlTrainerHandle {
        let progress = Arc::new(AtomicU64::new(0));
        let mut tids = Vec::with_capacity(self.workers as usize);
        for i in 0..self.workers {
            let program = TrainerWorker {
                minibatch: self.minibatch,
                steps_per_sync: self.steps_per_sync,
                sync_pause: self.sync_pause,
                step: 0,
                in_compute: false,
                progress: progress.clone(),
            };
            // The trainer is stateful (barrier counting), so it rides the
            // `Dyn` escape hatch — one box per worker at setup, not per step.
            tids.push(machine.spawn_program(
                now,
                job,
                Program::from(program),
                ML_TAG_BASE + i as u64,
            ));
        }
        MlTrainerHandle { progress, tids }
    }
}

/// A running trainer.
#[derive(Clone, Debug)]
pub struct MlTrainerHandle {
    progress: Arc<AtomicU64>,
    /// Worker thread handles.
    pub tids: Vec<ThreadId>,
}

impl MlTrainerHandle {
    /// Completed minibatches across all workers.
    pub fn minibatches(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
struct TrainerWorker {
    minibatch: SimDuration,
    steps_per_sync: u32,
    sync_pause: SimDuration,
    step: u32,
    in_compute: bool,
    progress: Arc<AtomicU64>,
}

impl ThreadProgram for TrainerWorker {
    fn next_step(&mut self, _rng: &mut SimRng) -> Step {
        if self.in_compute {
            // A minibatch just finished.
            self.progress.fetch_add(1, Ordering::Relaxed);
            self.step += 1;
            if self.step.is_multiple_of(self.steps_per_sync) {
                self.in_compute = false;
                return Step::Sleep(self.sync_pause);
            }
        }
        self.in_compute = true;
        Step::Compute(self.minibatch)
    }

    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn shared_progress(&self) -> Option<&AtomicU64> {
        Some(&self.progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::CoreMask;
    use simcpu::MachineConfig;
    use telemetry::TenantClass;

    #[test]
    fn trainer_makes_progress() {
        let mut m = Machine::new(MachineConfig::small(8));
        let job = m.create_job(TenantClass::Secondary, CoreMask::all(8));
        let h = MlTrainer {
            workers: 8,
            ..Default::default()
        }
        .spawn(&mut m, job, SimTime::ZERO);
        m.advance_to(SimTime::from_secs(1));
        // 8 workers * ~1s / 2ms ≈ 4000 minus sync pauses (~3%).
        let p = h.minibatches();
        assert!((3_500..=4_000).contains(&p), "minibatches {p}");
    }

    #[test]
    fn sync_pauses_leave_idle_gaps() {
        let mut m = Machine::new(MachineConfig::small(2));
        let job = m.create_job(TenantClass::Secondary, CoreMask::all(2));
        let _h = MlTrainer {
            workers: 2,
            minibatch: SimDuration::from_millis(1),
            steps_per_sync: 2,
            sync_pause: SimDuration::from_millis(2),
        }
        .spawn(&mut m, job, SimTime::ZERO);
        m.advance_to(SimTime::from_secs(1));
        let b = m.breakdown();
        // Duty cycle 2ms compute : 2ms pause = 50%.
        let frac = b.fraction(TenantClass::Secondary);
        assert!((frac - 0.5).abs() < 0.05, "trainer duty {frac}");
    }

    #[test]
    fn restricting_affinity_slows_training() {
        let mut m1 = Machine::new(MachineConfig::small(8));
        let j1 = m1.create_job(TenantClass::Secondary, CoreMask::all(8));
        let h1 = MlTrainer {
            workers: 8,
            ..Default::default()
        }
        .spawn(&mut m1, j1, SimTime::ZERO);
        let mut m2 = Machine::new(MachineConfig::small(8));
        let j2 = m2.create_job(TenantClass::Secondary, CoreMask::range(0, 2));
        let h2 = MlTrainer {
            workers: 8,
            ..Default::default()
        }
        .spawn(&mut m2, j2, SimTime::ZERO);
        m1.advance_to(SimTime::from_secs(1));
        m2.advance_to(SimTime::from_secs(1));
        assert!(h1.minibatches() > h2.minibatches() * 3);
    }
}
