//! The disk bully (§5.3): a DiskSPD-style I/O antagonist.
//!
//! "We setup DiskSPD to create an I/O bound workload on the HDD strip of
//! each machine. We perform a mixed read-write workload, with 33 % reads
//! and 67 % writes, with sequential accesses and synchronous I/O
//! operations."
//!
//! The bully runs `depth` synchronous worker threads; each issues one
//! operation, blocks until completion, then issues the next. The CPU side
//! is a [`simcpu::ThreadProgram`] alternating a tiny prep burst with a
//! block; the machine driver resolves each block into a `simdisk` request
//! drawn from [`DiskBully::sample_op`].

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimRng};
use simcpu::{Step, ThreadProgram};
use simdisk::{AccessPattern, IoKind};

/// One sampled disk operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskOp {
    /// Read or write.
    pub kind: IoKind,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Access pattern.
    pub access: AccessPattern,
}

/// The disk bully configuration and op sampler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiskBully {
    /// Fraction of reads (the paper uses 0.33).
    pub read_fraction: f64,
    /// Per-operation transfer size in bytes.
    pub chunk_bytes: u64,
    /// Number of synchronous worker threads (queue depth).
    pub depth: u32,
}

impl Default for DiskBully {
    fn default() -> Self {
        DiskBully {
            read_fraction: 0.33,
            chunk_bytes: 256 << 10,
            depth: 4,
        }
    }
}

impl DiskBully {
    /// Samples the next operation (33/67 read/write split, sequential).
    pub fn sample_op(&self, rng: &mut SimRng) -> DiskOp {
        let kind = if rng.bernoulli(self.read_fraction) {
            IoKind::Read
        } else {
            IoKind::Write
        };
        DiskOp {
            kind,
            bytes: self.chunk_bytes,
            access: AccessPattern::Sequential,
        }
    }

    /// Builds the worker-thread program for worker `idx`.
    pub fn worker_program(&self, idx: u32) -> DiskBullyWorker {
        DiskBullyWorker {
            token_base: (idx as u64) << 32,
            count: 0,
            compute_next: true,
        }
    }
}

/// Thread tags `DISK_BULLY_TAG_BASE..` identify disk-bully threads.
pub const DISK_BULLY_TAG_BASE: u64 = 1 << 41;

/// A synchronous disk-bully worker: prep burst, then block on I/O, forever.
#[derive(Clone, Debug)]
pub struct DiskBullyWorker {
    token_base: u64,
    count: u64,
    compute_next: bool,
}

impl ThreadProgram for DiskBullyWorker {
    fn next_step(&mut self, _rng: &mut SimRng) -> Step {
        if self.compute_next {
            self.compute_next = false;
            Step::Compute(SimDuration::from_micros(20))
        } else {
            self.compute_next = true;
            self.count += 1;
            Step::Block {
                token: self.token_base + self.count,
            }
        }
    }

    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_configuration() {
        let b = DiskBully::default();
        let mut rng = SimRng::seed_from_u64(5);
        let n = 100_000;
        let reads = (0..n)
            .filter(|_| b.sample_op(&mut rng).kind == IoKind::Read)
            .count();
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.33).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn ops_are_sequential_and_sized() {
        let b = DiskBully::default();
        let mut rng = SimRng::seed_from_u64(6);
        let op = b.sample_op(&mut rng);
        assert_eq!(op.access, AccessPattern::Sequential);
        assert_eq!(op.bytes, 256 << 10);
    }

    #[test]
    fn worker_alternates_compute_and_block() {
        let mut w = DiskBully::default().worker_program(0);
        let mut rng = SimRng::seed_from_u64(7);
        assert!(matches!(w.next_step(&mut rng), Step::Compute(_)));
        assert!(matches!(w.next_step(&mut rng), Step::Block { .. }));
        assert!(matches!(w.next_step(&mut rng), Step::Compute(_)));
        assert!(matches!(w.next_step(&mut rng), Step::Block { .. }));
    }

    #[test]
    fn workers_have_distinct_tokens() {
        let mut rng = SimRng::seed_from_u64(8);
        let mut w0 = DiskBully::default().worker_program(0);
        let mut w1 = DiskBully::default().worker_program(1);
        w0.next_step(&mut rng);
        w1.next_step(&mut rng);
        let t0 = match w0.next_step(&mut rng) {
            Step::Block { token } => token,
            _ => panic!(),
        };
        let t1 = match w1.next_step(&mut rng) {
            Step::Block { token } => token,
            _ => panic!(),
        };
        assert_ne!(t0, t1);
    }
}
