//! Secondary-tenant workloads.
//!
//! The paper's evaluation uses purpose-built antagonists:
//!
//! - [`CpuBully`] (§5.3) — a multi-threaded integer-summing program sized to
//!   soak every cycle the system permits ("mid" = 24 threads, "high" = 48).
//! - [`DiskBully`] (§5.3) — a DiskSPD-style mixed workload: 33 % reads /
//!   67 % writes, sequential, synchronous, aimed at the shared HDD stripe.
//! - [`hdfs`] (§5.3) — DataNode replication and client traffic plus its
//!   small CPU footprint ("the HDFS client takes up to 5 % of total CPU").
//! - [`MlTrainer`] (§6.2) — the machine-learning training computation from
//!   the 650-machine production experiment.
//!
//! CPU-side behaviour plugs into `simcpu` as [`simcpu::ThreadProgram`]s;
//! I/O-side behaviour is expressed as operation generators the machine
//! driver submits to `simdisk`.
//!
//! Beyond the paper's antagonists, [`service_graph`] adds a *primary*
//! workload class: microservice chains expressed as DAGs of compute
//! stages connected by `simnet` hops, for scenarios the paper's
//! single-service setup cannot express.

pub mod cpu_bully;
pub mod disk_bully;
pub mod hdfs;
pub mod ml_trainer;
pub mod resilience;
pub mod service_graph;

pub use cpu_bully::{BullyIntensity, CpuBully, CpuBullyHandle};
pub use disk_bully::{DiskBully, DiskOp};
pub use hdfs::{HdfsNode, HdfsTrafficKind};
pub use ml_trainer::MlTrainer;
pub use resilience::{
    AdmissionPolicy, BreakerPolicy, BreakerState, CircuitBreaker, HedgePolicy, ResiliencePolicy,
    RetryPolicy,
};
pub use service_graph::{GraphEdge, GraphEngine, GraphOutcome, GraphStage, GraphWorkload};
