//! HDFS DataNode and client traffic models (§5.3).
//!
//! "Each IndexServe machine also runs an HDFS client because many batch
//! jobs ... rely on HDFS for storage access. ... data replication is
//! limited to 20 MB/s, and HDFS clients are limited to 60 MB/s. All I/O
//! operations done by HDFS are unbuffered." The HDFS client also "takes up
//! to 5 % of total CPU time" (§6.2).
//!
//! The model offers Poisson-gap chunked transfers on the shared HDD volume
//! (PerfIso's token buckets then cap them) plus a light duty-cycle CPU
//! program for the daemon overhead.

use serde::{Deserialize, Serialize};
use simcore::dist::{Exp, Sample};
use simcore::{SimDuration, SimRng, SimTime};
use simcpu::{Step, ThreadProgram};
use simdisk::{AccessPattern, IoKind};

use crate::disk_bully::DiskOp;

/// The two HDFS traffic streams the paper throttles differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HdfsTrafficKind {
    /// Block replication between DataNodes (capped at 20 MB/s).
    Replication,
    /// Client reads/writes for batch jobs (capped at 60 MB/s).
    Client,
}

/// An HDFS traffic source: offered load before PerfIso's caps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HdfsNode {
    /// Which stream this node generates.
    pub kind: HdfsTrafficKind,
    /// Offered (uncapped) bandwidth in bytes/second.
    pub offered_bytes_per_sec: u64,
    /// Chunk size per operation (HDFS packets are large).
    pub chunk_bytes: u64,
}

impl HdfsNode {
    /// A replication stream offering 40 MB/s (the cap will halve it).
    pub fn replication() -> Self {
        HdfsNode {
            kind: HdfsTrafficKind::Replication,
            offered_bytes_per_sec: 40 << 20,
            chunk_bytes: 1 << 20,
        }
    }

    /// A client stream offering 100 MB/s (capped to 60).
    pub fn client() -> Self {
        HdfsNode {
            kind: HdfsTrafficKind::Client,
            offered_bytes_per_sec: 100 << 20,
            chunk_bytes: 1 << 20,
        }
    }

    /// Mean gap between chunk submissions at the offered rate.
    pub fn mean_gap(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.chunk_bytes as f64 / self.offered_bytes_per_sec as f64)
    }

    /// Samples the next submission `(time, op)` after `now`.
    pub fn next_submission(&self, now: SimTime, rng: &mut SimRng) -> (SimTime, DiskOp) {
        let gap = Exp::from_mean(self.mean_gap().as_secs_f64()).sample(rng);
        let kind = match self.kind {
            // Replication is write-heavy; clients mostly read inputs.
            HdfsTrafficKind::Replication => {
                if rng.bernoulli(0.9) {
                    IoKind::Write
                } else {
                    IoKind::Read
                }
            }
            HdfsTrafficKind::Client => {
                if rng.bernoulli(0.7) {
                    IoKind::Read
                } else {
                    IoKind::Write
                }
            }
        };
        (
            now + SimDuration::from_secs_f64(gap),
            DiskOp {
                kind,
                bytes: self.chunk_bytes,
                access: AccessPattern::Sequential,
            },
        )
    }
}

/// Thread tags `HDFS_TAG_BASE..` identify HDFS daemon threads.
pub const HDFS_TAG_BASE: u64 = 1 << 42;

/// The HDFS daemon's CPU footprint: a duty-cycle program that consumes a
/// configurable fraction of one core (the paper observed up to 5 % of the
/// whole machine across daemons).
#[derive(Clone, Debug)]
pub struct HdfsCpuProgram {
    busy: SimDuration,
    idle: SimDuration,
    toggle: bool,
}

impl HdfsCpuProgram {
    /// A program consuming `duty` fraction of one core in 50 ms cycles.
    ///
    /// # Panics
    ///
    /// Panics unless `duty` is in `(0, 1)`.
    pub fn new(duty: f64) -> Self {
        assert!(duty > 0.0 && duty < 1.0, "duty must be in (0,1): {duty}");
        let cycle = SimDuration::from_millis(50);
        HdfsCpuProgram {
            busy: cycle.mul_f64(duty),
            idle: cycle.mul_f64(1.0 - duty),
            toggle: false,
        }
    }
}

impl ThreadProgram for HdfsCpuProgram {
    fn next_step(&mut self, _rng: &mut SimRng) -> Step {
        self.toggle = !self.toggle;
        if self.toggle {
            Step::Compute(self.busy)
        } else {
            Step::Sleep(self.idle)
        }
    }

    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_rate_matches_submissions() {
        let node = HdfsNode::replication();
        let mut rng = SimRng::seed_from_u64(11);
        let mut t = SimTime::ZERO;
        let mut bytes = 0u64;
        while t < SimTime::from_secs(10) {
            let (next, op) = node.next_submission(t, &mut rng);
            t = next;
            bytes += op.bytes;
        }
        let rate = bytes as f64 / 10.0 / (1 << 20) as f64;
        assert!((rate - 40.0).abs() < 4.0, "offered {rate} MB/s");
    }

    #[test]
    fn replication_is_write_heavy() {
        let node = HdfsNode::replication();
        let mut rng = SimRng::seed_from_u64(12);
        let mut writes = 0;
        for _ in 0..10_000 {
            let (_, op) = node.next_submission(SimTime::ZERO, &mut rng);
            if op.kind == IoKind::Write {
                writes += 1;
            }
        }
        assert!(writes > 8_500, "writes {writes}");
    }

    #[test]
    fn cpu_program_duty_cycle() {
        use simcore::CoreMask;
        use simcpu::{Machine, MachineConfig};
        use telemetry::TenantClass;

        let mut m = Machine::new(MachineConfig::small(2));
        let job = m.create_job(TenantClass::Secondary, CoreMask::all(2));
        m.spawn_program(
            SimTime::ZERO,
            job,
            simcpu::Program::from(HdfsCpuProgram::new(0.1)),
            HDFS_TAG_BASE,
        );
        m.advance_to(SimTime::from_secs(2));
        let b = m.breakdown();
        let frac = b.fraction(TenantClass::Secondary);
        // 10% of one core on a 2-core machine = 5% of capacity.
        assert!((frac - 0.05).abs() < 0.01, "duty fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn bad_duty_rejected() {
        let _ = HdfsCpuProgram::new(1.5);
    }
}
