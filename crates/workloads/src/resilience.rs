//! Overload-resilience policies: admission control, retries, hedging,
//! circuit breakers, and deadline propagation.
//!
//! Everything here is *pure policy* — deterministic decision logic with no
//! event source of its own. The [`crate::service_graph::GraphEngine`] and
//! the box driver consult these types at well-defined points (arrival,
//! stage activation, attempt failure) so that a run with a policy attached
//! replays bit-identically, and a run without one is byte-identical to a
//! build that predates this module.
//!
//! Determinism notes:
//!
//! - Retry jitter is a hash of `(seed, request, attempt)` — never a draw
//!   from the simulation RNG stream, so enabling retries does not perturb
//!   the compute-time sampling sequence.
//! - Hedge delays are closed-form log-normal quantiles of the stage's
//!   compute distribution (no sampling at all).
//! - The circuit breaker transitions on observed events and sim time only.

use simcore::{SimDuration, SimTime};

/// Per-service concurrency + queue-depth admission limit.
///
/// An arrival is admitted while the service's in-flight count (running
/// plus queued) is below `max_in_flight + queue_depth`; past that it is
/// shed deterministically and recorded as a drop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Requests allowed to run concurrently.
    pub max_in_flight: u64,
    /// Additional arrivals allowed to wait beyond the concurrency limit.
    pub queue_depth: u64,
}

impl AdmissionPolicy {
    /// Deterministic shed decision for an arrival seeing `in_flight`
    /// requests already admitted.
    pub fn admits(&self, in_flight: u64) -> bool {
        in_flight < self.max_in_flight.saturating_add(self.queue_depth)
    }
}

/// Exponential-backoff retry policy with deterministic jitter and a hard
/// attempt budget (the same backoff shape as `RestartSpec` in the
/// scenario spec layer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_backoff: SimDuration,
    /// Backoff multiplier per additional retry (>= 1).
    pub multiplier: u32,
    /// Maximum retries per request (<= [`RetryPolicy::MAX_BUDGET`]).
    pub budget: u32,
    /// Upper bound on the deterministic jitter added to each delay.
    pub jitter: SimDuration,
}

impl RetryPolicy {
    /// Hard cap on the retry budget enforced by spec validation.
    pub const MAX_BUDGET: u32 = 16;

    /// The un-jittered exponential backoff before retry `attempt`
    /// (1-based), saturating instead of overflowing.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let mut ns = self.base_backoff.as_nanos();
        for _ in 1..attempt.max(1) {
            ns = ns.saturating_mul(self.multiplier.max(1) as u64);
        }
        SimDuration::from_nanos(ns)
    }

    /// Deterministic jitter for retry `attempt` of request `ridx`, in
    /// `[0, jitter]`. Hash-derived, so it never consumes simulation RNG.
    pub fn jitter_for(&self, seed: u64, ridx: u64, attempt: u32) -> SimDuration {
        let cap = self.jitter.as_nanos();
        if cap == 0 {
            return SimDuration::ZERO;
        }
        let h = mix64(seed ^ ridx.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((attempt as u64) << 48));
        SimDuration::from_nanos(h % (cap + 1))
    }

    /// Delay before retry `attempt` (1-based): backoff plus jitter,
    /// clamped to be monotone non-decreasing across attempts so a later
    /// retry never waits less than an earlier one did.
    pub fn delay(&self, seed: u64, ridx: u64, attempt: u32) -> SimDuration {
        let mut best = SimDuration::ZERO;
        for k in 1..=attempt.max(1) {
            let d = self.backoff(k) + self.jitter_for(seed, ridx, k);
            best = best.max(d);
        }
        best
    }

    /// The full retry-delay schedule for request `ridx`: one entry per
    /// budgeted retry. Deterministic in `(policy, seed, ridx)`, monotone
    /// non-decreasing, and never longer than the budget.
    pub fn schedule(&self, seed: u64, ridx: u64) -> Vec<SimDuration> {
        (1..=self.budget.min(Self::MAX_BUDGET))
            .map(|k| self.delay(seed, ridx, k))
            .collect()
    }
}

/// Hedging policy: duplicate a straggling stage once its runtime passes
/// the spec'd percentile of its own compute distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgePolicy {
    /// Percentile of the stage compute distribution after which a hedge
    /// fires, in `(0, 1)` (e.g. 0.95 hedges the slowest 5 % of workers).
    pub percentile: f64,
}

impl HedgePolicy {
    /// Closed-form hedge delay for a stage whose compute time is
    /// log-normal with the given median (µs) and shape. No RNG involved:
    /// the quantile of `LogNormal(median, sigma)` at `p` is
    /// `median * exp(sigma * z_p)`.
    pub fn stage_delay(&self, median_us: f64, sigma: f64) -> SimDuration {
        let z = normal_quantile(self.percentile.clamp(1e-6, 1.0 - 1e-6));
        SimDuration::from_micros_f64(median_us * (sigma * z).exp())
    }
}

/// Circuit-breaker policy: open after `threshold` consecutive failures,
/// half-open after `cooldown`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// Time an open breaker waits before allowing a half-open probe.
    pub cooldown: SimDuration,
}

/// The full resilience policy a service executes. Every mechanism is
/// independently optional; `ResiliencePolicy::default()` disables all of
/// them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResiliencePolicy {
    /// Admission control / load shedding.
    pub admission: Option<AdmissionPolicy>,
    /// Retries with exponential backoff.
    pub retry: Option<RetryPolicy>,
    /// Stage hedging.
    pub hedge: Option<HedgePolicy>,
    /// Per-edge circuit breakers.
    pub breaker: Option<BreakerPolicy>,
    /// Cancel downstream stages whose inherited budget is already spent.
    pub propagate_deadlines: bool,
}

/// Circuit-breaker state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counting consecutive failures.
    Closed,
    /// Tripped: requests fast-fail until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is allowed through; its outcome
    /// closes or re-opens the breaker.
    HalfOpen,
}

/// A per-edge circuit breaker.
///
/// Opens after `threshold` *consecutive* failures (a success resets the
/// count), fast-fails while open, and transitions to half-open purely by
/// sim time — an open breaker can never get stuck because the transition
/// happens inside [`CircuitBreaker::allow`] with no event required.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    state: BreakerState,
    consecutive: u32,
    opened_at: SimTime,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: &BreakerPolicy) -> Self {
        CircuitBreaker {
            threshold: policy.threshold.max(1),
            cooldown: policy.cooldown,
            state: BreakerState::Closed,
            consecutive: 0,
            opened_at: SimTime::ZERO,
        }
    }

    /// Current state, after applying the time-based open → half-open
    /// transition for `now`.
    pub fn state_at(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now.since(self.opened_at) >= self.cooldown {
            self.state = BreakerState::HalfOpen;
        }
        self.state
    }

    /// Whether traffic may pass at `now`. Open breakers whose cooldown
    /// has elapsed become half-open and admit the probe.
    pub fn allow(&mut self, now: SimTime) -> bool {
        self.state_at(now) != BreakerState::Open
    }

    /// Records a success: closes the breaker and resets the failure run.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive = 0;
    }

    /// Records a failure; returns `true` when this failure (re)opened the
    /// breaker (the `breaker_opens` counter increments on `true`).
    pub fn on_failure(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // Failed probe: re-open and restart the cooldown clock.
                self.state = BreakerState::Open;
                self.opened_at = now;
                true
            }
            BreakerState::Closed => {
                self.consecutive += 1;
                if self.consecutive >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// SplitMix64-style finalizer: the stateless hash behind retry jitter.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 on (0, 1)). Used for closed-form log-normal
/// quantiles so hedge delays need no sampling.
// Coefficients quoted digit-for-digit from Acklam's published table.
#[allow(clippy::excessive_precision)]
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retry() -> RetryPolicy {
        RetryPolicy {
            base_backoff: SimDuration::from_millis(2),
            multiplier: 2,
            budget: 5,
            jitter: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn admission_sheds_past_cap() {
        let a = AdmissionPolicy {
            max_in_flight: 4,
            queue_depth: 2,
        };
        assert!(a.admits(0));
        assert!(a.admits(5));
        assert!(!a.admits(6));
        assert!(!a.admits(100));
    }

    #[test]
    fn retry_schedule_is_deterministic_monotone_bounded() {
        let r = retry();
        let s1 = r.schedule(42, 7);
        let s2 = r.schedule(42, 7);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 5);
        for w in s1.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Different requests get different jitter.
        assert_ne!(r.schedule(42, 7), r.schedule(42, 8));
        // Backoff doubles: retry 3 waits at least base * 4.
        assert!(s1[2] >= SimDuration::from_millis(8));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let r = RetryPolicy {
            base_backoff: SimDuration::from_secs(1),
            multiplier: u32::MAX,
            budget: 16,
            jitter: SimDuration::ZERO,
        };
        assert_eq!(r.backoff(16), SimDuration::MAX);
    }

    #[test]
    fn breaker_opens_at_threshold_and_half_opens() {
        let mut b = CircuitBreaker::new(&BreakerPolicy {
            threshold: 3,
            cooldown: SimDuration::from_millis(10),
        });
        let t0 = SimTime::ZERO;
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        b.on_success(); // resets the consecutive run
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert!(b.on_failure(t0)); // third consecutive: opens
        assert!(!b.allow(SimTime::from_millis(5)));
        // Cooldown elapsed: half-open, probe admitted.
        assert!(b.allow(SimTime::from_millis(10)));
        assert_eq!(b.state_at(SimTime::from_millis(10)), BreakerState::HalfOpen);
        // Failed probe re-opens immediately (counts as an open).
        assert!(b.on_failure(SimTime::from_millis(11)));
        assert!(!b.allow(SimTime::from_millis(20)));
        assert!(b.allow(SimTime::from_millis(21)));
        b.on_success();
        assert_eq!(b.state_at(SimTime::from_millis(21)), BreakerState::Closed);
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.99) - 2.326_348).abs() < 1e-4);
        assert!((normal_quantile(0.01) + 2.326_348).abs() < 1e-4);
    }

    #[test]
    fn hedge_delay_is_the_lognormal_quantile() {
        let h = HedgePolicy { percentile: 0.95 };
        // LogNormal(median=200us, sigma=0.4): q95 = 200 * exp(0.4 * 1.6449).
        let d = h.stage_delay(200.0, 0.4);
        let expect = 200.0 * (0.4 * 1.644_854f64).exp();
        assert!((d.as_micros_f64() - expect).abs() < 0.1);
        // Higher percentile waits longer.
        let h99 = HedgePolicy { percentile: 0.99 };
        assert!(h99.stage_delay(200.0, 0.4) > d);
    }
}
