//! Microservice-chain workload: a DAG of compute stages connected by
//! simnet hops.
//!
//! [`GraphWorkload`] describes the topology — each stage is a fan-out of
//! arena-backed compute threads with a log-normal service-time
//! distribution and a declared memory footprint; each edge is a network
//! hop with a payload size and an extra propagation latency. The
//! [`GraphEngine`] executes requests against a [`Machine`]: every root
//! stage activates on arrival, a stage completes when all its workers
//! exit, completion pushes one message per out-edge through an internal
//! [`NetSim`] (one node per stage), and a downstream stage activates once
//! every in-edge has delivered. A request completes when all sink stages
//! have finished.
//!
//! With a [`ResiliencePolicy`] attached (see [`GraphEngine::with_policy`])
//! the engine additionally executes retries with deterministic backoff,
//! per-stage hedging, per-edge circuit breakers, and deadline
//! propagation. Every mechanism is gated on the policy being present: an
//! engine built without one performs the exact same RNG draws, spawns,
//! and sends as before the resilience layer existed.
//!
//! The engine is workload-layer only: it knows nothing about boxes,
//! controllers, or tenants. The hosting driver supplies the `tag_base`
//! ORed into every thread tag (primary/service routing bits), pumps
//! [`GraphEngine::advance_to`] alongside its other event sources, and
//! routes thread exits back via [`GraphEngine::on_thread_exited`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use simcore::dist::{LogNormal, Sample};
use simcore::{SimDuration, SimRng, SimTime};
use simcpu::{JobId, Machine, Program, ThreadId};
use simnet::{NetConfig, NetSim, NodeId, TrafficClass};
use telemetry::ResilienceStats;

use crate::resilience::{CircuitBreaker, ResiliencePolicy, RetryPolicy};

/// Worker index bits in a stage-thread tag (fan-out ≤ 1024).
const WORKER_BITS: u32 = 10;
/// Stage index bits (≤ 64 stages).
const STAGE_BITS: u32 = 6;
const STAGE_SHIFT: u32 = WORKER_BITS;
const REQUEST_SHIFT: u32 = WORKER_BITS + STAGE_BITS;
/// Request index bits (dense per-run indices; 40 bits is plenty).
const REQUEST_BITS: u32 = 40;

/// Largest per-stage fan-out the tag encoding supports.
pub const MAX_FAN_OUT: u32 = 1 << WORKER_BITS;
/// Largest stage count the tag encoding supports.
pub const MAX_STAGES: usize = 1 << STAGE_BITS;
/// Largest edge count the net-token encoding supports.
pub const MAX_EDGES: usize = 256;

/// Worker-field bit marking a hedge duplicate. Hedged graphs give up the
/// top worker bit, so their per-stage fan-out is capped at
/// [`MAX_HEDGED_FAN_OUT`].
const HEDGE_BIT: u32 = 1 << (WORKER_BITS - 1);
/// Largest per-stage fan-out a hedging-enabled engine supports.
pub const MAX_HEDGED_FAN_OUT: u32 = HEDGE_BIT;

/// One compute stage of a service graph.
#[derive(Clone, Debug)]
pub struct GraphStage {
    /// Stage name (diagnostics; uniqueness enforced by the spec layer).
    pub name: String,
    /// Number of parallel worker threads spawned per activation.
    pub fan_out: u32,
    /// Median per-worker compute time in microseconds.
    pub compute_us: f64,
    /// Log-normal shape of the compute-time distribution.
    pub sigma: f64,
    /// Resident memory this stage contributes to the service working set.
    pub memory_bytes: u64,
}

/// A directed network hop between two stages.
#[derive(Clone, Debug)]
pub struct GraphEdge {
    /// Source stage index.
    pub from: u32,
    /// Destination stage index.
    pub to: u32,
    /// Message payload in bytes (serialization cost on the fabric).
    pub bytes: u64,
    /// Extra propagation latency added before the message enters the
    /// fabric (models an RPC hop longer than the base NIC latency).
    pub latency: SimDuration,
}

/// A validated service-graph workload description.
#[derive(Clone, Debug)]
pub struct GraphWorkload {
    /// The stages, indexed by `GraphEdge::{from,to}`.
    pub stages: Vec<GraphStage>,
    /// The hops; an empty list means every stage is both root and sink.
    pub edges: Vec<GraphEdge>,
    /// Per-request deadline.
    pub timeout: SimDuration,
}

impl GraphWorkload {
    /// Total declared resident memory across all stages.
    pub fn working_set(&self) -> u64 {
        self.stages.iter().map(|s| s.memory_bytes).sum()
    }

    /// Checks structural soundness: stage/edge bounds, index validity,
    /// no self-edges or duplicate edges, and acyclicity (iterative
    /// Kahn's algorithm — never recurses, never panics on bad input).
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("graph has no stages".into());
        }
        if self.stages.len() > MAX_STAGES {
            return Err(format!(
                "too many stages: {} > {MAX_STAGES}",
                self.stages.len()
            ));
        }
        if self.edges.len() > MAX_EDGES {
            return Err(format!(
                "too many edges: {} > {MAX_EDGES}",
                self.edges.len()
            ));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.fan_out == 0 || s.fan_out > MAX_FAN_OUT {
                return Err(format!(
                    "stage {i} ({}) fan_out {} out of range 1..={MAX_FAN_OUT}",
                    s.name, s.fan_out
                ));
            }
            if !s.compute_us.is_finite() || s.compute_us <= 0.0 {
                return Err(format!(
                    "stage {i} ({}) compute_us must be positive and finite",
                    s.name
                ));
            }
            if !s.sigma.is_finite() || s.sigma < 0.0 || s.sigma > 4.0 {
                return Err(format!("stage {i} ({}) sigma must be in [0, 4]", s.name));
            }
        }
        let n = self.stages.len() as u32;
        let mut seen = std::collections::BTreeSet::new();
        let mut in_degree = vec![0u32; n as usize];
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= n || e.to >= n {
                return Err(format!("edge {i} references a missing stage"));
            }
            if e.from == e.to {
                return Err(format!("edge {i} is a self-loop on stage {}", e.from));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(format!("duplicate edge {} -> {}", e.from, e.to));
            }
            in_degree[e.to as usize] += 1;
        }
        // Kahn's algorithm: all stages must drain, else a cycle remains.
        let mut ready: Vec<u32> = (0..n).filter(|&i| in_degree[i as usize] == 0).collect();
        let mut drained = 0u32;
        while let Some(s) = ready.pop() {
            drained += 1;
            for e in self.edges.iter().filter(|e| e.from == s) {
                in_degree[e.to as usize] -= 1;
                if in_degree[e.to as usize] == 0 {
                    ready.push(e.to);
                }
            }
        }
        if drained != n {
            return Err("graph contains a cycle".into());
        }
        if self.timeout <= SimDuration::ZERO {
            return Err("timeout must be positive".into());
        }
        Ok(())
    }
}

/// A finished (or dropped) request.
#[derive(Clone, Copy, Debug)]
pub struct GraphOutcome {
    /// Dense request index assigned at arrival.
    pub ridx: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// End-to-end latency (valid when not dropped).
    pub latency: SimDuration,
    /// True when the request timed out, was refused, or was failed.
    pub dropped: bool,
}

/// Per-request execution state. Vectors are recycled through a pool when
/// the request retires, keeping the steady-state arrival path
/// allocation-free.
#[derive(Clone, Debug, Default)]
struct RequestState {
    arrival: SimTime,
    done: bool,
    /// Retry attempt counter (0 = the original attempt).
    attempt: u32,
    /// True between an attempt failing and its retry starting.
    waiting_retry: bool,
    /// Current attempt's deadline (deadline-propagation cutoff).
    deadline: SimTime,
    /// Sink stages still to finish before the request completes.
    pending_sinks: u32,
    /// Per-stage live worker count (0 = inactive or finished).
    pending_workers: Vec<u32>,
    /// Per-stage live hedge-duplicate count.
    hedge_workers: Vec<u32>,
    /// Per-stage input edges still undelivered.
    pending_inputs: Vec<u32>,
    /// Threads currently running for this request, with their tags
    /// (killed on failure; tags identify hedge sets for cancellation).
    live_tids: Vec<(ThreadId, u64)>,
}

/// An engine-internal timer (retry backoff, attempt deadlines, hedge
/// fire points). Ordered by time with a sequence tie-break so the heap
/// pops deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    /// Launch retry `attempt` of `ridx` (backoff elapsed).
    RetryStart { ridx: u64, attempt: u32 },
    /// Per-attempt deadline for retries (attempt 0 is the host's timer).
    AttemptTimeout { ridx: u64, attempt: u32 },
    /// Hedge-delay elapsed for `stage` of `ridx`'s attempt `attempt`.
    HedgeFire { ridx: u64, stage: u32, attempt: u32 },
}

/// Executes [`GraphWorkload`] requests against a machine.
///
/// `Clone` deep-copies the full execution state (in-flight requests,
/// internal fabric, timers, RNG) — the box checkpoint/rollback path relies
/// on a clone behaving identically to the original from the clone point on.
#[derive(Clone)]
pub struct GraphEngine {
    graph: Arc<GraphWorkload>,
    job: JobId,
    /// Routing bits ORed into every thread tag (supplied by the host).
    tag_base: u64,
    net: NetSim,
    rng: SimRng,
    /// Per-stage compute-time distributions (same order as stages).
    dists: Vec<LogNormal>,
    /// Root stages (no in-edges), activated on arrival.
    roots: Vec<u32>,
    /// Per-stage in-degree template copied into each request.
    in_degree: Vec<u32>,
    /// Sink count (stages with no out-edges).
    n_sinks: u32,
    requests: Vec<RequestState>,
    /// Retired request-state vectors awaiting reuse.
    pool: Vec<RequestState>,
    outcomes: Vec<GraphOutcome>,
    deliveries: Vec<simnet::Delivery>,
    /// Resilience policy; `None` disables every mechanism and keeps the
    /// engine bit-identical to the pre-resilience implementation.
    policy: Option<Arc<ResiliencePolicy>>,
    /// Engine seed, kept for hash-derived retry jitter.
    seed: u64,
    stats: ResilienceStats,
    /// Admitted-but-not-retired request count (O(1) `in_flight`).
    live: u64,
    /// One breaker per edge (empty without a breaker policy).
    breakers: Vec<CircuitBreaker>,
    /// Per-stage hedge delays (empty without a hedge policy).
    hedge_delays: Vec<SimDuration>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    /// Total stage worker threads spawned (fan-out statistics).
    pub workers_spawned: u64,
}

impl GraphEngine {
    /// Builds an engine for a validated graph with no resilience policy.
    ///
    /// `tag_base` is ORed into every spawned thread's tag — the host uses
    /// it to route machine outputs back to this engine. The low
    /// `REQUEST_SHIFT + REQUEST_BITS` bits must be zero.
    ///
    /// # Panics
    ///
    /// Panics when the graph fails [`GraphWorkload::validate`].
    pub fn new(graph: Arc<GraphWorkload>, job: JobId, tag_base: u64, seed: u64) -> Self {
        Self::with_policy(graph, job, tag_base, seed, None)
    }

    /// Builds an engine executing `policy` on top of the graph.
    ///
    /// # Panics
    ///
    /// Panics when the graph fails [`GraphWorkload::validate`], or when a
    /// hedge policy is combined with a stage fan-out above
    /// [`MAX_HEDGED_FAN_OUT`] (hedging claims the top worker-tag bit).
    pub fn with_policy(
        graph: Arc<GraphWorkload>,
        job: JobId,
        tag_base: u64,
        seed: u64,
        policy: Option<Arc<ResiliencePolicy>>,
    ) -> Self {
        if let Err(e) = graph.validate() {
            panic!("invalid service graph: {e}");
        }
        debug_assert_eq!(tag_base & ((1 << (REQUEST_SHIFT + REQUEST_BITS)) - 1), 0);
        let n = graph.stages.len();
        let dists: Vec<LogNormal> = graph
            .stages
            .iter()
            .map(|s| LogNormal::from_median(s.compute_us, s.sigma))
            .collect();
        let mut in_degree = vec![0u32; n];
        let mut has_out = vec![false; n];
        for e in &graph.edges {
            in_degree[e.to as usize] += 1;
            has_out[e.from as usize] = true;
        }
        let roots = (0..n as u32)
            .filter(|&i| in_degree[i as usize] == 0)
            .collect();
        let n_sinks = has_out.iter().filter(|o| !**o).count() as u32;
        let mut breakers = Vec::new();
        let mut hedge_delays = Vec::new();
        if let Some(p) = policy.as_deref() {
            if let Some(bp) = &p.breaker {
                breakers = vec![CircuitBreaker::new(bp); graph.edges.len()];
            }
            if let Some(hp) = &p.hedge {
                for s in &graph.stages {
                    if s.fan_out > MAX_HEDGED_FAN_OUT {
                        panic!(
                            "hedging requires fan_out <= {MAX_HEDGED_FAN_OUT}, stage {} has {}",
                            s.name, s.fan_out
                        );
                    }
                    hedge_delays.push(hp.stage_delay(s.compute_us, s.sigma));
                }
            }
        }
        GraphEngine {
            net: NetSim::new(NetConfig::default(), n as u32, seed ^ 0x6E7),
            graph,
            job,
            tag_base,
            rng: SimRng::seed_from_u64(seed),
            dists,
            roots,
            in_degree,
            n_sinks,
            requests: Vec::new(),
            pool: Vec::new(),
            outcomes: Vec::new(),
            deliveries: Vec::new(),
            policy,
            seed,
            stats: ResilienceStats::default(),
            live: 0,
            breakers,
            hedge_delays,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            workers_spawned: 0,
        }
    }

    /// The workload this engine executes.
    pub fn graph(&self) -> &Arc<GraphWorkload> {
        &self.graph
    }

    /// Requests admitted but not yet retired.
    pub fn in_flight(&self) -> usize {
        self.live as usize
    }

    /// Counters for the resilience mechanisms this engine executed.
    pub fn resilience_stats(&self) -> &ResilienceStats {
        &self.stats
    }

    fn tag(&self, ridx: u64, stage: u32, worker: u32) -> u64 {
        self.tag_base
            | ((ridx & ((1 << REQUEST_BITS) - 1)) << REQUEST_SHIFT)
            | ((stage as u64) << STAGE_SHIFT)
            | worker as u64
    }

    /// Splits a thread tag into (request, stage) indices.
    fn parse_tag(tag: u64) -> (u64, u32) {
        (
            (tag >> REQUEST_SHIFT) & ((1 << REQUEST_BITS) - 1),
            ((tag >> STAGE_SHIFT) & ((1 << STAGE_BITS) as u64 - 1)) as u32,
        )
    }

    /// Packs a (request, edge, attempt) triple into a net token. Attempt
    /// 0 (the only attempt without a retry policy) encodes identically to
    /// the pre-resilience `(ridx << 8) | eidx` layout.
    fn net_token(ridx: u64, eidx: usize, attempt: u32) -> u64 {
        ((attempt as u64) << (8 + REQUEST_BITS)) | (ridx << 8) | eidx as u64
    }

    fn push_timer(&mut self, at: SimTime, kind: TimerKind) {
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry { at, seq, kind }));
    }

    fn retry_policy(&self) -> Option<&RetryPolicy> {
        self.policy.as_deref().and_then(|p| p.retry.as_ref())
    }

    fn fresh_request(&mut self, arrival: SimTime) -> u64 {
        let ridx = self.requests.len() as u64;
        let mut st = self.pool.pop().unwrap_or_default();
        st.arrival = arrival;
        st.done = false;
        st.attempt = 0;
        st.waiting_retry = false;
        st.deadline = arrival + self.graph.timeout;
        st.pending_sinks = self.n_sinks;
        st.pending_workers.clear();
        st.pending_workers.resize(self.graph.stages.len(), 0);
        st.hedge_workers.clear();
        st.hedge_workers.resize(self.graph.stages.len(), 0);
        st.pending_inputs.clear();
        st.pending_inputs.extend_from_slice(&self.in_degree);
        st.live_tids.clear();
        self.requests.push(st);
        self.live += 1;
        ridx
    }

    /// Admits a request: every root stage activates immediately.
    /// Returns the dense request index.
    pub fn on_arrival(&mut self, now: SimTime, machine: &mut Machine) -> u64 {
        let ridx = self.fresh_request(now);
        for i in 0..self.roots.len() {
            let stage = self.roots[i];
            if self.requests[ridx as usize].done {
                break;
            }
            self.activate_stage(now, ridx, stage, machine);
        }
        ridx
    }

    /// Records a refused request (the hosting process is down, or
    /// admission control shed the arrival): dropped immediately without
    /// touching the machine.
    pub fn refuse_arrival(&mut self, now: SimTime) -> u64 {
        let ridx = self.fresh_request(now);
        self.retire(now, ridx, true);
        ridx
    }

    fn activate_stage(&mut self, now: SimTime, ridx: u64, stage: u32, machine: &mut Machine) {
        // Deadline propagation: the stage inherits the attempt's remaining
        // budget; activations that cannot finish in time are cancelled
        // before they spawn anything.
        if self
            .policy
            .as_deref()
            .is_some_and(|p| p.propagate_deadlines)
        {
            let est = SimDuration::from_micros_f64(self.graph.stages[stage as usize].compute_us);
            if now + est > self.requests[ridx as usize].deadline {
                self.stats.deadline_cancels += 1;
                self.fail_attempt(now, ridx, machine);
                return;
            }
        }
        let fan_out = self.graph.stages[stage as usize].fan_out;
        self.requests[ridx as usize].pending_workers[stage as usize] = fan_out;
        self.spawn_set(now, ridx, stage, false, machine);
        if !self.hedge_delays.is_empty() {
            let attempt = self.requests[ridx as usize].attempt;
            let at = now + self.hedge_delays[stage as usize];
            self.push_timer(
                at,
                TimerKind::HedgeFire {
                    ridx,
                    stage,
                    attempt,
                },
            );
        }
    }

    /// Spawns one worker set (primary or hedge) for a stage.
    fn spawn_set(
        &mut self,
        now: SimTime,
        ridx: u64,
        stage: u32,
        hedged: bool,
        machine: &mut Machine,
    ) {
        let spec = &self.graph.stages[stage as usize];
        let fan_out = spec.fan_out;
        let dist = self.dists[stage as usize];
        // Continuation stages carry the wake boost: they resume a request
        // that already queued once, exactly like a woken index worker.
        let boosted = self.in_degree[stage as usize] > 0;
        for w in 0..fan_out {
            let d = SimDuration::from_micros_f64(dist.sample(&mut self.rng));
            let w = if hedged { w | HEDGE_BIT } else { w };
            let tag = self.tag(ridx, stage, w);
            let tid =
                machine.spawn_program_with(now, self.job, Program::compute_once(d), tag, boosted);
            self.requests[ridx as usize].live_tids.push((tid, tag));
            self.workers_spawned += 1;
        }
    }

    /// Kills every live thread of one stage's primary or hedge set (the
    /// losing side of a hedge race). Their later exit reports are ignored
    /// because the tids leave the live list here.
    fn cancel_set(
        req: &mut RequestState,
        now: SimTime,
        stage: u32,
        hedged: bool,
        machine: &mut Machine,
    ) {
        let mut i = 0;
        while i < req.live_tids.len() {
            let (tid, tag) = req.live_tids[i];
            let (_, s) = Self::parse_tag(tag);
            if s == stage && ((tag & HEDGE_BIT as u64) != 0) == hedged {
                req.live_tids.swap_remove(i);
                machine.kill_thread(now, tid);
            } else {
                i += 1;
            }
        }
    }

    /// Routes one of this engine's threads exiting back into the graph.
    pub fn on_thread_exited(
        &mut self,
        now: SimTime,
        tag: u64,
        tid: ThreadId,
        machine: &mut Machine,
    ) {
        let (ridx, stage) = Self::parse_tag(tag);
        let Some(req) = self.requests.get_mut(ridx as usize) else {
            return;
        };
        let Some(pos) = req.live_tids.iter().position(|(t, _)| *t == tid) else {
            // Administratively killed (failed attempt or hedge loser):
            // already accounted for when it left the live list.
            return;
        };
        req.live_tids.swap_remove(pos);
        if req.done {
            return;
        }
        let hedged = !self.hedge_delays.is_empty() && (tag & HEDGE_BIT as u64) != 0;
        if hedged {
            let hw = &mut req.hedge_workers[stage as usize];
            debug_assert!(*hw > 0, "hedge exit for inactive stage {stage}");
            *hw -= 1;
            if *hw > 0 {
                return;
            }
            // The hedge set finished first: cancel the original workers.
            if req.pending_workers[stage as usize] > 0 {
                req.pending_workers[stage as usize] = 0;
                self.stats.hedges_won += 1;
                Self::cancel_set(req, now, stage, false, machine);
            }
        } else {
            let workers = &mut req.pending_workers[stage as usize];
            debug_assert!(*workers > 0, "exit for inactive stage {stage}");
            *workers -= 1;
            if *workers > 0 {
                return;
            }
            // The original set finished first: cancel any live hedge.
            if req.hedge_workers[stage as usize] > 0 {
                req.hedge_workers[stage as usize] = 0;
                self.stats.hedges_lost += 1;
                Self::cancel_set(req, now, stage, true, machine);
            }
        }
        self.stage_complete(now, ridx, stage);
    }

    fn stage_complete(&mut self, now: SimTime, ridx: u64, stage: u32) {
        if !self.breakers.is_empty() && self.in_degree[stage as usize] > 0 {
            for (eidx, e) in self.graph.edges.iter().enumerate() {
                if e.to == stage {
                    self.breakers[eidx].on_success();
                }
            }
        }
        let attempt = self.requests[ridx as usize].attempt;
        let mut sent = false;
        for (eidx, e) in self.graph.edges.iter().enumerate() {
            if e.from != stage {
                continue;
            }
            sent = true;
            self.net.send(
                now + e.latency,
                NodeId(e.from),
                NodeId(e.to),
                e.bytes,
                TrafficClass::High,
                Self::net_token(ridx, eidx, attempt),
            );
        }
        if !sent {
            // Sink stage: the request completes when every sink is done.
            let req = &mut self.requests[ridx as usize];
            req.pending_sinks -= 1;
            if req.pending_sinks == 0 {
                self.retire(now, ridx, false);
            }
        }
    }

    /// Handles the host's deadline timer for a request: fails the attempt
    /// (which may schedule a retry) or retires it as dropped. With
    /// retries active the host timer only covers attempt 0 — later
    /// attempts run on the engine's own deadline timers.
    pub fn on_timeout(&mut self, now: SimTime, ridx: u64, machine: &mut Machine) {
        let Some(req) = self.requests.get(ridx as usize) else {
            return;
        };
        if req.done || req.attempt > 0 {
            return;
        }
        self.fail_attempt(now, ridx, machine);
    }

    /// Fails the request's current attempt: records breaker failures for
    /// running stages, kills its threads, and either schedules a retry
    /// (budget remaining) or retires the request as dropped.
    fn fail_attempt(&mut self, now: SimTime, ridx: u64, machine: &mut Machine) {
        if !self.breakers.is_empty() {
            let mut opened = 0u64;
            {
                let req = &self.requests[ridx as usize];
                for (eidx, e) in self.graph.edges.iter().enumerate() {
                    if req.pending_workers[e.to as usize] > 0 && self.breakers[eidx].on_failure(now)
                    {
                        opened += 1;
                    }
                }
            }
            self.stats.breaker_opens += opened;
        }
        // kill_thread reports the exit back through on_thread_exited;
        // emptying live_tids first makes those exits no-ops.
        let req = &mut self.requests[ridx as usize];
        let mut tids = std::mem::take(&mut req.live_tids);
        for (tid, _) in tids.drain(..) {
            machine.kill_thread(now, tid);
        }
        self.requests[ridx as usize].live_tids = tids;
        let budget = self
            .retry_policy()
            .map(|r| r.budget.min(RetryPolicy::MAX_BUDGET));
        let attempt = self.requests[ridx as usize].attempt;
        match budget {
            Some(budget) if attempt < budget => {
                let delay = {
                    let r = self.retry_policy().expect("budget implies policy");
                    r.delay(self.seed, ridx, attempt + 1)
                };
                let req = &mut self.requests[ridx as usize];
                req.attempt += 1;
                req.waiting_retry = true;
                // Clear stage state so stale deliveries of the dead
                // attempt cannot activate anything while we wait.
                req.pending_workers.iter_mut().for_each(|w| *w = 0);
                req.hedge_workers.iter_mut().for_each(|w| *w = 0);
                self.stats.retries += 1;
                self.push_timer(
                    now + delay,
                    TimerKind::RetryStart {
                        ridx,
                        attempt: attempt + 1,
                    },
                );
            }
            _ => self.retire(now, ridx, true),
        }
    }

    /// Fails every unfinished request (the hosting process died).
    /// Requests already waiting out a retry backoff keep waiting — the
    /// retry models the client's resubmission, which the crash does not
    /// cancel.
    pub fn fail_all(&mut self, now: SimTime, machine: &mut Machine) {
        for ridx in 0..self.requests.len() as u64 {
            let req = &self.requests[ridx as usize];
            if req.done || req.waiting_retry {
                continue;
            }
            self.fail_attempt(now, ridx, machine);
        }
    }

    /// Records the request's outcome and recycles its state. The slot
    /// left behind in `requests` is a tombstone with `done = true`, so
    /// late thread exits and fabric deliveries are ignored safely.
    fn retire(&mut self, now: SimTime, ridx: u64, dropped: bool) {
        let req = &mut self.requests[ridx as usize];
        debug_assert!(!req.done, "double retire of request {ridx}");
        req.done = true;
        self.live = self.live.saturating_sub(1);
        self.outcomes.push(GraphOutcome {
            ridx,
            arrival: req.arrival,
            latency: now.since(req.arrival),
            dropped,
        });
        if req.live_tids.is_empty() {
            let st = std::mem::take(req);
            self.requests[ridx as usize].done = true;
            self.pool.push(st);
        }
    }

    /// Next internal event: the earlier of the fabric and the engine's
    /// own resilience timers.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        let net = self.net.next_timer_at();
        let timer = self.timers.peek().map(|Reverse(e)| e.at);
        match (net, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pumps the fabric and resilience timers to `now`, activating stages
    /// whose inputs have all delivered, firing hedges, and starting
    /// retries.
    pub fn advance_to(&mut self, now: SimTime, machine: &mut Machine) {
        loop {
            let tnet = self.net.next_timer_at().filter(|&t| t <= now);
            let ttimer = self
                .timers
                .peek()
                .map(|Reverse(e)| e.at)
                .filter(|&t| t <= now);
            match (tnet, ttimer) {
                (None, None) => break,
                (Some(tn), None) => self.pump_net(tn, machine),
                (None, Some(_)) => self.fire_timer(machine),
                (Some(tn), Some(tt)) => {
                    if tn <= tt {
                        self.pump_net(tn, machine);
                    } else {
                        self.fire_timer(machine);
                    }
                }
            }
        }
    }

    fn pump_net(&mut self, t: SimTime, machine: &mut Machine) {
        self.net.advance_to(t);
        self.net.drain_deliveries_into(&mut self.deliveries);
        while let Some(d) = self.deliveries.pop() {
            let ridx = (d.token >> 8) & ((1u64 << REQUEST_BITS) - 1);
            let attempt = (d.token >> (8 + REQUEST_BITS)) as u32;
            let stage = d.to.0;
            // A host that overshoots the fabric timer (machine already
            // advanced past d.at) still activates in machine time.
            let at = d.at.max(machine.now());
            let req = &mut self.requests[ridx as usize];
            if req.done || req.waiting_retry || req.attempt != attempt {
                continue;
            }
            let inputs = &mut req.pending_inputs[stage as usize];
            debug_assert!(*inputs > 0, "delivery for saturated stage {stage}");
            *inputs -= 1;
            if *inputs > 0 {
                continue;
            }
            // All inputs delivered: consult the in-edge breakers before
            // activating (an open breaker fails the attempt fast instead
            // of burning its deadline).
            if !self.breakers.is_empty() {
                let mut blocked = false;
                for (eidx, e) in self.graph.edges.iter().enumerate() {
                    if e.to == stage && !self.breakers[eidx].allow(at) {
                        blocked = true;
                    }
                }
                if blocked {
                    self.stats.breaker_fast_fails += 1;
                    self.fail_attempt(at, ridx, machine);
                    continue;
                }
            }
            self.activate_stage(at, ridx, stage, machine);
        }
    }

    fn fire_timer(&mut self, machine: &mut Machine) {
        let Some(Reverse(entry)) = self.timers.pop() else {
            return;
        };
        // Hosts that overshoot the timer still act in machine time.
        let at = entry.at.max(machine.now());
        match entry.kind {
            TimerKind::RetryStart { ridx, attempt } => {
                let valid = self
                    .requests
                    .get(ridx as usize)
                    .is_some_and(|r| !r.done && r.attempt == attempt && r.waiting_retry);
                if !valid {
                    return;
                }
                let deadline = at + self.graph.timeout;
                {
                    let n_sinks = self.n_sinks;
                    let req = &mut self.requests[ridx as usize];
                    req.waiting_retry = false;
                    req.deadline = deadline;
                    req.pending_sinks = n_sinks;
                    req.pending_inputs.clear();
                }
                let in_degree = std::mem::take(&mut self.in_degree);
                self.requests[ridx as usize]
                    .pending_inputs
                    .extend_from_slice(&in_degree);
                self.in_degree = in_degree;
                self.push_timer(deadline, TimerKind::AttemptTimeout { ridx, attempt });
                for i in 0..self.roots.len() {
                    let stage = self.roots[i];
                    if self.requests[ridx as usize].done {
                        break;
                    }
                    self.activate_stage(at, ridx, stage, machine);
                }
            }
            TimerKind::AttemptTimeout { ridx, attempt } => {
                let valid = self
                    .requests
                    .get(ridx as usize)
                    .is_some_and(|r| !r.done && r.attempt == attempt && !r.waiting_retry);
                if valid {
                    self.fail_attempt(at, ridx, machine);
                }
            }
            TimerKind::HedgeFire {
                ridx,
                stage,
                attempt,
            } => {
                let eligible = self.requests.get(ridx as usize).is_some_and(|r| {
                    !r.done
                        && !r.waiting_retry
                        && r.attempt == attempt
                        && r.pending_workers[stage as usize] > 0
                        && r.hedge_workers[stage as usize] == 0
                });
                if !eligible {
                    return;
                }
                let fan_out = self.graph.stages[stage as usize].fan_out;
                self.requests[ridx as usize].hedge_workers[stage as usize] = fan_out;
                self.stats.hedges_launched += 1;
                self.spawn_set(at, ridx, stage, true, machine);
            }
        }
    }

    /// True when completions are pending.
    pub fn has_outcomes(&self) -> bool {
        !self.outcomes.is_empty()
    }

    /// Moves accumulated completions into `buf` (appending).
    pub fn drain_outcomes_into(&mut self, buf: &mut Vec<GraphOutcome>) {
        buf.append(&mut self.outcomes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{BreakerPolicy, HedgePolicy, RetryPolicy};
    use simcore::SimTime;
    use simcpu::MachineConfig;
    use telemetry::TenantClass;

    fn chain(n: usize) -> GraphWorkload {
        GraphWorkload {
            stages: (0..n)
                .map(|i| GraphStage {
                    name: format!("s{i}"),
                    fan_out: if i == 1 { 4 } else { 1 },
                    compute_us: 500.0,
                    sigma: 0.3,
                    memory_bytes: 1 << 30,
                })
                .collect(),
            edges: (1..n)
                .map(|i| GraphEdge {
                    from: (i - 1) as u32,
                    to: i as u32,
                    bytes: 16 << 10,
                    latency: SimDuration::from_micros(50),
                })
                .collect(),
            timeout: SimDuration::from_millis(500),
        }
    }

    fn setup(
        g: Arc<GraphWorkload>,
        policy: Option<Arc<ResiliencePolicy>>,
    ) -> (Machine, GraphEngine) {
        let mut machine = Machine::with_seed(MachineConfig::small(8), 1);
        let job = machine.create_job(TenantClass::Primary, simcpu::CoreMask::all(8));
        let engine = GraphEngine::with_policy(g, job, 0, 7, policy);
        (machine, engine)
    }

    fn drive(engine: &mut GraphEngine, machine: &mut Machine, until: SimTime) {
        let mut now = SimTime::ZERO;
        while now < until {
            let mut next = until;
            if let Some(t) = machine.next_timer_at() {
                next = next.min(t);
            }
            if let Some(t) = engine.next_timer_at() {
                next = next.min(t);
            }
            now = next.max(now + SimDuration::from_micros(1));
            machine.advance_to(now);
            engine.advance_to(now, machine);
            let mut outs = Vec::new();
            machine.drain_outputs_into(&mut outs);
            for out in outs {
                if let simcpu::MachineOutput::ThreadExited { tid, tag, .. } = out {
                    engine.on_thread_exited(now, tag, tid, machine);
                }
            }
        }
    }

    #[test]
    fn chain_completes_requests() {
        let g = Arc::new(chain(4));
        assert!(g.validate().is_ok());
        let (mut machine, mut engine) = setup(Arc::clone(&g), None);
        for i in 0..10 {
            let at = SimTime::ZERO + SimDuration::from_millis(i * 2);
            machine.advance_to(at);
            engine.on_arrival(at, &mut machine);
        }
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 10);
        assert!(outs.iter().all(|o| !o.dropped));
        // 4-stage chain with one fan-out-4 stage = 7 workers per request.
        assert_eq!(engine.workers_spawned, 70);
        // Latency covers 4 stages of ~500us compute plus 3 net hops.
        assert!(outs
            .iter()
            .all(|o| o.latency >= SimDuration::from_millis(2)));
        assert!(engine.resilience_stats().is_empty());
    }

    #[test]
    fn validate_rejects_cycles_and_bad_indices() {
        let mut g = chain(3);
        g.edges.push(GraphEdge {
            from: 2,
            to: 0,
            bytes: 1,
            latency: SimDuration::ZERO,
        });
        assert!(g.validate().unwrap_err().contains("cycle"));

        let mut g = chain(2);
        g.edges[0].to = 9;
        assert!(g.validate().unwrap_err().contains("missing stage"));

        let g = GraphWorkload {
            stages: vec![],
            edges: vec![],
            timeout: SimDuration::from_millis(1),
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn timeout_kills_and_drops() {
        let mut g = chain(3);
        g.timeout = SimDuration::from_micros(100);
        let g = Arc::new(g);
        let (mut machine, mut engine) = setup(g, None);
        let ridx = engine.on_arrival(SimTime::ZERO, &mut machine);
        let deadline = SimTime::ZERO + SimDuration::from_micros(100);
        machine.advance_to(deadline);
        engine.on_timeout(deadline, ridx, &mut machine);
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 1);
        assert!(outs[0].dropped);
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn retry_recovers_a_failed_attempt() {
        let policy = Arc::new(ResiliencePolicy {
            retry: Some(RetryPolicy {
                base_backoff: SimDuration::from_millis(1),
                multiplier: 2,
                budget: 2,
                jitter: SimDuration::from_micros(100),
            }),
            ..Default::default()
        });
        let g = Arc::new(chain(3));
        let (mut machine, mut engine) = setup(g, Some(policy));
        let ridx = engine.on_arrival(SimTime::ZERO, &mut machine);
        // Simulate a crash window killing the first attempt mid-flight.
        let crash = SimTime::ZERO + SimDuration::from_micros(200);
        machine.advance_to(crash);
        engine.fail_all(crash, &mut machine);
        assert_eq!(engine.in_flight(), 1, "failed attempt waits for retry");
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_millis(100),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 1);
        assert!(!outs[0].dropped, "retry completed the request");
        assert_eq!(outs[0].ridx, ridx);
        assert_eq!(engine.resilience_stats().retries, 1);
        // End-to-end latency spans the backoff plus the rerun.
        assert!(outs[0].latency >= SimDuration::from_millis(1));
    }

    #[test]
    fn retry_budget_exhausts_to_a_drop() {
        let policy = Arc::new(ResiliencePolicy {
            retry: Some(RetryPolicy {
                base_backoff: SimDuration::from_micros(10),
                multiplier: 1,
                budget: 2,
                jitter: SimDuration::ZERO,
            }),
            ..Default::default()
        });
        let mut g = chain(2);
        g.timeout = SimDuration::from_micros(50); // attempts always time out
        let (mut machine, mut engine) = setup(Arc::new(g), Some(policy));
        let ridx = engine.on_arrival(SimTime::ZERO, &mut machine);
        let t = SimTime::ZERO + SimDuration::from_micros(50);
        machine.advance_to(t);
        engine.on_timeout(t, ridx, &mut machine);
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_millis(5),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 1);
        assert!(outs[0].dropped, "budget exhausted: request drops");
        assert_eq!(engine.resilience_stats().retries, 2);
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn hedge_races_and_settles_every_launch() {
        let policy = Arc::new(ResiliencePolicy {
            hedge: Some(HedgePolicy { percentile: 0.50 }),
            ..Default::default()
        });
        let mut g = chain(3);
        g.stages[1].sigma = 1.0; // heavy tail: hedges fire at the median
        let (mut machine, mut engine) = setup(Arc::new(g), Some(policy));
        for i in 0..20 {
            let at = SimTime::ZERO + SimDuration::from_millis(i * 3);
            machine.advance_to(at);
            engine.advance_to(at, &mut machine);
            engine.on_arrival(at, &mut machine);
        }
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 20);
        assert!(outs.iter().all(|o| !o.dropped));
        let s = engine.resilience_stats();
        assert!(s.hedges_launched > 0, "median hedge delay must fire");
        assert_eq!(
            s.hedges_won + s.hedges_lost,
            s.hedges_launched,
            "every hedge race settles"
        );
        assert_eq!(engine.in_flight(), 0);
    }

    #[test]
    fn breaker_opens_and_fast_fails_downstream_stages() {
        let policy = Arc::new(ResiliencePolicy {
            breaker: Some(BreakerPolicy {
                threshold: 2,
                cooldown: SimDuration::from_millis(10),
            }),
            ..Default::default()
        });
        let mut g = chain(2);
        g.stages.iter_mut().for_each(|s| s.sigma = 0.0); // deterministic
        let (mut machine, mut engine) = setup(Arc::new(g), Some(policy));
        // Two requests failed while stage 1 runs: the 0->1 breaker opens.
        for i in 0..2u64 {
            let at = SimTime::ZERO + SimDuration::from_millis(i * 2);
            machine.advance_to(at);
            engine.advance_to(at, &mut machine);
            let ridx = engine.on_arrival(at, &mut machine);
            let fail = at + SimDuration::from_micros(800); // stage 1 active
            drive(&mut engine, &mut machine, fail);
            engine.on_timeout(fail, ridx, &mut machine);
        }
        assert_eq!(engine.resilience_stats().breaker_opens, 1);
        // The next request fast-fails at the 0->1 hand-off.
        let at = SimTime::ZERO + SimDuration::from_millis(5);
        machine.advance_to(at);
        engine.advance_to(at, &mut machine);
        engine.on_arrival(at, &mut machine);
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_millis(8),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(engine.resilience_stats().breaker_fast_fails, 1);
        assert!(outs.iter().filter(|o| o.dropped).count() >= 3);
        // After the cooldown a probe goes through and closes the breaker.
        let at = SimTime::ZERO + SimDuration::from_millis(15);
        machine.advance_to(at);
        engine.advance_to(at, &mut machine);
        engine.on_arrival(at, &mut machine);
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_millis(30),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 1);
        assert!(!outs[0].dropped, "half-open probe succeeds");
        assert_eq!(engine.resilience_stats().breaker_fast_fails, 1);
    }

    #[test]
    fn deadline_propagation_cancels_hopeless_stages() {
        let policy = Arc::new(ResiliencePolicy {
            propagate_deadlines: true,
            ..Default::default()
        });
        let mut g = chain(3);
        // Budget covers stage 0 but leaves stage 1 (4x500us) hopeless.
        g.timeout = SimDuration::from_micros(700);
        g.stages.iter_mut().for_each(|s| s.sigma = 0.0);
        let (mut machine, mut engine) = setup(Arc::new(g), Some(policy));
        engine.on_arrival(SimTime::ZERO, &mut machine);
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_millis(2),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 1);
        assert!(outs[0].dropped);
        assert_eq!(engine.resilience_stats().deadline_cancels, 1);
        // The cancel happened at the 0->1 hand-off, well before the
        // deadline would have fired.
        assert!(outs[0].latency < SimDuration::from_micros(700));
    }
}
