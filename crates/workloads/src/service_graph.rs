//! Microservice-chain workload: a DAG of compute stages connected by
//! simnet hops.
//!
//! [`GraphWorkload`] describes the topology — each stage is a fan-out of
//! arena-backed compute threads with a log-normal service-time
//! distribution and a declared memory footprint; each edge is a network
//! hop with a payload size and an extra propagation latency. The
//! [`GraphEngine`] executes requests against a [`Machine`]: every root
//! stage activates on arrival, a stage completes when all its workers
//! exit, completion pushes one message per out-edge through an internal
//! [`NetSim`] (one node per stage), and a downstream stage activates once
//! every in-edge has delivered. A request completes when all sink stages
//! have finished.
//!
//! The engine is workload-layer only: it knows nothing about boxes,
//! controllers, or tenants. The hosting driver supplies the `tag_base`
//! ORed into every thread tag (primary/service routing bits), pumps
//! [`GraphEngine::advance_to`] alongside its other event sources, and
//! routes thread exits back via [`GraphEngine::on_thread_exited`].

use std::sync::Arc;

use simcore::dist::{LogNormal, Sample};
use simcore::{SimDuration, SimRng, SimTime};
use simcpu::{JobId, Machine, Program, ThreadId};
use simnet::{NetConfig, NetSim, NodeId, TrafficClass};

/// Worker index bits in a stage-thread tag (fan-out ≤ 1024).
const WORKER_BITS: u32 = 10;
/// Stage index bits (≤ 64 stages).
const STAGE_BITS: u32 = 6;
const STAGE_SHIFT: u32 = WORKER_BITS;
const REQUEST_SHIFT: u32 = WORKER_BITS + STAGE_BITS;
/// Request index bits (dense per-run indices; 40 bits is plenty).
const REQUEST_BITS: u32 = 40;

/// Largest per-stage fan-out the tag encoding supports.
pub const MAX_FAN_OUT: u32 = 1 << WORKER_BITS;
/// Largest stage count the tag encoding supports.
pub const MAX_STAGES: usize = 1 << STAGE_BITS;
/// Largest edge count the net-token encoding supports.
pub const MAX_EDGES: usize = 256;

/// One compute stage of a service graph.
#[derive(Clone, Debug)]
pub struct GraphStage {
    /// Stage name (diagnostics; uniqueness enforced by the spec layer).
    pub name: String,
    /// Number of parallel worker threads spawned per activation.
    pub fan_out: u32,
    /// Median per-worker compute time in microseconds.
    pub compute_us: f64,
    /// Log-normal shape of the compute-time distribution.
    pub sigma: f64,
    /// Resident memory this stage contributes to the service working set.
    pub memory_bytes: u64,
}

/// A directed network hop between two stages.
#[derive(Clone, Debug)]
pub struct GraphEdge {
    /// Source stage index.
    pub from: u32,
    /// Destination stage index.
    pub to: u32,
    /// Message payload in bytes (serialization cost on the fabric).
    pub bytes: u64,
    /// Extra propagation latency added before the message enters the
    /// fabric (models an RPC hop longer than the base NIC latency).
    pub latency: SimDuration,
}

/// A validated service-graph workload description.
#[derive(Clone, Debug)]
pub struct GraphWorkload {
    /// The stages, indexed by `GraphEdge::{from,to}`.
    pub stages: Vec<GraphStage>,
    /// The hops; an empty list means every stage is both root and sink.
    pub edges: Vec<GraphEdge>,
    /// Per-request deadline.
    pub timeout: SimDuration,
}

impl GraphWorkload {
    /// Total declared resident memory across all stages.
    pub fn working_set(&self) -> u64 {
        self.stages.iter().map(|s| s.memory_bytes).sum()
    }

    /// Checks structural soundness: stage/edge bounds, index validity,
    /// no self-edges or duplicate edges, and acyclicity (iterative
    /// Kahn's algorithm — never recurses, never panics on bad input).
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("graph has no stages".into());
        }
        if self.stages.len() > MAX_STAGES {
            return Err(format!(
                "too many stages: {} > {MAX_STAGES}",
                self.stages.len()
            ));
        }
        if self.edges.len() > MAX_EDGES {
            return Err(format!(
                "too many edges: {} > {MAX_EDGES}",
                self.edges.len()
            ));
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.fan_out == 0 || s.fan_out > MAX_FAN_OUT {
                return Err(format!(
                    "stage {i} ({}) fan_out {} out of range 1..={MAX_FAN_OUT}",
                    s.name, s.fan_out
                ));
            }
            if !s.compute_us.is_finite() || s.compute_us <= 0.0 {
                return Err(format!(
                    "stage {i} ({}) compute_us must be positive and finite",
                    s.name
                ));
            }
            if !s.sigma.is_finite() || s.sigma < 0.0 || s.sigma > 4.0 {
                return Err(format!("stage {i} ({}) sigma must be in [0, 4]", s.name));
            }
        }
        let n = self.stages.len() as u32;
        let mut seen = std::collections::BTreeSet::new();
        let mut in_degree = vec![0u32; n as usize];
        for (i, e) in self.edges.iter().enumerate() {
            if e.from >= n || e.to >= n {
                return Err(format!("edge {i} references a missing stage"));
            }
            if e.from == e.to {
                return Err(format!("edge {i} is a self-loop on stage {}", e.from));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(format!("duplicate edge {} -> {}", e.from, e.to));
            }
            in_degree[e.to as usize] += 1;
        }
        // Kahn's algorithm: all stages must drain, else a cycle remains.
        let mut ready: Vec<u32> = (0..n).filter(|&i| in_degree[i as usize] == 0).collect();
        let mut drained = 0u32;
        while let Some(s) = ready.pop() {
            drained += 1;
            for e in self.edges.iter().filter(|e| e.from == s) {
                in_degree[e.to as usize] -= 1;
                if in_degree[e.to as usize] == 0 {
                    ready.push(e.to);
                }
            }
        }
        if drained != n {
            return Err("graph contains a cycle".into());
        }
        if self.timeout <= SimDuration::ZERO {
            return Err("timeout must be positive".into());
        }
        Ok(())
    }
}

/// A finished (or dropped) request.
#[derive(Clone, Copy, Debug)]
pub struct GraphOutcome {
    /// Dense request index assigned at arrival.
    pub ridx: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// End-to-end latency (valid when not dropped).
    pub latency: SimDuration,
    /// True when the request timed out, was refused, or was failed.
    pub dropped: bool,
}

/// Per-request execution state. Vectors are recycled through a pool when
/// the request retires, keeping the steady-state arrival path
/// allocation-free.
#[derive(Debug, Default)]
struct RequestState {
    arrival: SimTime,
    done: bool,
    /// Sink stages still to finish before the request completes.
    pending_sinks: u32,
    /// Per-stage live worker count (0 = inactive or finished).
    pending_workers: Vec<u32>,
    /// Per-stage input edges still undelivered.
    pending_inputs: Vec<u32>,
    /// Threads currently running for this request (killed on failure).
    live_tids: Vec<ThreadId>,
}

/// Executes [`GraphWorkload`] requests against a machine.
pub struct GraphEngine {
    graph: Arc<GraphWorkload>,
    job: JobId,
    /// Routing bits ORed into every thread tag (supplied by the host).
    tag_base: u64,
    net: NetSim,
    rng: SimRng,
    /// Per-stage compute-time distributions (same order as stages).
    dists: Vec<LogNormal>,
    /// Root stages (no in-edges), activated on arrival.
    roots: Vec<u32>,
    /// Per-stage in-degree template copied into each request.
    in_degree: Vec<u32>,
    /// Sink count (stages with no out-edges).
    n_sinks: u32,
    requests: Vec<RequestState>,
    /// Retired request-state vectors awaiting reuse.
    pool: Vec<RequestState>,
    outcomes: Vec<GraphOutcome>,
    deliveries: Vec<simnet::Delivery>,
    /// Total stage worker threads spawned (fan-out statistics).
    pub workers_spawned: u64,
}

impl GraphEngine {
    /// Builds an engine for a validated graph.
    ///
    /// `tag_base` is ORed into every spawned thread's tag — the host uses
    /// it to route machine outputs back to this engine. The low
    /// `REQUEST_SHIFT + REQUEST_BITS` bits must be zero.
    ///
    /// # Panics
    ///
    /// Panics when the graph fails [`GraphWorkload::validate`].
    pub fn new(graph: Arc<GraphWorkload>, job: JobId, tag_base: u64, seed: u64) -> Self {
        if let Err(e) = graph.validate() {
            panic!("invalid service graph: {e}");
        }
        debug_assert_eq!(tag_base & ((1 << (REQUEST_SHIFT + REQUEST_BITS)) - 1), 0);
        let n = graph.stages.len();
        let dists = graph
            .stages
            .iter()
            .map(|s| LogNormal::from_median(s.compute_us, s.sigma))
            .collect();
        let mut in_degree = vec![0u32; n];
        let mut has_out = vec![false; n];
        for e in &graph.edges {
            in_degree[e.to as usize] += 1;
            has_out[e.from as usize] = true;
        }
        let roots = (0..n as u32)
            .filter(|&i| in_degree[i as usize] == 0)
            .collect();
        let n_sinks = has_out.iter().filter(|o| !**o).count() as u32;
        GraphEngine {
            net: NetSim::new(NetConfig::default(), n as u32, seed ^ 0x6E7),
            graph,
            job,
            tag_base,
            rng: SimRng::seed_from_u64(seed),
            dists,
            roots,
            in_degree,
            n_sinks,
            requests: Vec::new(),
            pool: Vec::new(),
            outcomes: Vec::new(),
            deliveries: Vec::new(),
            workers_spawned: 0,
        }
    }

    /// The workload this engine executes.
    pub fn graph(&self) -> &Arc<GraphWorkload> {
        &self.graph
    }

    /// Requests admitted but not yet retired.
    pub fn in_flight(&self) -> usize {
        self.requests.iter().filter(|r| !r.done).count()
    }

    fn tag(&self, ridx: u64, stage: u32, worker: u32) -> u64 {
        self.tag_base
            | ((ridx & ((1 << REQUEST_BITS) - 1)) << REQUEST_SHIFT)
            | ((stage as u64) << STAGE_SHIFT)
            | worker as u64
    }

    /// Splits a thread tag into (request, stage) indices.
    fn parse_tag(tag: u64) -> (u64, u32) {
        (
            (tag >> REQUEST_SHIFT) & ((1 << REQUEST_BITS) - 1),
            ((tag >> STAGE_SHIFT) & ((1 << STAGE_BITS) as u64 - 1)) as u32,
        )
    }

    /// Packs a (request, edge) pair into a net token.
    fn net_token(ridx: u64, eidx: usize) -> u64 {
        (ridx << 8) | eidx as u64
    }

    fn fresh_request(&mut self, arrival: SimTime) -> u64 {
        let ridx = self.requests.len() as u64;
        let mut st = self.pool.pop().unwrap_or_default();
        st.arrival = arrival;
        st.done = false;
        st.pending_sinks = self.n_sinks;
        st.pending_workers.clear();
        st.pending_workers.resize(self.graph.stages.len(), 0);
        st.pending_inputs.clear();
        st.pending_inputs.extend_from_slice(&self.in_degree);
        st.live_tids.clear();
        self.requests.push(st);
        ridx
    }

    /// Admits a request: every root stage activates immediately.
    /// Returns the dense request index.
    pub fn on_arrival(&mut self, now: SimTime, machine: &mut Machine) -> u64 {
        let ridx = self.fresh_request(now);
        for i in 0..self.roots.len() {
            let stage = self.roots[i];
            self.activate_stage(now, ridx, stage, machine);
        }
        ridx
    }

    /// Records a refused request (the hosting process is down): dropped
    /// immediately without touching the machine.
    pub fn refuse_arrival(&mut self, now: SimTime) -> u64 {
        let ridx = self.fresh_request(now);
        self.retire(now, ridx, true);
        ridx
    }

    fn activate_stage(&mut self, now: SimTime, ridx: u64, stage: u32, machine: &mut Machine) {
        let spec = &self.graph.stages[stage as usize];
        let fan_out = spec.fan_out;
        let dist = self.dists[stage as usize];
        // Continuation stages carry the wake boost: they resume a request
        // that already queued once, exactly like a woken index worker.
        let boosted = self.in_degree[stage as usize] > 0;
        self.requests[ridx as usize].pending_workers[stage as usize] = fan_out;
        for w in 0..fan_out {
            let d = SimDuration::from_micros_f64(dist.sample(&mut self.rng));
            let tag = self.tag(ridx, stage, w);
            let tid =
                machine.spawn_program_with(now, self.job, Program::compute_once(d), tag, boosted);
            self.requests[ridx as usize].live_tids.push(tid);
            self.workers_spawned += 1;
        }
    }

    /// Routes one of this engine's threads exiting back into the graph.
    /// (Stage hand-off happens over the fabric, so the machine is only
    /// part of the signature for symmetry with the other hooks.)
    pub fn on_thread_exited(
        &mut self,
        now: SimTime,
        tag: u64,
        tid: ThreadId,
        _machine: &mut Machine,
    ) {
        let (ridx, stage) = Self::parse_tag(tag);
        let Some(req) = self.requests.get_mut(ridx as usize) else {
            return;
        };
        if let Some(pos) = req.live_tids.iter().position(|t| *t == tid) {
            req.live_tids.swap_remove(pos);
        }
        if req.done {
            return;
        }
        let workers = &mut req.pending_workers[stage as usize];
        debug_assert!(*workers > 0, "exit for inactive stage {stage}");
        *workers -= 1;
        if *workers > 0 {
            return;
        }
        self.stage_complete(now, ridx, stage);
    }

    fn stage_complete(&mut self, now: SimTime, ridx: u64, stage: u32) {
        let mut sent = false;
        for (eidx, e) in self.graph.edges.iter().enumerate() {
            if e.from != stage {
                continue;
            }
            sent = true;
            self.net.send(
                now + e.latency,
                NodeId(e.from),
                NodeId(e.to),
                e.bytes,
                TrafficClass::High,
                Self::net_token(ridx, eidx),
            );
        }
        if !sent {
            // Sink stage: the request completes when every sink is done.
            let req = &mut self.requests[ridx as usize];
            req.pending_sinks -= 1;
            if req.pending_sinks == 0 {
                self.retire(now, ridx, false);
            }
        }
    }

    /// Fails a request whose deadline fired: kills its live threads and
    /// records a drop. In-flight fabric messages are ignored on delivery.
    pub fn on_timeout(&mut self, now: SimTime, ridx: u64, machine: &mut Machine) {
        let Some(req) = self.requests.get_mut(ridx as usize) else {
            return;
        };
        if req.done {
            return;
        }
        // kill_thread reports the exit back through on_thread_exited;
        // clearing live_tids first makes those exits no-ops.
        let mut tids = std::mem::take(&mut req.live_tids);
        for tid in tids.drain(..) {
            machine.kill_thread(now, tid);
        }
        self.requests[ridx as usize].live_tids = tids;
        self.retire(now, ridx, true);
    }

    /// Fails every unfinished request (the hosting process died).
    pub fn fail_all(&mut self, now: SimTime, machine: &mut Machine) {
        for ridx in 0..self.requests.len() as u64 {
            self.on_timeout(now, ridx, machine);
        }
    }

    /// Records the request's outcome and recycles its state. The slot
    /// left behind in `requests` is a tombstone with `done = true`, so
    /// late thread exits and fabric deliveries are ignored safely.
    fn retire(&mut self, now: SimTime, ridx: u64, dropped: bool) {
        let req = &mut self.requests[ridx as usize];
        req.done = true;
        self.outcomes.push(GraphOutcome {
            ridx,
            arrival: req.arrival,
            latency: now.since(req.arrival),
            dropped,
        });
        if req.live_tids.is_empty() {
            let st = std::mem::take(req);
            self.requests[ridx as usize].done = true;
            self.pool.push(st);
        }
    }

    /// Next fabric event, if any messages are in flight.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        self.net.next_timer_at()
    }

    /// Pumps the fabric to `now`, activating stages whose inputs have all
    /// delivered.
    pub fn advance_to(&mut self, now: SimTime, machine: &mut Machine) {
        while self.net.next_timer_at().is_some_and(|t| t <= now) {
            self.net
                .advance_to(self.net.next_timer_at().expect("checked"));
            self.net.drain_deliveries_into(&mut self.deliveries);
            while let Some(d) = self.deliveries.pop() {
                let ridx = d.token >> 8;
                let stage = d.to.0;
                let req = &mut self.requests[ridx as usize];
                if req.done {
                    continue;
                }
                let inputs = &mut req.pending_inputs[stage as usize];
                debug_assert!(*inputs > 0, "delivery for saturated stage {stage}");
                *inputs -= 1;
                if *inputs == 0 {
                    self.activate_stage(d.at, ridx, stage, machine);
                }
            }
        }
    }

    /// True when completions are pending.
    pub fn has_outcomes(&self) -> bool {
        !self.outcomes.is_empty()
    }

    /// Moves accumulated completions into `buf` (appending).
    pub fn drain_outcomes_into(&mut self, buf: &mut Vec<GraphOutcome>) {
        buf.append(&mut self.outcomes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;
    use simcpu::MachineConfig;
    use telemetry::TenantClass;

    fn chain(n: usize) -> GraphWorkload {
        GraphWorkload {
            stages: (0..n)
                .map(|i| GraphStage {
                    name: format!("s{i}"),
                    fan_out: if i == 1 { 4 } else { 1 },
                    compute_us: 500.0,
                    sigma: 0.3,
                    memory_bytes: 1 << 30,
                })
                .collect(),
            edges: (1..n)
                .map(|i| GraphEdge {
                    from: (i - 1) as u32,
                    to: i as u32,
                    bytes: 16 << 10,
                    latency: SimDuration::from_micros(50),
                })
                .collect(),
            timeout: SimDuration::from_millis(500),
        }
    }

    fn drive(engine: &mut GraphEngine, machine: &mut Machine, until: SimTime) {
        let mut now = SimTime::ZERO;
        while now < until {
            let mut next = until;
            if let Some(t) = machine.next_timer_at() {
                next = next.min(t);
            }
            if let Some(t) = engine.next_timer_at() {
                next = next.min(t);
            }
            now = next.max(now + SimDuration::from_micros(1));
            machine.advance_to(now);
            engine.advance_to(now, machine);
            let mut outs = Vec::new();
            machine.drain_outputs_into(&mut outs);
            for out in outs {
                if let simcpu::MachineOutput::ThreadExited { tid, tag, .. } = out {
                    engine.on_thread_exited(now, tag, tid, machine);
                }
            }
        }
    }

    #[test]
    fn chain_completes_requests() {
        let g = Arc::new(chain(4));
        assert!(g.validate().is_ok());
        let mut machine = Machine::with_seed(MachineConfig::small(8), 1);
        let job = machine.create_job(TenantClass::Primary, simcpu::CoreMask::all(8));
        let mut engine = GraphEngine::new(Arc::clone(&g), job, 0, 7);
        for i in 0..10 {
            let at = SimTime::ZERO + SimDuration::from_millis(i * 2);
            machine.advance_to(at);
            engine.on_arrival(at, &mut machine);
        }
        drive(
            &mut engine,
            &mut machine,
            SimTime::ZERO + SimDuration::from_secs(1),
        );
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 10);
        assert!(outs.iter().all(|o| !o.dropped));
        // 4-stage chain with one fan-out-4 stage = 7 workers per request.
        assert_eq!(engine.workers_spawned, 70);
        // Latency covers 4 stages of ~500us compute plus 3 net hops.
        assert!(outs
            .iter()
            .all(|o| o.latency >= SimDuration::from_millis(2)));
    }

    #[test]
    fn validate_rejects_cycles_and_bad_indices() {
        let mut g = chain(3);
        g.edges.push(GraphEdge {
            from: 2,
            to: 0,
            bytes: 1,
            latency: SimDuration::ZERO,
        });
        assert!(g.validate().unwrap_err().contains("cycle"));

        let mut g = chain(2);
        g.edges[0].to = 9;
        assert!(g.validate().unwrap_err().contains("missing stage"));

        let g = GraphWorkload {
            stages: vec![],
            edges: vec![],
            timeout: SimDuration::from_millis(1),
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn timeout_kills_and_drops() {
        let mut g = chain(3);
        g.timeout = SimDuration::from_micros(100);
        let g = Arc::new(g);
        let mut machine = Machine::with_seed(MachineConfig::small(4), 1);
        let job = machine.create_job(TenantClass::Primary, simcpu::CoreMask::all(4));
        let mut engine = GraphEngine::new(g, job, 0, 7);
        let ridx = engine.on_arrival(SimTime::ZERO, &mut machine);
        let deadline = SimTime::ZERO + SimDuration::from_micros(100);
        machine.advance_to(deadline);
        engine.on_timeout(deadline, ridx, &mut machine);
        let mut outs = Vec::new();
        engine.drain_outcomes_into(&mut outs);
        assert_eq!(outs.len(), 1);
        assert!(outs[0].dropped);
        assert_eq!(engine.in_flight(), 0);
    }
}
