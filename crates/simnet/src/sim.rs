//! The network simulator: nodes, messages, deliveries.

use simcore::{
    dist::Exp, dist::Sample, EventQueue, EventQueueState, SimDuration, SimRng, SimTime, Snapshot,
};

use crate::shaper::{EgressMsg, EgressShaper, StartDecision, TrafficClass};

/// Identifies a node (machine) in the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Network fabric parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// NIC bandwidth in bytes/second (10 GbE by default).
    pub nic_bandwidth: u64,
    /// Fixed one-way propagation latency.
    pub base_latency: SimDuration,
    /// Mean of the exponential jitter added per message.
    pub jitter_mean: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            nic_bandwidth: 1_250_000_000,
            base_latency: SimDuration::from_micros(40),
            jitter_mean: SimDuration::from_micros(25),
        }
    }
}

/// A delivered message.
#[derive(Clone, Copy, Debug)]
pub struct Delivery {
    /// Destination node.
    pub to: NodeId,
    /// Source node.
    pub from: NodeId,
    /// The sender's opaque token.
    pub token: u64,
    /// Delivery time.
    pub at: SimTime,
}

#[derive(Clone, Debug)]
enum NetTimer {
    /// A message enters its source node's egress queue.
    Enqueue { from: NodeId, msg: EgressMsg },
    /// Re-poll a node's egress queue.
    Egress { node: NodeId },
    /// A message lands at its destination.
    Deliver {
        to: NodeId,
        from: NodeId,
        token: u64,
    },
}

/// A full-bisection datacenter fabric with per-node egress shapers.
///
/// # Examples
///
/// ```
/// use simcore::SimTime;
/// use simnet::{NetConfig, NetSim, NodeId, TrafficClass};
///
/// let mut n = NetSim::new(NetConfig::default(), 2, 99);
/// n.send(SimTime::ZERO, NodeId(0), NodeId(1), 2048, TrafficClass::High, 7);
/// while let Some(t) = n.next_timer_at() {
///     n.advance_to(t);
/// }
/// let d = n.drain_deliveries();
/// assert_eq!(d.len(), 1);
/// assert_eq!(d[0].token, 7);
/// ```
#[derive(Clone)]
pub struct NetSim {
    cfg: NetConfig,
    now: SimTime,
    shapers: Vec<EgressShaper>,
    timers: EventQueue<NetTimer>,
    deliveries: Vec<Delivery>,
    jitter: Exp,
    rng: SimRng,
    sent: u64,
}

impl NetSim {
    /// Creates a fabric with `nodes` nodes.
    pub fn new(cfg: NetConfig, nodes: u32, seed: u64) -> Self {
        NetSim {
            cfg,
            now: SimTime::ZERO,
            shapers: (0..nodes)
                .map(|_| EgressShaper::new(cfg.nic_bandwidth))
                .collect(),
            timers: EventQueue::with_capacity(256),
            deliveries: Vec::new(),
            jitter: Exp::from_mean(cfg.jitter_mean.as_secs_f64().max(1e-9)),
            rng: SimRng::seed_from_u64(seed),
            sent: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of messages sent so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Sets or clears the low-class egress cap on a node (bytes/second) —
    /// the PerfIso egress-throttling actuator.
    pub fn set_node_low_rate(&mut self, now: SimTime, node: NodeId, rate: Option<u64>) {
        self.advance_to(now);
        let at = now.max(self.now);
        self.shapers[node.0 as usize].set_low_rate(at, rate);
        self.timers.push(at, NetTimer::Egress { node });
    }

    /// The node's low-class egress cap.
    pub fn node_low_rate(&self, node: NodeId) -> Option<u64> {
        self.shapers[node.0 as usize].low_rate()
    }

    /// Queued egress messages on a node.
    pub fn egress_queue_len(&self, node: NodeId) -> usize {
        self.shapers[node.0 as usize].queued()
    }

    /// Sends `bytes` from `from` to `to` at time `at` (which may be in the
    /// future); the delivery echoes `token`.
    ///
    /// Scheduling-only: internal time does not advance until
    /// [`NetSim::advance_to`], so drivers may interleave sends freely with
    /// other components.
    pub fn send(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        class: TrafficClass,
        token: u64,
    ) {
        self.sent += 1;
        let at = at.max(self.now);
        // Self-delivery skips the NIC entirely (loopback).
        if from == to {
            self.timers.push(
                at + SimDuration::from_micros(2),
                NetTimer::Deliver { to, from, token },
            );
            return;
        }
        self.timers.push(
            at,
            NetTimer::Enqueue {
                from,
                msg: EgressMsg {
                    bytes,
                    class,
                    token,
                    dest: to.0,
                },
            },
        );
    }

    /// Time of the next internal event, if any.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        self.timers.peek_time()
    }

    /// Takes all pending deliveries.
    ///
    /// Allocation-free callers should prefer
    /// [`NetSim::drain_deliveries_into`].
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Moves all pending deliveries into `buf` (appending), keeping the
    /// internal buffer's capacity for reuse on the hot path.
    pub fn drain_deliveries_into(&mut self, buf: &mut Vec<Delivery>) {
        buf.append(&mut self.deliveries);
    }

    /// Advances virtual time, processing due timers. Calls with `t` before
    /// the current time are no-ops, so interleaved drivers need not track
    /// the fabric's clock. A call with `t` *equal* to the current time
    /// still processes timers due at that instant — drivers send messages
    /// stamped "now" from their event handlers, and those must be consumed
    /// by the next pass or the embedding event loop would spin on a
    /// perpetually-due timer.
    pub fn advance_to(&mut self, t: SimTime) {
        if t < self.now {
            return;
        }
        while let Some((at, timer)) = self.timers.pop_before(t) {
            self.now = at;
            match timer {
                NetTimer::Enqueue { from, msg } => {
                    self.shapers[from.0 as usize].enqueue(msg);
                    self.pump(from);
                }
                NetTimer::Egress { node } => self.pump(node),
                NetTimer::Deliver { to, from, token } => {
                    self.deliveries.push(Delivery {
                        to,
                        from,
                        token,
                        at: self.now,
                    });
                }
            }
        }
        self.now = t;
    }

    /// Tries to start serializing the next eligible message on `node`.
    fn pump(&mut self, node: NodeId) {
        match self.shapers[node.0 as usize].try_start(self.now) {
            StartDecision::Empty => {}
            StartDecision::BusyUntil(at) | StartDecision::TokensAt(at) => {
                // Re-poll when the NIC frees or tokens arrive. Guard against
                // scheduling in the past due to float rounding.
                self.timers
                    .push(at.max(self.now), NetTimer::Egress { node });
            }
            StartDecision::Start(msg) => {
                let ser = self.shapers[node.0 as usize].serialize_time(msg.bytes);
                self.shapers[node.0 as usize].busy_until = self.now + ser;
                let jitter = SimDuration::from_secs_f64(self.jitter.sample(&mut self.rng));
                let land = self.now + ser + self.cfg.base_latency + jitter;
                self.timers.push(
                    land,
                    NetTimer::Deliver {
                        to: NodeId(msg.dest),
                        from: node,
                        token: msg.token,
                    },
                );
                // Re-poll when serialization finishes.
                self.timers.push(self.now + ser, NetTimer::Egress { node });
            }
        }
    }
}

/// A [`Snapshot::save`]d deep copy of a [`NetSim`]'s dynamic state:
/// per-node egress shapers (queues, token balances, NIC busy horizons),
/// in-flight timers, pending deliveries, the jitter RNG, and the send
/// counter.
pub struct NetSimState {
    now: SimTime,
    shapers: Vec<EgressShaper>,
    timers: EventQueueState<NetTimer>,
    deliveries: Vec<Delivery>,
    rng: SimRng,
    sent: u64,
}

impl Snapshot for NetSim {
    type State = NetSimState;

    fn save(&self) -> NetSimState {
        NetSimState {
            now: self.now,
            shapers: self.shapers.clone(),
            timers: self.timers.save(),
            deliveries: self.deliveries.clone(),
            rng: self.rng.clone(),
            sent: self.sent,
        }
    }

    fn restore(&mut self, state: &NetSimState) {
        self.now = state.now;
        self.shapers.clone_from(&state.shapers);
        self.timers.restore(&state.timers);
        self.deliveries.clone_from(&state.deliveries);
        self.rng = state.rng.clone();
        self.sent = state.sent;
    }
}

impl std::fmt::Debug for NetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("now", &self.now)
            .field("nodes", &self.shapers.len())
            .field("sent", &self.sent)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(n: &mut NetSim) -> Vec<Delivery> {
        while let Some(t) = n.next_timer_at() {
            n.advance_to(t);
        }
        n.drain_deliveries()
    }

    #[test]
    fn message_arrives_with_latency() {
        let mut n = NetSim::new(NetConfig::default(), 2, 1);
        n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            1024,
            TrafficClass::High,
            42,
        );
        let d = drain_all(&mut n);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, NodeId(1));
        assert_eq!(d[0].from, NodeId(0));
        // At least the base latency, at most a few hundred microseconds.
        assert!(d[0].at >= SimTime::from_micros(40));
        assert!(d[0].at < SimTime::from_millis(2), "landed at {}", d[0].at);
    }

    #[test]
    fn loopback_is_fast() {
        let mut n = NetSim::new(NetConfig::default(), 1, 2);
        n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(0),
            1 << 20,
            TrafficClass::Low,
            1,
        );
        let d = drain_all(&mut n);
        assert_eq!(d.len(), 1);
        assert!(d[0].at <= SimTime::from_micros(2));
    }

    #[test]
    fn messages_to_distinct_destinations_route_correctly() {
        let mut n = NetSim::new(NetConfig::default(), 4, 3);
        for dest in 1..4u32 {
            n.send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(dest),
                512,
                TrafficClass::High,
                dest as u64,
            );
        }
        let d = drain_all(&mut n);
        assert_eq!(d.len(), 3);
        for del in d {
            assert_eq!(del.to.0 as u64, del.token, "token must match destination");
        }
    }

    #[test]
    fn high_traffic_jumps_low_queue() {
        let mut n = NetSim::new(NetConfig::default(), 3, 4);
        // A large low-priority transfer first, then a small high-priority one.
        n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            10 << 20,
            TrafficClass::Low,
            1,
        );
        n.send(
            SimTime::ZERO,
            NodeId(0),
            NodeId(2),
            1 << 10,
            TrafficClass::High,
            2,
        );
        let d = drain_all(&mut n);
        // The low transfer started serializing first (NIC was free), but a
        // second low message would have lost. Verify ordering by arrival.
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn egress_cap_throttles_low_class() {
        let mut n = NetSim::new(NetConfig::default(), 2, 5);
        n.set_node_low_rate(SimTime::ZERO, NodeId(0), Some(1 << 20)); // 1 MB/s
                                                                      // 20 x 100 KB = 2 MB of low traffic: needs ~2 seconds at 1 MB/s.
        for i in 0..20 {
            n.send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                100 << 10,
                TrafficClass::Low,
                i,
            );
        }
        let d = drain_all(&mut n);
        assert_eq!(d.len(), 20);
        let last = d.iter().map(|x| x.at).max().unwrap();
        let secs = last.as_secs_f64();
        assert!(secs > 1.5 && secs < 2.6, "took {secs}s");
    }

    #[test]
    fn high_class_unaffected_by_cap() {
        let mut n = NetSim::new(NetConfig::default(), 2, 6);
        n.set_node_low_rate(SimTime::ZERO, NodeId(0), Some(1024));
        for i in 0..10 {
            n.send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                10 << 10,
                TrafficClass::High,
                i,
            );
        }
        let d = drain_all(&mut n);
        assert_eq!(d.len(), 10);
        let last = d.iter().map(|x| x.at).max().unwrap();
        assert!(last < SimTime::from_millis(5), "took {last}");
    }

    #[test]
    fn serialization_orders_same_class_fifo() {
        let mut n = NetSim::new(NetConfig::default(), 2, 7);
        for i in 0..5 {
            n.send(
                SimTime::ZERO,
                NodeId(0),
                NodeId(1),
                1 << 20,
                TrafficClass::High,
                i,
            );
        }
        let d = drain_all(&mut n);
        // Jitter could reorder landings slightly, but serialization start
        // order is FIFO; with 1 MB messages (~840us each) the order holds.
        let tokens: Vec<u64> = d.iter().map(|x| x.token).collect();
        assert_eq!(tokens, vec![0, 1, 2, 3, 4]);
    }
}
