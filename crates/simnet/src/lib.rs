//! Network simulator.
//!
//! Models what the paper's cluster experiments need from the fabric:
//!
//! - point-to-point messages with serialization (10 GbE NICs) and
//!   datacenter-scale propagation latency with jitter, and
//! - PerfIso's **egress throttling** (§3.2): secondary traffic is marked
//!   low-priority and rate-capped at the sender NIC so that the primary's
//!   query fan-out and responses never queue behind batch replication.
//!
//! The shaper is strict-priority: a high-priority message never waits behind
//! a low-priority one that has not started serializing yet.

pub mod shaper;
pub mod sim;

pub use shaper::{EgressShaper, TrafficClass};
pub use sim::{Delivery, NetConfig, NetSim, NetSimState, NodeId};
