//! The per-node egress shaper: strict priority plus a low-class rate cap.

use std::collections::VecDeque;

use simcore::{SimDuration, SimTime};

/// Priority class of a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficClass {
    /// Primary-tenant traffic: never shaped.
    High,
    /// Secondary-tenant traffic: strict lower priority, optionally
    /// rate-capped.
    Low,
}

/// A queued egress message (payload is the driver's token).
#[derive(Clone, Copy, Debug)]
pub(crate) struct EgressMsg {
    pub bytes: u64,
    pub class: TrafficClass,
    pub token: u64,
    /// Destination node index, carried through the shaper.
    pub dest: u32,
}

/// One node's egress pipeline: a serializing NIC with two strict-priority
/// queues and an optional byte-rate cap on the low class.
///
/// The shaper itself is time-free: the embedding [`crate::NetSim`] asks
/// *when* the next message could start and *which* message to start.
#[derive(Clone, Debug)]
pub struct EgressShaper {
    bandwidth: u64,
    high: VecDeque<EgressMsg>,
    low: VecDeque<EgressMsg>,
    /// Bytes/second allowed for the low class (`None` = unlimited).
    low_rate: Option<f64>,
    /// Token balance for the low class.
    low_tokens: f64,
    low_settled: SimTime,
    /// The NIC is serializing until this instant.
    pub(crate) busy_until: SimTime,
}

impl EgressShaper {
    /// Creates a shaper for a NIC of the given bandwidth (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn new(bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        EgressShaper {
            bandwidth,
            high: VecDeque::new(),
            low: VecDeque::new(),
            low_rate: None,
            low_tokens: 0.0,
            low_settled: SimTime::ZERO,
            busy_until: SimTime::ZERO,
        }
    }

    /// Sets or clears the low-class rate cap (bytes/second).
    pub fn set_low_rate(&mut self, now: SimTime, rate: Option<u64>) {
        self.settle_low(now);
        let fresh = self.low_rate.is_none();
        self.low_rate = rate.map(|r| r as f64);
        if let Some(r) = self.low_rate {
            let burst = r * 0.05;
            if fresh {
                // Installing a cap grants one burst allowance (50 ms worth).
                self.low_tokens = burst;
            } else {
                self.low_tokens = self.low_tokens.min(burst);
            }
        }
    }

    /// The configured low-class rate cap.
    pub fn low_rate(&self) -> Option<u64> {
        self.low_rate.map(|r| r as u64)
    }

    fn settle_low(&mut self, now: SimTime) {
        if let Some(rate) = self.low_rate {
            let dt = now.since(self.low_settled).as_secs_f64();
            let burst = rate * 0.05;
            self.low_tokens = (self.low_tokens + dt * rate).min(burst);
        }
        self.low_settled = now;
    }

    /// Enqueues a message.
    pub(crate) fn enqueue(&mut self, msg: EgressMsg) {
        match msg.class {
            TrafficClass::High => self.high.push_back(msg),
            TrafficClass::Low => self.low.push_back(msg),
        }
    }

    /// Number of queued messages (both classes).
    pub fn queued(&self) -> usize {
        self.high.len() + self.low.len()
    }

    /// Serialization time of `bytes` on this NIC.
    pub fn serialize_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth as f64)
    }

    /// Picks the next message to serialize at `now`, if the NIC is free and
    /// a message is eligible. Returns the message and the instant
    /// serialization can start (now, or when low-class tokens suffice).
    ///
    /// Contract: if the returned start time is in the future, the caller
    /// should re-poll at that time; the message is *not* dequeued.
    pub(crate) fn try_start(&mut self, now: SimTime) -> StartDecision {
        if self.busy_until > now {
            return StartDecision::BusyUntil(self.busy_until);
        }
        if let Some(msg) = self.high.pop_front() {
            return StartDecision::Start(msg);
        }
        let Some(&front) = self.low.front() else {
            return StartDecision::Empty;
        };
        self.settle_low(now);
        match self.low_rate {
            None => StartDecision::Start(self.low.pop_front().expect("front exists")),
            Some(rate) => {
                let burst = rate * 0.05;
                let need = (front.bytes as f64).min(burst);
                if self.low_tokens + 1e-9 >= need {
                    // Overdraw bounded to one burst for oversized messages.
                    self.low_tokens = (self.low_tokens - front.bytes as f64).max(-burst);
                    StartDecision::Start(self.low.pop_front().expect("front exists"))
                } else {
                    let wait = (need - self.low_tokens) / rate;
                    // Strictly in the future: a zero-length wait (float
                    // rounding) would make the caller re-poll at `now`
                    // forever.
                    let wait = SimDuration::from_secs_f64(wait).max(SimDuration::from_nanos(1));
                    StartDecision::TokensAt(now + wait)
                }
            }
        }
    }
}

/// Outcome of [`EgressShaper::try_start`].
#[derive(Debug)]
pub(crate) enum StartDecision {
    /// Nothing queued.
    Empty,
    /// NIC serializing until the given instant.
    BusyUntil(SimTime),
    /// Low-class tokens available at the given instant.
    TokensAt(SimTime),
    /// This message starts now.
    Start(EgressMsg),
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBE10: u64 = 1_250_000_000;

    #[test]
    fn high_preempts_low_in_queue() {
        let mut s = EgressShaper::new(GBE10);
        s.enqueue(EgressMsg {
            bytes: 1000,
            class: TrafficClass::Low,
            token: 1,
            dest: 0,
        });
        s.enqueue(EgressMsg {
            bytes: 1000,
            class: TrafficClass::High,
            token: 2,
            dest: 0,
        });
        match s.try_start(SimTime::ZERO) {
            StartDecision::Start(m) => assert_eq!(m.token, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn low_waits_for_tokens() {
        let mut s = EgressShaper::new(GBE10);
        s.set_low_rate(SimTime::ZERO, Some(1_000_000)); // 1 MB/s
                                                        // Drain the initial burst allowance (50 KB).
        s.enqueue(EgressMsg {
            bytes: 50_000,
            class: TrafficClass::Low,
            token: 1,
            dest: 0,
        });
        match s.try_start(SimTime::ZERO) {
            StartDecision::Start(m) => assert_eq!(m.token, 1),
            other => panic!("unexpected {other:?}"),
        }
        s.enqueue(EgressMsg {
            bytes: 50_000,
            class: TrafficClass::Low,
            token: 2,
            dest: 0,
        });
        match s.try_start(SimTime::ZERO) {
            StartDecision::TokensAt(at) => {
                let ms = at.as_millis();
                assert!((40..=60).contains(&ms), "tokens at {ms}ms");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn high_is_never_rate_capped() {
        let mut s = EgressShaper::new(GBE10);
        s.set_low_rate(SimTime::ZERO, Some(1));
        s.enqueue(EgressMsg {
            bytes: 1 << 20,
            class: TrafficClass::High,
            token: 9,
            dest: 0,
        });
        assert!(matches!(
            s.try_start(SimTime::ZERO),
            StartDecision::Start(_)
        ));
    }

    #[test]
    fn serialization_time_scales() {
        let s = EgressShaper::new(GBE10);
        let t = s.serialize_time(1_250_000);
        assert_eq!(t, SimDuration::from_millis(1));
    }

    #[test]
    fn busy_nic_reports_when_free() {
        let mut s = EgressShaper::new(GBE10);
        s.busy_until = SimTime::from_micros(100);
        s.enqueue(EgressMsg {
            bytes: 10,
            class: TrafficClass::High,
            token: 1,
            dest: 0,
        });
        assert!(matches!(
            s.try_start(SimTime::ZERO),
            StartDecision::BusyUntil(t) if t == SimTime::from_micros(100)
        ));
    }
}
