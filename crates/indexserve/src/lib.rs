//! IndexServe: the latency-sensitive primary-tenant model.
//!
//! Models the Bing web-index serving component the paper evaluates (§2.1,
//! §5.3): a highly multi-threaded, bursty query processor with
//! millisecond-scale latency and an SLO of *p99 within 1 ms of standalone*.
//!
//! # Query anatomy
//!
//! Each query runs a four-stage pipeline on fresh short-lived threads:
//!
//! 1. **Parse** — one short CPU burst.
//! 2. **Fan-out** — 8–15 matcher workers woken *within microseconds* (the
//!    burst the buffer cores exist to absorb); each worker alternates CPU
//!    bursts with SSD index reads on cache misses.
//! 3. **Rank** — CPU bursts interleaved with index reads.
//! 4. **Aggregate** — a final CPU burst, then the response is sent.
//!
//! Under load pressure IndexServe *compensates* by raising per-query
//! parallelism (the paper observes its CPU utilization inflating from 20 %
//! to ~40 % under a mid-size bully; Bing's target-driven parallelism [15]
//! behaves this way), which is also the positive-feedback loop behind the
//! 29× tail collapse with an unrestricted bully.
//!
//! Admission control bounds concurrent queries; arrivals beyond the bound
//! queue (open loop) and are dropped when their deadline passes — matching
//! the paper's reported timeout-drop percentages.
//!
//! [`boxsim::BoxSim`] drives one machine end to end: CPU simulator, SSD and
//! HDD volumes, workload models, and the PerfIso controller.

pub mod boxsim;
pub mod cache;
pub mod chaos;
pub mod port;
pub mod service;
pub mod tags;

pub use boxsim::{
    BoxConfig, BoxEvent, BoxReport, BoxSim, BoxSnapshot, HostedSpec, SecondaryKind, ServicePlan,
    ServiceReport, IO_TENANT_SERVICES,
};
pub use cache::CacheModel;
pub use chaos::{FaultPlan, FaultRecord, PlannedFault, PlannedFaultKind};
pub use port::{BlockedAction, GraphPort, ServicePort};
pub use service::{IndexServe, ServiceConfig};
