//! The IndexServe query state machine.
//!
//! The service is passive: the machine driver ([`crate::boxsim::BoxSim`] or
//! the cluster simulator) feeds it arrivals, thread-exit notifications and
//! timeout events; it spawns stage threads on the simulated machine and
//! emits query outcomes.

use std::collections::VecDeque;
use std::sync::Arc;

use qtrace::QuerySpec;
use serde::{Deserialize, Serialize};
use simcore::dist::{LogNormal, Sample};
use simcore::{SimDuration, SimRng, SimTime};
use simcpu::{JobId, Machine, Program, ThreadId};

use crate::cache::CacheModel;
use crate::tags::{service_bits, stage_tag, Stage};

/// Service-model parameters (calibrated to the paper's standalone profile).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Query deadline; exceeding it drops the query (the paper reports
    /// 11–32 % timeouts under an unrestricted bully).
    pub timeout: SimDuration,
    /// Median parse-stage CPU burst (µs).
    pub parse_cost_us: f64,
    /// Lognormal sigma multiplying each worker round's trace burst.
    pub worker_jitter_sigma: f64,
    /// Rank-stage rounds (CPU burst + index read each).
    pub rank_rounds: u8,
    /// Median rank-stage burst per round (µs).
    pub rank_burst_us: f64,
    /// Median aggregation burst (µs).
    pub agg_cost_us: f64,
    /// Lognormal sigma for parse/rank/agg bursts.
    pub stage_sigma: f64,
    /// Index read size per SSD access.
    pub index_read_bytes: u64,
    /// Admission bound on concurrently processed queries.
    pub max_concurrent: u32,
    /// Minimum remaining deadline budget required to *start* a query.
    ///
    /// A query that spent most of its deadline waiting for admission is
    /// shed instead of started: it would almost surely time out anyway,
    /// and starting it would steal CPU from queries that can still make
    /// it. This is what keeps an overloaded server completing the
    /// fraction of queries it has capacity for (the paper's 11–32 %
    /// timeout band, §6.1.2) instead of missing every deadline by a hair.
    pub min_start_budget: SimDuration,
    /// Admission-queue length above which parallelism compensation starts.
    pub comp_threshold: u32,
    /// Extra fan-out fraction per queued query of excess pressure.
    pub comp_scale: f64,
    /// Maximum fan-out multiplier.
    pub comp_max: f64,
    /// The cache model.
    pub cache: CacheModel,
    /// Per-query log write to the shared HDD volume.
    pub log_write_bytes: u64,
    /// Declared working-set size registered against the primary job.
    ///
    /// `None` means the paper's production footprint
    /// ([`ServiceConfig::PAPER_WORKING_SET`]); multi-primary boxes set an
    /// explicit per-service value so two services fit one machine.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub working_set_bytes: Option<u64>,
}

impl ServiceConfig {
    /// The paper's IndexServe footprint: 110 GiB index cache plus 6 GiB
    /// process overhead.
    pub const PAPER_WORKING_SET: u64 = 110 * (1 << 30) + (6 << 30);

    /// The effective working set registered with the machine.
    pub fn working_set(&self) -> u64 {
        self.working_set_bytes.unwrap_or(Self::PAPER_WORKING_SET)
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        // Calibrated against the paper's standalone profile (p50 ≈ 4 ms,
        // p99 ≈ 12 ms, idle ≈ 80 %/60 % at 2 000/4 000 QPS) and its
        // colocation shapes. The timeout is set just above the 349/354 ms
        // p99 the paper reports for the unrestricted high bully: those runs
        // are shed-stabilized saturation, so completed-query p99 pins just
        // below the drop deadline.
        ServiceConfig {
            timeout: SimDuration::from_millis(360),
            parse_cost_us: 120.0,
            worker_jitter_sigma: 0.30,
            rank_rounds: 6,
            rank_burst_us: 200.0,
            agg_cost_us: 400.0,
            stage_sigma: 0.50,
            index_read_bytes: 64 << 10,
            max_concurrent: 128,
            min_start_budget: SimDuration::from_millis(120),
            comp_threshold: 4,
            comp_scale: 0.05,
            comp_max: 1.5,
            cache: CacheModel::paper_default(200_000),
            log_write_bytes: 4 << 10,
            working_set_bytes: None,
        }
    }
}

/// The outcome of one query.
#[derive(Clone, Copy, Debug)]
pub struct QueryOutcome {
    /// Dense query index assigned at arrival.
    pub qidx: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// End-to-end latency (valid when not dropped).
    pub latency: SimDuration,
    /// True when the query timed out.
    pub dropped: bool,
    /// Index of the hosting service on its box (0 on single-service boxes).
    pub service: u8,
}

#[derive(Clone, Debug)]
struct QueryState {
    spec: QuerySpec,
    arrival: SimTime,
    started: bool,
    finished: bool,
    pending_workers: u32,
    live_tids: Vec<ThreadId>,
}

/// The per-machine IndexServe instance.
///
/// `Clone` deep-copies the full query-tracking state (the shared config
/// `Arc` is refcounted) — the box checkpoint/rollback path relies on a
/// clone behaving identically to the original from the clone point on.
#[derive(Clone, Debug)]
pub struct IndexServe {
    cfg: Arc<ServiceConfig>,
    job: JobId,
    queries: Vec<QueryState>,
    admission_queue: VecDeque<u64>,
    in_flight: u32,
    outcomes: Vec<QueryOutcome>,
    rng: SimRng,
    /// Total fan-out workers spawned (for burst statistics).
    pub workers_spawned: u64,
    /// Queries admitted immediately vs queued.
    pub queued_admissions: u64,
    /// Queries shed at admission for lack of remaining deadline budget.
    pub shed_admissions: u64,
    /// Index of this service on its box; ORed into every stage tag (as
    /// [`crate::tags::service_bits`]) and stamped on outcomes. Zero for the
    /// classic single-service box, so tags stay bit-identical there.
    service: u8,
    /// Recycled `live_tids` vectors: finished queries return their vector
    /// here so steady-state arrivals never allocate one.
    tid_pool: Vec<Vec<ThreadId>>,
    /// Scratch for the timeout kill sweep (replaces a per-timeout clone).
    kill_scratch: Vec<ThreadId>,
    /// Stage cost distributions, prebuilt from the config once: the spawn
    /// paths sample them per stage, and `LogNormal::from_median` costs a
    /// runtime `ln` that has no place in the per-query hot loop.
    parse_dist: LogNormal,
    worker_jitter: LogNormal,
    rank_dist: LogNormal,
    agg_dist: LogNormal,
}

impl IndexServe {
    /// Creates a service bound to the primary `job` on the machine.
    ///
    /// The configuration is shared: cluster and fleet drivers instantiate
    /// hundreds of services from one `Arc` without cloning the config.
    pub fn new(cfg: Arc<ServiceConfig>, job: JobId, seed: u64) -> Self {
        Self::for_service(cfg, job, seed, 0)
    }

    /// Creates a service bound to slot `service` of a multi-service box:
    /// its stage tags carry the service index so the box driver can route
    /// machine outputs back to it.
    pub fn for_service(cfg: Arc<ServiceConfig>, job: JobId, seed: u64, service: u8) -> Self {
        let parse_dist = LogNormal::from_median(cfg.parse_cost_us, cfg.stage_sigma);
        let worker_jitter = LogNormal::unit_median(cfg.worker_jitter_sigma);
        let rank_dist = LogNormal::from_median(cfg.rank_burst_us, cfg.stage_sigma);
        let agg_dist = LogNormal::from_median(cfg.agg_cost_us, cfg.stage_sigma);
        IndexServe {
            cfg,
            job,
            queries: Vec::new(),
            admission_queue: VecDeque::new(),
            in_flight: 0,
            outcomes: Vec::new(),
            rng: SimRng::seed_from_u64(seed ^ 0x1D5),
            workers_spawned: 0,
            queued_admissions: 0,
            shed_admissions: 0,
            service,
            tid_pool: Vec::new(),
            kill_scratch: Vec::new(),
            parse_dist,
            worker_jitter,
            rank_dist,
            agg_dist,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// This service's slot index on its box.
    pub fn service_index(&self) -> u8 {
        self.service
    }

    /// A stage tag carrying this service's index bits.
    fn tag(&self, stage: Stage, qidx: u64, worker: u16) -> u64 {
        stage_tag(stage, qidx, worker) | service_bits(self.service)
    }

    /// Queries currently being processed (admitted, not finished).
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Arrivals waiting for admission.
    pub fn admission_queue_len(&self) -> usize {
        self.admission_queue.len()
    }

    /// Takes accumulated outcomes.
    ///
    /// Allocation-free callers should prefer
    /// [`IndexServe::drain_outcomes_into`].
    pub fn drain_outcomes(&mut self) -> Vec<QueryOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Moves accumulated outcomes into `buf` (appending), keeping the
    /// internal buffer's capacity for reuse on the hot path.
    pub fn drain_outcomes_into(&mut self, buf: &mut Vec<QueryOutcome>) {
        buf.append(&mut self.outcomes);
    }

    /// True when outcomes are pending.
    pub fn has_outcomes(&self) -> bool {
        !self.outcomes.is_empty()
    }

    /// Handles a query arrival; returns the dense query index (schedule the
    /// timeout for `arrival + cfg.timeout` against it).
    pub fn on_arrival(&mut self, now: SimTime, spec: QuerySpec, machine: &mut Machine) -> u64 {
        let qidx = self.queries.len() as u64;
        self.queries.push(QueryState {
            spec,
            arrival: now,
            started: false,
            finished: false,
            pending_workers: 0,
            live_tids: self.tid_pool.pop().unwrap_or_default(),
        });
        if self.in_flight < self.cfg.max_concurrent {
            self.start_query(now, qidx, machine);
        } else {
            self.queued_admissions += 1;
            self.admission_queue.push_back(qidx);
        }
        qidx
    }

    fn start_query(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        self.in_flight += 1;
        let q = &mut self.queries[qidx as usize];
        q.started = true;
        // Stage 1: parse. A single compute burst is the inline one-shot
        // program — no box, no script, no arena traffic.
        let burst = self.parse_dist.sample(&mut self.rng);
        let tid = machine.spawn_program(
            now,
            self.job,
            Program::compute_once(SimDuration::from_micros_f64(burst)),
            self.tag(Stage::Parse, qidx, 0),
        );
        self.queries[qidx as usize].live_tids.push(tid);
    }

    /// The compensation multiplier at current pressure.
    ///
    /// "IndexServe tries to compensate for the increase in pending queries
    /// by starting more workers" (§6.1.2). Pending means *queued for
    /// admission*: a backlog only forms once the in-flight cap is hit, so
    /// ordinary load changes (2 000 → 4 000 QPS standalone) never trigger
    /// compensation, while genuine overload raises per-query parallelism —
    /// which is exactly what "ultimately aggravates CPU contention".
    fn compensation(&self) -> f64 {
        let excess = self.admission_queue.len() as f64 - self.cfg.comp_threshold as f64;
        if excess <= 0.0 {
            1.0
        } else {
            (1.0 + excess * self.cfg.comp_scale).min(self.cfg.comp_max)
        }
    }

    /// Handles a primary-stage thread exit. Returns `Some(outcome)` when
    /// the query completed.
    pub fn on_stage_exited(
        &mut self,
        now: SimTime,
        stage: Stage,
        qidx: u64,
        machine: &mut Machine,
    ) -> Option<QueryOutcome> {
        if self.queries[qidx as usize].finished {
            return None;
        }
        match stage {
            Stage::Parse => {
                self.spawn_fanout(now, qidx, machine);
                None
            }
            Stage::Worker => {
                let q = &mut self.queries[qidx as usize];
                q.pending_workers = q.pending_workers.saturating_sub(1);
                if q.pending_workers == 0 {
                    self.spawn_rank(now, qidx, machine);
                }
                None
            }
            Stage::Rank => {
                self.spawn_agg(now, qidx, machine);
                None
            }
            Stage::Aggregate => Some(self.complete(now, qidx, machine)),
        }
    }

    fn spawn_fanout(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        // Compensation re-partitions the query across more workers: the
        // total work is conserved (per-worker bursts shrink by the same
        // factor), shortening the critical path at the cost of a burstier
        // thread fan-out — "starting more workers... ultimately aggravates
        // CPU contention" (§6.1.2).
        let comp = self.compensation();
        let (fanout, rounds, base_burst_ns, miss_prob) = {
            let q = &self.queries[qidx as usize];
            (
                ((q.spec.fanout as f64 * comp).round() as u32).max(1),
                q.spec.rounds,
                q.spec.burst_ns as f64 / comp,
                self.cfg.cache.miss_prob(q.spec.doc_rank),
            )
        };
        self.queries[qidx as usize].pending_workers = fanout;
        self.workers_spawned += fanout as u64;
        let jitter = self.worker_jitter;
        for w in 0..fanout {
            // Pre-sample the worker's whole script — per-round burst jitter
            // and cache misses — streaming the steps straight into recycled
            // arena memory.
            let mut writer =
                machine.spawn_scripted(now, self.job, self.tag(Stage::Worker, qidx, w as u16));
            for round in 0..rounds {
                let burst = base_burst_ns * jitter.sample(&mut self.rng);
                writer.compute(SimDuration::from_nanos(burst as u64));
                if self.rng.bernoulli(miss_prob) {
                    writer.block(round as u64);
                }
            }
            let tid = writer.finish();
            self.queries[qidx as usize].live_tids.push(tid);
        }
    }

    fn spawn_rank(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        let heavy = self.queries[qidx as usize].spec.heavy;
        let rounds = if heavy {
            self.cfg.rank_rounds * 3
        } else {
            self.cfg.rank_rounds
        };
        let dist = self.rank_dist;
        // Rank is a continuation of in-flight work (a pool thread woken by
        // the last worker's completion), so it carries the wake boost —
        // only the initial fan-out pays the back-of-queue price.
        let mut writer = machine
            .spawn_scripted(now, self.job, self.tag(Stage::Rank, qidx, 0))
            .boosted(true);
        for round in 0..rounds {
            let burst = dist.sample(&mut self.rng);
            writer.compute(SimDuration::from_micros_f64(burst));
            writer.block(round as u64);
        }
        let tid = writer.finish();
        self.queries[qidx as usize].live_tids.push(tid);
    }

    fn spawn_agg(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        let burst = self.agg_dist.sample(&mut self.rng);
        // A continuation, like rank.
        let tid = machine.spawn_program_with(
            now,
            self.job,
            Program::compute_once(SimDuration::from_micros_f64(burst)),
            self.tag(Stage::Aggregate, qidx, 0),
            true,
        );
        self.queries[qidx as usize].live_tids.push(tid);
    }

    fn complete(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) -> QueryOutcome {
        let arrival = self.queries[qidx as usize].arrival;
        let outcome = QueryOutcome {
            qidx,
            arrival,
            latency: now.since(arrival),
            dropped: false,
            service: self.service,
        };
        self.finish(now, qidx, machine);
        self.outcomes.push(outcome);
        outcome
    }

    /// Handles the query's deadline. Returns an outcome when the query was
    /// actually dropped (still live at the deadline).
    pub fn on_timeout(
        &mut self,
        now: SimTime,
        qidx: u64,
        machine: &mut Machine,
    ) -> Option<QueryOutcome> {
        let q = &self.queries[qidx as usize];
        if q.finished {
            return None;
        }
        let arrival = q.arrival;
        let was_started = q.started;
        // Abandon: kill whatever is still running for this query. The kill
        // sweep runs on a reused scratch buffer so timeouts (and the
        // controller actions they race with) never allocate.
        let mut tids = std::mem::take(&mut self.kill_scratch);
        tids.clear();
        tids.extend_from_slice(&self.queries[qidx as usize].live_tids);
        for &tid in &tids {
            machine.kill_thread(now, tid);
        }
        self.kill_scratch = tids;
        if was_started {
            self.finish(now, qidx, machine);
        } else {
            // Still waiting for admission: remove from the queue.
            self.queries[qidx as usize].finished = true;
            self.recycle_tids(qidx);
            self.admission_queue.retain(|&x| x != qidx);
        }
        let outcome = QueryOutcome {
            qidx,
            arrival,
            latency: now.since(arrival),
            dropped: true,
            service: self.service,
        };
        self.outcomes.push(outcome);
        Some(outcome)
    }

    /// Fails every unfinished query at once (the process died): each one is
    /// killed and reported dropped, exactly as if its deadline fired now.
    pub fn fail_all(&mut self, now: SimTime, machine: &mut Machine) {
        for qidx in 0..self.queries.len() as u64 {
            self.on_timeout(now, qidx, machine);
        }
    }

    /// Records an arrival refused at the connection level (the process is
    /// restarting): the query is dropped immediately with zero latency and
    /// never touches the machine. Returns the dense query index.
    pub fn refuse_arrival(&mut self, now: SimTime, spec: QuerySpec) -> u64 {
        let qidx = self.queries.len() as u64;
        self.queries.push(QueryState {
            spec,
            arrival: now,
            started: false,
            finished: true,
            pending_workers: 0,
            live_tids: Vec::new(),
        });
        self.outcomes.push(QueryOutcome {
            qidx,
            arrival: now,
            latency: SimDuration::ZERO,
            dropped: true,
            service: self.service,
        });
        qidx
    }

    /// True when the query has burned too much of its deadline waiting to
    /// be worth starting.
    fn past_start_budget(&self, now: SimTime, qidx: u64) -> bool {
        let elapsed = now.since(self.queries[qidx as usize].arrival);
        elapsed + self.cfg.min_start_budget > self.cfg.timeout
    }

    /// Sheds an unstarted query: emits the dropped outcome immediately and
    /// lets the (stale) timeout event no-op later.
    fn shed(&mut self, now: SimTime, qidx: u64) {
        let q = &mut self.queries[qidx as usize];
        debug_assert!(!q.started && !q.finished);
        q.finished = true;
        let arrival = q.arrival;
        self.recycle_tids(qidx);
        self.shed_admissions += 1;
        self.outcomes.push(QueryOutcome {
            qidx,
            arrival,
            latency: now.since(arrival),
            dropped: true,
            service: self.service,
        });
    }

    /// Returns a finished query's `live_tids` vector to the pool (bounded
    /// by the admission cap so the pool cannot grow without limit).
    fn recycle_tids(&mut self, qidx: u64) {
        let mut v = std::mem::take(&mut self.queries[qidx as usize].live_tids);
        if self.tid_pool.len() < self.cfg.max_concurrent as usize + 8 {
            v.clear();
            self.tid_pool.push(v);
        }
    }

    /// Marks a query done, releases its admission slot, and starts the next
    /// queued arrival that still has deadline budget, shedding the rest.
    fn finish(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        let q = &mut self.queries[qidx as usize];
        debug_assert!(!q.finished);
        q.finished = true;
        self.recycle_tids(qidx);
        self.in_flight = self.in_flight.saturating_sub(1);
        while let Some(next) = self.admission_queue.pop_front() {
            if self.queries[next as usize].finished {
                continue;
            }
            if self.past_start_budget(now, next) {
                self.shed(now, next);
                continue;
            }
            self.start_query(now, next, machine);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::CoreMask;
    use simcpu::{MachineConfig, MachineOutput};
    use telemetry::TenantClass;

    use crate::tags::parse_stage_tag;

    fn spec(id: u64) -> QuerySpec {
        QuerySpec {
            id,
            fanout: 10,
            rounds: 4,
            burst_ns: 90_000,
            doc_rank: 1,
            heavy: false,
        }
    }

    /// Drives machine outputs back into the service until quiescent,
    /// waking blocked threads immediately (zero-latency "disk").
    fn settle(m: &mut Machine, s: &mut IndexServe, upto: SimTime) {
        loop {
            // Drain everything pending at the current instant first, so
            // outputs produced by wakes are handled at the right time.
            let now = m.now();
            let outs = m.drain_outputs();
            if !outs.is_empty() {
                for o in outs {
                    match o {
                        MachineOutput::ThreadBlocked { tid, .. } => {
                            m.wake(now, tid);
                        }
                        MachineOutput::ThreadExited { tag, .. } => {
                            if let Some((stage, q, _)) = parse_stage_tag(tag) {
                                s.on_stage_exited(now, stage, q, m);
                            }
                        }
                    }
                }
                continue;
            }
            match m.next_timer_at().filter(|&t| t <= upto) {
                Some(t) => m.advance_to(t),
                None => {
                    // No pending outputs and no timers in range: quiescent.
                    m.advance_to(upto);
                    break;
                }
            }
        }
    }

    #[test]
    fn query_completes_through_all_stages() {
        let mut m = Machine::new(MachineConfig::small(16));
        let job = m.create_job(TenantClass::Primary, CoreMask::all(16));
        let mut s = IndexServe::new(Arc::new(ServiceConfig::default()), job, 1);
        s.on_arrival(SimTime::ZERO, spec(0), &mut m);
        settle(&mut m, &mut s, SimTime::from_millis(100));
        let outcomes = s.drain_outcomes();
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].dropped);
        assert!(outcomes[0].latency > SimDuration::from_micros(300));
        assert!(outcomes[0].latency < SimDuration::from_millis(20));
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.workers_spawned, 10);
    }

    #[test]
    fn fanout_workers_spawn_together() {
        let mut m = Machine::new(MachineConfig::small(16));
        let job = m.create_job(TenantClass::Primary, CoreMask::all(16));
        let mut s = IndexServe::new(Arc::new(ServiceConfig::default()), job, 2);
        s.on_arrival(SimTime::ZERO, spec(0), &mut m);
        // Run just past the parse stage.
        let t = m.next_timer_at().unwrap();
        m.advance_to(t);
        for o in m.drain_outputs() {
            if let MachineOutput::ThreadExited { tag, .. } = o {
                let (stage, q, _) = parse_stage_tag(tag).unwrap();
                assert_eq!(stage, Stage::Parse);
                s.on_stage_exited(t, stage, q, &mut m);
            }
        }
        // All 10 workers are now live simultaneously: the burst.
        assert_eq!(m.idle_core_mask().count(), 16 - 10);
    }

    #[test]
    fn admission_control_queues_excess() {
        let mut m = Machine::new(MachineConfig::small(4));
        let job = m.create_job(TenantClass::Primary, CoreMask::all(4));
        let cfg = ServiceConfig {
            max_concurrent: 2,
            ..Default::default()
        };
        let mut s = IndexServe::new(Arc::new(cfg), job, 3);
        for i in 0..5 {
            s.on_arrival(SimTime::ZERO, spec(i), &mut m);
        }
        assert_eq!(s.in_flight(), 2);
        assert_eq!(s.admission_queue_len(), 3);
        settle(&mut m, &mut s, SimTime::from_secs(1));
        assert_eq!(s.drain_outcomes().len(), 5);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn compensation_raises_fanout_under_pressure() {
        let mut m = Machine::new(MachineConfig::small(4));
        let job = m.create_job(TenantClass::Primary, CoreMask::all(4));
        let cfg = ServiceConfig {
            max_concurrent: 2,
            comp_threshold: 2,
            comp_scale: 0.25,
            ..Default::default()
        };
        let comp_max = cfg.comp_max;
        let mut s = IndexServe::new(Arc::new(cfg), job, 4);
        // Pile up arrivals past the admission cap without driving the
        // machine: the backlog builds until the multiplier saturates.
        for i in 0..12 {
            s.on_arrival(SimTime::ZERO, spec(i), &mut m);
        }
        assert_eq!(s.admission_queue_len(), 10);
        assert!(s.compensation() > 1.2, "compensation {}", s.compensation());
        assert!(
            (s.compensation() - comp_max).abs() < 1e-9,
            "10 queued past threshold 2 at scale 0.25 saturates the cap"
        );
    }

    #[test]
    fn timeout_drops_and_kills() {
        let mut m = Machine::new(MachineConfig::small(2));
        let job = m.create_job(TenantClass::Primary, CoreMask::all(2));
        let mut s = IndexServe::new(Arc::new(ServiceConfig::default()), job, 5);
        let q = s.on_arrival(SimTime::ZERO, spec(0), &mut m);
        // Fire the deadline while the query is still mid-flight.
        m.advance_to(SimTime::from_micros(200));
        let out = s.on_timeout(SimTime::from_micros(200), q, &mut m).unwrap();
        assert!(out.dropped);
        // Machine drains without the query ever completing.
        m.advance_to(SimTime::from_millis(50));
        assert_eq!(s.in_flight(), 0);
        let dropped: Vec<_> = s.drain_outcomes();
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    fn timeout_after_completion_is_noop() {
        let mut m = Machine::new(MachineConfig::small(16));
        let job = m.create_job(TenantClass::Primary, CoreMask::all(16));
        let mut s = IndexServe::new(Arc::new(ServiceConfig::default()), job, 6);
        let q = s.on_arrival(SimTime::ZERO, spec(0), &mut m);
        settle(&mut m, &mut s, SimTime::from_millis(100));
        assert_eq!(s.drain_outcomes().len(), 1);
        assert!(s.on_timeout(SimTime::from_millis(500), q, &mut m).is_none());
    }
}
