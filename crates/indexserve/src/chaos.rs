//! Deterministic fault injection (the §4.2 availability claim).
//!
//! The paper's recovery story — "in the event of a crash, Autopilot will
//! bring it up again, and PerfIso will resume its function by loading its
//! state from disk" — is exercised here: a [`FaultPlan`] is a fixed
//! timeline of lifecycle faults compiled by the spec layer and executed
//! inside [`BoxSim`](crate::BoxSim) through a per-box
//! [`autopilot::ServiceManager`] + [`autopilot::ServiceRegistry`].
//! Fault firing is pure simulation time — no wall clock, no extra RNG
//! draws — so chaos runs stay seed-deterministic and bit-identical across
//! thread counts.

use autopilot::RestartPolicy;
use perfiso::PerfIsoConfig;
use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// One scheduled fault on the box timeline.
#[derive(Clone, Debug)]
pub struct PlannedFault {
    /// Absolute simulation time at which the fault fires.
    pub at: SimTime,
    /// What breaks (or rolls out).
    pub kind: PlannedFaultKind,
}

/// The runtime shape of an injected fault, with spec-level knobs already
/// resolved to concrete simulator values.
#[derive(Clone, Debug)]
pub enum PlannedFaultKind {
    /// Kill the PerfIso controller process. The box runs unisolated (the
    /// Fig. 4 no-isolation regime) until Autopilot restarts it from the
    /// last [`perfiso::recovery::ControllerState`] checkpoint.
    ControllerCrash {
        /// Minimum downtime expressed in controller CPU-poll periods; the
        /// actual downtime is the max of this and the restart backoff.
        downtime_polls: u32,
    },
    /// Kill and respawn the secondary workload's processes.
    SecondaryRestart {
        /// How long the secondary stays down before Autopilot respawns it.
        downtime: SimDuration,
    },
    /// Restart the IndexServe process itself: every in-flight query fails
    /// and arrivals are refused until the service is back.
    BoxRestart {
        /// How long the primary stays down.
        downtime: SimDuration,
    },
    /// Publish a new controller configuration document to the
    /// [`autopilot::ConfigStore`]; the controller picks it up at its next
    /// CPU poll and re-installs itself, restoring its dynamic state.
    ConfigRollout {
        /// Config-store document key.
        key: String,
        /// The fully-resolved replacement configuration.
        config: Box<PerfIsoConfig>,
        /// Fleet stage: only the first `ceil(staged_pct% * n_boxes)` boxes
        /// of a cluster apply the rollout (single boxes always do).
        staged_pct: u8,
        /// Automatic rollback trigger: if the post-rollout P99 over the
        /// observation window exceeds this, the previous config returns.
        rollback_p99: Option<SimDuration>,
    },
    /// One lifecycle cycle of a churn storm: kill and respawn the
    /// secondary, exactly like [`PlannedFaultKind::SecondaryRestart`] but
    /// tagged separately. The spec layer expands a churn-storm event into
    /// many of these in rapid succession.
    ServiceChurn {
        /// How long the secondary stays down this cycle.
        downtime: SimDuration,
    },
    /// An arrival-rate flood on the primary: for `duration` the box
    /// injects `extra_qps` additional synthetic arrivals per second on
    /// top of the external client load, to be absorbed (or shed) by
    /// admission control.
    ConnectionFlood {
        /// How long the flood lasts.
        duration: SimDuration,
        /// Additional arrivals per second while flooding.
        extra_qps: u32,
    },
    /// An I/O tenant exhausting its quota: for `duration` every operation
    /// the tenant submits is inflated by `multiplier`, driving it into
    /// its IOPS cap so the throttle (not the spindle) bounds the damage.
    QuotaExhaustion {
        /// How long the exhaustion episode lasts.
        duration: SimDuration,
        /// The I/O tenant (`disk-bully`, `hdfs-replication`, or
        /// `hdfs-client`).
        tenant: String,
        /// Byte-size inflation applied to the tenant's operations (> 1).
        multiplier: f64,
    },
}

impl PlannedFaultKind {
    /// The registry service name this fault targets.
    pub fn service(&self) -> &'static str {
        match self {
            PlannedFaultKind::ControllerCrash { .. } | PlannedFaultKind::ConfigRollout { .. } => {
                "perfiso"
            }
            PlannedFaultKind::SecondaryRestart { .. } | PlannedFaultKind::ServiceChurn { .. } => {
                "secondary"
            }
            PlannedFaultKind::BoxRestart { .. } | PlannedFaultKind::ConnectionFlood { .. } => {
                "indexserve"
            }
            PlannedFaultKind::QuotaExhaustion { tenant, .. } => match tenant.as_str() {
                "disk-bully" => "disk-bully",
                "hdfs-replication" => "hdfs-replication",
                "hdfs-client" => "hdfs-client",
                _ => "secondary",
            },
        }
    }

    /// Short kind tag used in reports and timelines.
    pub fn tag(&self) -> &'static str {
        match self {
            PlannedFaultKind::ControllerCrash { .. } => "controller-crash",
            PlannedFaultKind::SecondaryRestart { .. } => "secondary-restart",
            PlannedFaultKind::BoxRestart { .. } => "box-restart",
            PlannedFaultKind::ConfigRollout { .. } => "config-rollout",
            PlannedFaultKind::ServiceChurn { .. } => "service-churn",
            PlannedFaultKind::ConnectionFlood { .. } => "connection-flood",
            PlannedFaultKind::QuotaExhaustion { .. } => "quota-exhaustion",
        }
    }
}

/// The compiled fault timeline handed to a simulator.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Faults in firing order.
    pub faults: Vec<PlannedFault>,
    /// Autopilot restart policy shared by all services on the box.
    pub restart: RestartPolicy,
}

impl FaultPlan {
    /// True when no fault ever fires.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The slice of this plan that applies to box `box_index` of
    /// `n_boxes`: staged config rollouts reach only the leading
    /// `ceil(staged_pct% * n_boxes)` boxes, every other fault reaches all
    /// boxes. Returns `None` when nothing applies.
    pub fn slice_for_box(&self, box_index: usize, n_boxes: usize) -> Option<FaultPlan> {
        let faults: Vec<PlannedFault> = self
            .faults
            .iter()
            .filter(|f| match &f.kind {
                PlannedFaultKind::ConfigRollout { staged_pct, .. } => {
                    let staged = (n_boxes * *staged_pct as usize).div_ceil(100);
                    box_index < staged
                }
                _ => true,
            })
            .cloned()
            .collect();
        if faults.is_empty() {
            None
        } else {
            Some(FaultPlan {
                faults,
                restart: self.restart,
            })
        }
    }
}

/// One executed fault, as recorded into the report.
///
/// `recovery_polls` counts controller CPU polls from restart until the
/// first poll that changed nothing — the controller has converged back to
/// steady state (0 when the fault does not restart a controller).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Fault kind tag (`controller-crash`, `secondary-restart`,
    /// `box-restart`, `config-rollout`).
    pub kind: String,
    /// Registry service name the fault targeted.
    pub service: String,
    /// Absolute fire time in simulation milliseconds.
    pub fired_at_ms: f64,
    /// Actual downtime in milliseconds (0 for rollouts).
    pub downtime_ms: f64,
    /// Controller polls from restart to convergence.
    pub recovery_polls: u32,
    /// Autopilot gave up restarting (crash loop exceeded `max_failures`).
    pub gave_up: bool,
    /// A config rollout was reverted by the tail-latency watchdog.
    pub rolled_back: bool,
}

impl FaultRecord {
    /// Starts a record for a fault firing at `at`.
    pub fn fired(kind: &PlannedFaultKind, at: SimTime) -> FaultRecord {
        FaultRecord {
            kind: kind.tag().to_string(),
            service: kind.service().to_string(),
            fired_at_ms: at.since(SimTime::ZERO).as_millis_f64(),
            downtime_ms: 0.0,
            recovery_polls: 0,
            gave_up: false,
            rolled_back: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rollout(staged_pct: u8) -> PlannedFault {
        PlannedFault {
            at: SimTime::from_millis(100),
            kind: PlannedFaultKind::ConfigRollout {
                key: "perfiso".to_string(),
                config: Box::new(PerfIsoConfig::paper_cluster()),
                staged_pct,
                rollback_p99: None,
            },
        }
    }

    fn crash() -> PlannedFault {
        PlannedFault {
            at: SimTime::from_millis(50),
            kind: PlannedFaultKind::ControllerCrash { downtime_polls: 10 },
        }
    }

    #[test]
    fn staged_rollout_reaches_leading_boxes_only() {
        let plan = FaultPlan {
            faults: vec![rollout(50)],
            restart: RestartPolicy::default(),
        };
        // ceil(50% * 4) = 2 boxes.
        assert!(plan.slice_for_box(0, 4).is_some());
        assert!(plan.slice_for_box(1, 4).is_some());
        assert!(plan.slice_for_box(2, 4).is_none());
        assert!(plan.slice_for_box(3, 4).is_none());
        // A single box always participates.
        assert!(plan.slice_for_box(0, 1).is_some());
    }

    #[test]
    fn non_rollout_faults_reach_every_box() {
        let plan = FaultPlan {
            faults: vec![crash(), rollout(25)],
            restart: RestartPolicy::default(),
        };
        // ceil(25% * 4) = 1 box gets both; the rest get the crash only.
        assert_eq!(plan.slice_for_box(0, 4).unwrap().faults.len(), 2);
        for i in 1..4 {
            assert_eq!(plan.slice_for_box(i, 4).unwrap().faults.len(), 1);
        }
    }

    #[test]
    fn empty_slice_is_none() {
        let plan = FaultPlan {
            faults: vec![rollout(1)],
            restart: RestartPolicy::default(),
        };
        assert!(plan.slice_for_box(5, 10).is_none());
    }
}
