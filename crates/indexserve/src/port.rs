//! The generic service interface a box hosts.
//!
//! [`crate::boxsim::BoxSim`] historically drove exactly one hard-wired
//! [`IndexServe`] primary. [`ServicePort`] abstracts what the box driver
//! actually needs from a hosted latency-sensitive service — arrival
//! admission, thread-event routing, deadline handling, completion
//! draining, and the chaos restart hooks — so one box can host up to
//! [`crate::tags::MAX_SERVICES`] heterogeneous services, each on its own
//! machine job with its own declared working set.
//!
//! Routing contract: every thread a service spawns must carry
//! [`crate::tags::PRIMARY_BIT`] plus its slot's
//! [`crate::tags::service_bits`] in the tag; the box driver dispatches
//! machine outputs back to the owning slot by those bits. Service 0 of a
//! single-service box produces tags bit-identical to the pre-refactor
//! encoding, which is what keeps the golden fixtures byte-stable.

use qtrace::QuerySpec;
use simcore::{SimDuration, SimTime};
use simcpu::{Machine, ThreadId};
use telemetry::ResilienceStats;
use workloads::service_graph::{GraphEngine, GraphOutcome};

use crate::service::{IndexServe, QueryOutcome};
use crate::tags::parse_stage_tag;

/// What the box driver should do with a blocked service thread.
#[derive(Clone, Copy, Debug)]
pub enum BlockedAction {
    /// Submit a random read of `bytes` on the box's exclusive SSD volume
    /// and wake the thread on completion (IndexServe's index reads).
    IndexRead {
        /// Read size in bytes.
        bytes: u64,
    },
    /// Wake the thread immediately (the block is not an I/O wait the box
    /// models, or the service handles it internally).
    Wake,
}

/// A latency-sensitive service hosted on one box.
///
/// Implementations are driven entirely by the box: arrivals come from
/// [`ServicePort::on_arrival`], machine outputs are routed back through
/// the `on_thread_*` hooks, and deadlines through [`ServicePort::on_timeout`].
/// Services with internal timers (e.g. a service graph pumping its own
/// fabric) expose them via [`ServicePort::next_timer_at`] /
/// [`ServicePort::advance_to`].
pub trait ServicePort: Send {
    /// Display name (per-service report rows, chaos registry).
    fn name(&self) -> &str;

    /// Declared working-set bytes registered against the service's job.
    fn working_set(&self) -> u64;

    /// Per-request deadline; the box schedules a timeout event at
    /// `arrival + timeout()` for every admitted arrival.
    fn timeout(&self) -> SimDuration;

    /// Per-completion log write on the shared HDD volume (0 = none).
    fn log_write_bytes(&self) -> u64;

    /// Handles a request arrival; returns the service-local dense index.
    fn on_arrival(&mut self, now: SimTime, spec: QuerySpec, machine: &mut Machine) -> u64;

    /// Records an arrival refused at the connection level (the process is
    /// restarting): dropped immediately, never touches the machine.
    fn refuse_arrival(&mut self, now: SimTime, spec: QuerySpec) -> u64;

    /// Handles the request's deadline firing.
    fn on_timeout(&mut self, now: SimTime, qidx: u64, machine: &mut Machine);

    /// Handles one of this service's threads exiting (tag carries this
    /// slot's service bits).
    fn on_thread_exited(&mut self, now: SimTime, tag: u64, tid: ThreadId, machine: &mut Machine);

    /// Classifies one of this service's threads blocking.
    fn on_thread_blocked(&mut self, now: SimTime, tag: u64, tid: ThreadId) -> BlockedAction;

    /// Fails every unfinished request at once (the process died).
    fn fail_all(&mut self, now: SimTime, machine: &mut Machine);

    /// True when completions are pending.
    fn has_outcomes(&self) -> bool;

    /// Moves accumulated completions into `buf` (appending).
    fn drain_outcomes_into(&mut self, buf: &mut Vec<QueryOutcome>);

    /// Total worker/stage threads spawned (fan-out statistics).
    fn workers_spawned(&self) -> u64;

    /// Requests currently outstanding (admitted plus queued) — the load
    /// signal box-level admission control sheds against.
    fn in_flight(&self) -> u64;

    /// Resilience counters, for services executing a policy internally
    /// (retries, hedges, breakers); `None` for services without one.
    fn resilience_stats(&self) -> Option<&ResilienceStats> {
        None
    }

    /// Next internal timer, if the service keeps its own event source.
    fn next_timer_at(&self) -> Option<SimTime> {
        None
    }

    /// Advances internal state to `now` (services with their own event
    /// sources; a no-op for purely reactive services).
    fn advance_to(&mut self, _now: SimTime, _machine: &mut Machine) {}

    /// Downcast hook for diagnostics that inspect the classic primary.
    fn as_indexserve(&self) -> Option<&IndexServe> {
        None
    }

    /// Deep-copies the service for a box checkpoint. `None` (the default)
    /// marks the service unsnapshotable, which makes its whole box fall
    /// back to conservative synchronization in the cluster — correct, just
    /// slower. Implement as `Some(Box::new(self.clone()))`.
    fn clone_port(&self) -> Option<Box<dyn ServicePort>> {
        None
    }
}

impl ServicePort for IndexServe {
    fn name(&self) -> &str {
        "indexserve"
    }

    fn working_set(&self) -> u64 {
        self.config().working_set()
    }

    fn timeout(&self) -> SimDuration {
        self.config().timeout
    }

    fn log_write_bytes(&self) -> u64 {
        self.config().log_write_bytes
    }

    fn on_arrival(&mut self, now: SimTime, spec: QuerySpec, machine: &mut Machine) -> u64 {
        IndexServe::on_arrival(self, now, spec, machine)
    }

    fn refuse_arrival(&mut self, now: SimTime, spec: QuerySpec) -> u64 {
        IndexServe::refuse_arrival(self, now, spec)
    }

    fn on_timeout(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        IndexServe::on_timeout(self, now, qidx, machine);
    }

    fn on_thread_exited(&mut self, now: SimTime, tag: u64, _tid: ThreadId, machine: &mut Machine) {
        if let Some((stage, qidx, _)) = parse_stage_tag(tag) {
            IndexServe::on_stage_exited(self, now, stage, qidx, machine);
        }
    }

    fn on_thread_blocked(&mut self, _now: SimTime, tag: u64, _tid: ThreadId) -> BlockedAction {
        if parse_stage_tag(tag).is_some() {
            // Primary index read on the exclusive SSD volume.
            BlockedAction::IndexRead {
                bytes: self.config().index_read_bytes,
            }
        } else {
            BlockedAction::Wake
        }
    }

    fn fail_all(&mut self, now: SimTime, machine: &mut Machine) {
        IndexServe::fail_all(self, now, machine);
    }

    fn has_outcomes(&self) -> bool {
        IndexServe::has_outcomes(self)
    }

    fn drain_outcomes_into(&mut self, buf: &mut Vec<QueryOutcome>) {
        IndexServe::drain_outcomes_into(self, buf);
    }

    fn workers_spawned(&self) -> u64 {
        self.workers_spawned
    }

    fn in_flight(&self) -> u64 {
        u64::from(IndexServe::in_flight(self)) + self.admission_queue_len() as u64
    }

    fn as_indexserve(&self) -> Option<&IndexServe> {
        Some(self)
    }

    fn clone_port(&self) -> Option<Box<dyn ServicePort>> {
        Some(Box::new(self.clone()))
    }
}

/// Adapter hosting a [`GraphEngine`] (the `workloads::service_graph`
/// execution engine) as a box service: converts engine completions into
/// [`QueryOutcome`]s stamped with the slot index.
#[derive(Clone)]
pub struct GraphPort {
    name: String,
    engine: GraphEngine,
    service: u8,
    scratch: Vec<GraphOutcome>,
}

impl GraphPort {
    /// Wraps an engine serving as slot `service` under `name`.
    pub fn new(name: String, engine: GraphEngine, service: u8) -> Self {
        GraphPort {
            name,
            engine,
            service,
            scratch: Vec::new(),
        }
    }

    /// The wrapped engine (for inspection).
    pub fn engine(&self) -> &GraphEngine {
        &self.engine
    }
}

impl ServicePort for GraphPort {
    fn name(&self) -> &str {
        &self.name
    }

    fn working_set(&self) -> u64 {
        self.engine.graph().working_set()
    }

    fn timeout(&self) -> SimDuration {
        self.engine.graph().timeout
    }

    fn log_write_bytes(&self) -> u64 {
        0
    }

    fn on_arrival(&mut self, now: SimTime, _spec: QuerySpec, machine: &mut Machine) -> u64 {
        self.engine.on_arrival(now, machine)
    }

    fn refuse_arrival(&mut self, now: SimTime, _spec: QuerySpec) -> u64 {
        self.engine.refuse_arrival(now)
    }

    fn on_timeout(&mut self, now: SimTime, qidx: u64, machine: &mut Machine) {
        self.engine.on_timeout(now, qidx, machine);
    }

    fn on_thread_exited(&mut self, now: SimTime, tag: u64, tid: ThreadId, machine: &mut Machine) {
        self.engine.on_thread_exited(now, tag, tid, machine);
    }

    fn on_thread_blocked(&mut self, _now: SimTime, _tag: u64, _tid: ThreadId) -> BlockedAction {
        // Graph stages are pure compute; any block is spurious.
        BlockedAction::Wake
    }

    fn fail_all(&mut self, now: SimTime, machine: &mut Machine) {
        self.engine.fail_all(now, machine);
    }

    fn has_outcomes(&self) -> bool {
        self.engine.has_outcomes()
    }

    fn drain_outcomes_into(&mut self, buf: &mut Vec<QueryOutcome>) {
        self.scratch.clear();
        self.engine.drain_outcomes_into(&mut self.scratch);
        for o in self.scratch.drain(..) {
            buf.push(QueryOutcome {
                qidx: o.ridx,
                arrival: o.arrival,
                latency: o.latency,
                dropped: o.dropped,
                service: self.service,
            });
        }
    }

    fn workers_spawned(&self) -> u64 {
        self.engine.workers_spawned
    }

    fn in_flight(&self) -> u64 {
        self.engine.in_flight() as u64
    }

    fn resilience_stats(&self) -> Option<&ResilienceStats> {
        Some(self.engine.resilience_stats())
    }

    fn next_timer_at(&self) -> Option<SimTime> {
        self.engine.next_timer_at()
    }

    fn advance_to(&mut self, now: SimTime, machine: &mut Machine) {
        self.engine.advance_to(now, machine);
    }

    fn clone_port(&self) -> Option<Box<dyn ServicePort>> {
        Some(Box::new(self.clone()))
    }
}
