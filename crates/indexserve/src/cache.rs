//! The in-memory index cache model.
//!
//! IndexServe keeps ~110 GB of a 569 GB index slice cached (§5.3) and
//! manages its cache explicitly. With Zipf-popular documents, caching the
//! hottest fraction of the index captures most references; workers touching
//! cached documents rarely go to the SSD.

use serde::{Deserialize, Serialize};

/// Maps a query's document rank to an SSD miss probability.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheModel {
    /// Number of distinct documents in the index slice.
    pub documents: usize,
    /// Fraction of the index that fits in memory.
    pub cached_fraction: f64,
    /// Miss probability per worker round when the query's documents are
    /// hot (metadata still occasionally misses).
    pub hot_miss_prob: f64,
    /// Miss probability per worker round for cold documents.
    pub cold_miss_prob: f64,
}

impl CacheModel {
    /// The paper's setup: 110 GB cache over a 569 GB slice.
    pub fn paper_default(documents: usize) -> Self {
        CacheModel {
            documents,
            cached_fraction: 110.0 / 569.0,
            hot_miss_prob: 0.12,
            cold_miss_prob: 0.55,
        }
    }

    /// Highest document rank that stays resident.
    pub fn cached_ranks(&self) -> u32 {
        (self.documents as f64 * self.cached_fraction).round() as u32
    }

    /// Miss probability for a query on document `rank`.
    pub fn miss_prob(&self, rank: u32) -> f64 {
        if rank <= self.cached_ranks() {
            self.hot_miss_prob
        } else {
            self.cold_miss_prob
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fraction() {
        let c = CacheModel::paper_default(200_000);
        assert_eq!(c.cached_ranks(), 38_664);
        assert!(c.miss_prob(1) < c.miss_prob(100_000));
    }

    #[test]
    fn boundary_rank() {
        let c = CacheModel::paper_default(100);
        let k = c.cached_ranks();
        assert_eq!(c.miss_prob(k), c.hot_miss_prob);
        assert_eq!(c.miss_prob(k + 1), c.cold_miss_prob);
    }
}
