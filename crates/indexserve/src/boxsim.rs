//! The single-machine simulation driver.
//!
//! Composes one production server exactly as §5.2–5.3 describes it: a
//! 48-logical-core machine, a striped SSD volume exclusive to IndexServe, a
//! striped HDD volume shared between primary logging and secondary batch
//! I/O, the IndexServe service, optional secondary tenants (CPU bully, disk
//! bully, HDFS traffic), and the PerfIso controller polling on its own
//! timers.
//!
//! [`BoxSim`] is an embeddable component (the cluster simulator runs 44 of
//! them); [`run_standalone`] wraps it with an open-loop client and produces
//! the per-figure measurements.

use std::sync::Arc;

use perfiso::controller::ControllerStats;
use perfiso::system::{IoLimit, IoTenant, IoTenantStats, SystemInterface};
use perfiso::{PerfIso, PerfIsoConfig};
use qtrace::{OpenLoopClient, QuerySpec, TraceConfig, TraceGenerator};
use simcore::{CoreMask, EventQueue, SimDuration, SimRng, SimTime};
use simcpu::machine::MachineStats;
use simcpu::{
    ArenaStats, CpuRateQuota, JobId, Machine, MachineConfig, MachineOutput, Program, ThreadId,
};
use simdisk::{
    AccessPattern, DiskSim, IoKind, IoPriority, OwnerId, RateLimit, VolumeId, VolumeSpec,
};
use telemetry::recorder::PercentileSummary;
use telemetry::{CpuBreakdown, LatencyRecorder, TenantClass};
use workloads::cpu_bully::{CpuBully, CpuBullyHandle};
use workloads::disk_bully::{DiskBully, DISK_BULLY_TAG_BASE};
use workloads::hdfs::{HdfsCpuProgram, HdfsNode, HDFS_TAG_BASE};
use workloads::BullyIntensity;

use crate::service::{IndexServe, QueryOutcome, ServiceConfig};
use crate::tags::{parse_stage_tag, parse_wake_token, wake_token, FIRE_AND_FORGET};

/// Which secondary tenants run on the box.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SecondaryKind {
    /// A CPU bully with the given intensity.
    pub cpu_bully: Option<BullyIntensity>,
    /// A DiskSPD-style disk bully on the shared HDD volume.
    pub disk_bully: Option<DiskBully>,
    /// HDFS DataNode + client traffic (always present on cluster machines).
    pub hdfs: bool,
}

impl SecondaryKind {
    /// No secondary at all (the standalone baseline).
    pub fn none() -> Self {
        SecondaryKind::default()
    }

    /// Just a CPU bully.
    pub fn cpu(intensity: BullyIntensity) -> Self {
        SecondaryKind {
            cpu_bully: Some(intensity),
            ..Default::default()
        }
    }

    /// Just a disk bully.
    pub fn disk(bully: DiskBully) -> Self {
        SecondaryKind {
            disk_bully: Some(bully),
            ..Default::default()
        }
    }
}

/// Full configuration of one simulated box.
///
/// The service and controller configurations are behind `Arc` so that
/// cluster and fleet drivers can stamp out hundreds of boxes per run
/// without cloning config payloads — only the reference counts move.
#[derive(Clone, Debug)]
pub struct BoxConfig {
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Service-model parameters (shared, immutable).
    pub service: Arc<ServiceConfig>,
    /// Secondary tenants.
    pub secondary: SecondaryKind,
    /// PerfIso configuration (`None` = controller absent; note that
    /// "no isolation" is expressed as a *policy*, not by omitting the
    /// controller, so kill-switch experiments can toggle it).
    pub perfiso: Option<Arc<PerfIsoConfig>>,
    /// RNG seed.
    pub seed: u64,
}

impl BoxConfig {
    /// The paper's server with the given secondary and PerfIso config.
    pub fn paper_box(secondary: SecondaryKind, perfiso: Option<PerfIsoConfig>, seed: u64) -> Self {
        BoxConfig {
            machine: MachineConfig::paper_server(),
            service: Arc::new(ServiceConfig::default()),
            secondary,
            perfiso: perfiso.map(Arc::new),
            seed,
        }
    }
}

/// Events a [`BoxSim`] reports to its embedder.
#[derive(Clone, Copy, Debug)]
pub enum BoxEvent {
    /// A query finished (successfully or dropped).
    QueryDone(QueryOutcome),
    /// An auxiliary primary thread (see [`BoxSim::spawn_primary_aux`])
    /// finished; carries the user value from [`crate::tags::aux_tag`].
    AuxDone(u64),
}

#[derive(Debug)]
enum AppEvent {
    Timeout(u64),
    CpuPoll,
    IoPoll,
    MemPoll,
    HdfsReplication,
    HdfsClient,
}

/// Service names (as configured through `PerfIsoConfig::tenant_limits`)
/// of the batch I/O tenants every box registers, in [`IoTenant`] index
/// order. Spec-level validation rejects limits for any other name, so a
/// typo'd service cannot silently run uncapped.
pub const IO_TENANT_SERVICES: [&str; 3] = ["disk-bully", "hdfs-replication", "hdfs-client"];

/// I/O owner table for the shared HDD volume.
#[derive(Clone, Copy, Debug)]
struct Owners {
    primary_log: OwnerId,
    disk_bully: OwnerId,
    hdfs_repl: OwnerId,
    hdfs_client: OwnerId,
}

/// One simulated production server.
pub struct BoxSim {
    cfg: BoxConfig,
    machine: Machine,
    disk: DiskSim,
    ssd: VolumeId,
    hdd: VolumeId,
    service: IndexServe,
    primary_job: JobId,
    secondary_job: JobId,
    owners: Owners,
    controller: Option<PerfIso>,
    app: EventQueue<AppEvent>,
    bully: Option<CpuBullyHandle>,
    hdfs_repl: HdfsNode,
    hdfs_client: HdfsNode,
    rng: SimRng,
    events: Vec<BoxEvent>,
    now: SimTime,
    secondary_killed: bool,
    /// Tracks secondary threads for kill-on-memory-pressure.
    secondary_tids: Vec<ThreadId>,
    /// Reusable buffers for the settle loop (machine outputs, disk
    /// completions, service outcomes). Kept across the whole run so the
    /// per-step event routing allocates nothing in steady state.
    scratch_outputs: Vec<MachineOutput>,
    scratch_completions: Vec<simdisk::IoCompletion>,
    scratch_outcomes: Vec<QueryOutcome>,
}

impl BoxSim {
    /// Builds the box, spawns secondaries, installs PerfIso, and arms the
    /// poll timers.
    pub fn new(cfg: BoxConfig) -> Self {
        let mut machine = Machine::with_seed(cfg.machine, cfg.seed);
        let mut disk = DiskSim::new(cfg.seed ^ 0xD15C);
        let ssd = disk.add_volume(VolumeSpec::paper_ssd_volume());
        let hdd = disk.add_volume(VolumeSpec::paper_hdd_volume());
        let total = CoreMask::all(cfg.machine.cores);
        let primary_job = machine.create_job(TenantClass::Primary, total);
        let secondary_job = machine.create_job(TenantClass::Secondary, total);
        // IndexServe's fixed working set: index cache + process overhead.
        machine.set_job_memory(primary_job, 110 * (1 << 30) + (6 << 30));

        let owners = Owners {
            primary_log: disk.register_owner(IoPriority::HIGH),
            disk_bully: disk.register_owner(IoPriority::LOW),
            hdfs_repl: disk.register_owner(IoPriority::LOW),
            hdfs_client: disk.register_owner(IoPriority::LOW),
        };
        let service = IndexServe::new(cfg.service.clone(), primary_job, cfg.seed ^ 0x5E47);
        let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0xB0);
        let mut app = EventQueue::with_capacity(256);
        let mut bully = None;
        let mut secondary_tids = Vec::new();
        let mut secondary_killed = false;
        let hdfs_repl = HdfsNode::replication();
        let hdfs_client = HdfsNode::client();

        // Secondary tenants.
        if let Some(intensity) = cfg.secondary.cpu_bully {
            let b = CpuBully::new(intensity, cfg.machine.cores);
            let handle = b.spawn(&mut machine, secondary_job, SimTime::ZERO);
            secondary_tids.extend(handle.tids.iter().copied());
            bully = Some(handle);
            machine.set_job_memory(secondary_job, 2 << 30);
        }
        if let Some(db) = &cfg.secondary.disk_bully {
            for i in 0..db.depth {
                let tid = machine.spawn_program(
                    SimTime::ZERO,
                    secondary_job,
                    Program::from(db.worker_program(i)),
                    DISK_BULLY_TAG_BASE + i as u64,
                );
                secondary_tids.push(tid);
            }
        }
        if cfg.secondary.hdfs {
            // Daemon CPU footprint: two duty-cycle threads ≈ a few percent.
            for i in 0..2 {
                let tid = machine.spawn_program(
                    SimTime::ZERO,
                    secondary_job,
                    Program::from(HdfsCpuProgram::new(0.6)),
                    HDFS_TAG_BASE + i,
                );
                secondary_tids.push(tid);
            }
            let (t1, _) = hdfs_repl.next_submission(SimTime::ZERO, &mut rng);
            let (t2, _) = hdfs_client.next_submission(SimTime::ZERO, &mut rng);
            app.push(t1, AppEvent::HdfsReplication);
            app.push(t2, AppEvent::HdfsClient);
        }

        // PerfIso.
        let mut controller = None;
        if let Some(pcfg) = &cfg.perfiso {
            let mut ctl = PerfIso::new(pcfg.as_ref().clone());
            {
                let mut sys = SysAdapter {
                    now: SimTime::ZERO,
                    machine: &mut machine,
                    disk: &mut disk,
                    hdd,
                    secondary_job,
                    owners,
                    secondary_tids: &mut secondary_tids,
                    secondary_killed: &mut secondary_killed,
                };
                ctl.install(&mut sys);
                // Register the batch I/O tenants for DWRR + static caps.
                // Caps come from the configuration's per-service
                // `tenant_limits` (how production configures them through
                // Autopilot, §5.3) — e.g. `PerfIsoConfig::paper_cluster`
                // caps "hdfs-replication" at 20 MB/s and "hdfs-client" at
                // 60 MB/s; an absent entry means uncapped.
                let limit_for = |service: &str| -> Option<IoLimit> {
                    pcfg.tenant_limits
                        .iter()
                        .find(|t| t.service == service)
                        .map(|t| t.limit)
                };
                ctl.register_io_tenant(
                    &mut sys,
                    IoTenant(0),
                    perfiso::TenantIoConfig {
                        weight: 1.0,
                        min_iops: 50.0,
                    },
                    limit_for(IO_TENANT_SERVICES[0]),
                    IoPriority::LOW.0,
                );
                ctl.register_io_tenant(
                    &mut sys,
                    IoTenant(1),
                    perfiso::TenantIoConfig {
                        weight: 1.0,
                        min_iops: 20.0,
                    },
                    limit_for(IO_TENANT_SERVICES[1]),
                    IoPriority::LOW.0,
                );
                ctl.register_io_tenant(
                    &mut sys,
                    IoTenant(2),
                    perfiso::TenantIoConfig {
                        weight: 2.0,
                        min_iops: 40.0,
                    },
                    limit_for(IO_TENANT_SERVICES[2]),
                    IoPriority::LOW.0,
                );
            }
            app.push(SimTime::ZERO + pcfg.cpu_poll_interval, AppEvent::CpuPoll);
            app.push(SimTime::ZERO + pcfg.io_poll_interval, AppEvent::IoPoll);
            app.push(SimTime::ZERO + pcfg.memory_poll_interval, AppEvent::MemPoll);
            controller = Some(ctl);
        }

        // Every field is now final; build the struct exactly once.
        BoxSim {
            cfg,
            machine,
            disk,
            ssd,
            hdd,
            service,
            primary_job,
            secondary_job,
            owners,
            controller,
            app,
            bully,
            hdfs_repl,
            hdfs_client,
            rng,
            events: Vec::new(),
            now: SimTime::ZERO,
            secondary_killed,
            secondary_tids,
            scratch_outputs: Vec::with_capacity(64),
            scratch_completions: Vec::with_capacity(64),
            scratch_outcomes: Vec::with_capacity(64),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The service instance (for inspection).
    pub fn service(&self) -> &IndexServe {
        &self.service
    }

    /// The primary tenant's job id on the machine.
    pub fn primary_job(&self) -> JobId {
        self.primary_job
    }

    /// The secondary tenants' job id on the machine.
    pub fn secondary_job(&self) -> JobId {
        self.secondary_job
    }

    /// Progress handle of the colocated CPU bully, when one is configured
    /// (for inspecting how much best-effort work got through).
    pub fn cpu_bully(&self) -> Option<&CpuBullyHandle> {
        self.bully.as_ref()
    }

    /// CPU breakdown so far (including in-flight slices).
    pub fn breakdown(&self) -> CpuBreakdown {
        self.machine.breakdown()
    }

    /// Secondary job CPU time (covers every secondary workload).
    pub fn secondary_cpu_time(&self) -> SimDuration {
        self.machine.job_cpu_time(self.secondary_job)
    }

    /// Machine scheduler counters.
    pub fn machine_stats(&self) -> MachineStats {
        self.machine.stats()
    }

    /// Thread-program arena occupancy and recycling counters.
    pub fn arena_stats(&self) -> ArenaStats {
        self.machine.arena_stats()
    }

    /// Controller counters, when PerfIso runs.
    pub fn controller_stats(&self) -> Option<ControllerStats> {
        self.controller.as_ref().map(|c| c.stats)
    }

    /// Issues a runtime command to the controller (kill switch etc.).
    ///
    /// # Panics
    ///
    /// Panics if no controller is installed.
    pub fn controller_command(&mut self, cmd: perfiso::Command) {
        let mut ctl = self.controller.take().expect("no controller installed");
        {
            let mut sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            ctl.command(cmd, &mut sys);
        }
        self.controller = Some(ctl);
    }

    /// Whether the memory watchdog killed the secondary.
    pub fn secondary_killed(&self) -> bool {
        self.secondary_killed
    }

    /// Snapshots the controller's dynamic state for crash recovery (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if no controller is installed.
    pub fn controller_snapshot(&mut self) -> perfiso::recovery::ControllerState {
        let ctl = self.controller.take().expect("no controller installed");
        let state = {
            let sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            ctl.snapshot(&sys)
        };
        self.controller = Some(ctl);
        state
    }

    /// Replaces the controller with a freshly constructed one (simulating a
    /// crash-restart under Autopilot) and restores the given dynamic state.
    ///
    /// # Panics
    ///
    /// Panics if the box was built without a PerfIso configuration.
    pub fn controller_restart_with(&mut self, state: &perfiso::recovery::ControllerState) {
        let pcfg = self.cfg.perfiso.clone().expect("no PerfIso configuration");
        let mut ctl = PerfIso::new(pcfg.as_ref().clone());
        {
            let mut sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            ctl.install(&mut sys);
            ctl.restore(state, &mut sys);
        }
        self.controller = Some(ctl);
    }

    /// Mutable access to the machine plus the secondary job id, for
    /// spawning custom secondary workloads (e.g. the fleet experiment's ML
    /// trainer).
    pub fn secondary_spawn_access(&mut self) -> (&mut Machine, JobId) {
        (&mut self.machine, self.secondary_job)
    }

    /// Registers externally spawned secondary threads so kill actions
    /// (memory watchdog) cover them.
    pub fn track_secondary_threads(&mut self, tids: &[ThreadId]) {
        self.secondary_tids.extend_from_slice(tids);
    }

    /// Declares the secondary job's memory footprint (for watchdog tests).
    pub fn set_secondary_memory(&mut self, bytes: u64) {
        self.machine.set_job_memory(self.secondary_job, bytes);
    }

    /// Injects a query arriving now; schedules its deadline. Returns the
    /// box-local query index echoed in [`BoxEvent::QueryDone`].
    pub fn inject_query(&mut self, now: SimTime, spec: QuerySpec) -> u64 {
        self.advance_to(now);
        let qidx = self.service.on_arrival(now, spec, &mut self.machine);
        self.app
            .push(now + self.cfg.service.timeout, AppEvent::Timeout(qidx));
        self.settle();
        qidx
    }

    /// Spawns an auxiliary primary-tenant compute thread (MLA aggregation
    /// work); [`BoxEvent::AuxDone`] fires with `user` when it completes.
    ///
    /// The thread contends for CPU exactly like IndexServe's own threads,
    /// so colocated bullies degrade aggregation latency too — the effect
    /// the paper measures at the MLA layer (Fig 9).
    pub fn spawn_primary_aux(&mut self, now: SimTime, compute: SimDuration, user: u64) {
        self.advance_to(now);
        self.machine.spawn_program(
            now,
            self.primary_job,
            Program::compute_once(compute),
            crate::tags::aux_tag(user),
        );
        self.settle();
    }

    /// Takes accumulated events.
    ///
    /// Allocation-free callers should prefer [`BoxSim::drain_events_into`].
    pub fn drain_events(&mut self) -> Vec<BoxEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves accumulated events into `buf` (appending), keeping the
    /// internal buffer's capacity for reuse on the hot path.
    pub fn drain_events_into(&mut self, buf: &mut Vec<BoxEvent>) {
        buf.append(&mut self.events);
    }

    /// True when events are pending.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Time of the next internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for c in [
            self.machine.next_timer_at(),
            self.disk.next_timer_at(),
            self.app.peek_time(),
        ]
        .into_iter()
        .flatten()
        {
            next = Some(next.map_or(c, |n: SimTime| n.min(c)));
        }
        next
    }

    /// Advances virtual time to `t`, processing everything due.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time went backwards");
        while let Some(next) = self.next_event_time().filter(|&n| n <= t) {
            self.now = next;
            self.machine.advance_to(next);
            self.disk.advance_to(next);
            while let Some((_, ev)) = self.app.pop_before(next) {
                self.handle_app_event(ev);
            }
            self.settle();
        }
        self.now = t;
        self.machine.advance_to(t);
        self.disk.advance_to(t);
        self.settle();
    }

    /// Routes machine outputs and disk completions until quiescent at the
    /// current instant.
    ///
    /// Runs entirely on reusable scratch buffers: in steady state one
    /// settle pass allocates nothing, which matters because this is the
    /// innermost loop of every experiment in the workspace.
    fn settle(&mut self) {
        loop {
            if !self.machine.has_outputs() && !self.disk.has_completions() {
                break;
            }
            let mut outs = std::mem::take(&mut self.scratch_outputs);
            let mut comps = std::mem::take(&mut self.scratch_completions);
            outs.clear();
            comps.clear();
            self.machine.drain_outputs_into(&mut outs);
            self.disk.drain_completions_into(&mut comps);
            for o in outs.drain(..) {
                self.route_machine_output(o);
            }
            for c in comps.drain(..) {
                if let Some(tid) = parse_wake_token(c.token) {
                    self.machine.wake(self.now, tid);
                }
            }
            self.scratch_outputs = outs;
            self.scratch_completions = comps;
            // Collect service outcomes produced by routing.
            if self.service.has_outcomes() {
                let mut outcomes = std::mem::take(&mut self.scratch_outcomes);
                outcomes.clear();
                self.service.drain_outcomes_into(&mut outcomes);
                for outcome in outcomes.drain(..) {
                    if !outcome.dropped {
                        // Asynchronous query log on the shared HDD volume.
                        self.disk.submit(
                            self.now,
                            self.hdd,
                            self.owners.primary_log,
                            IoKind::Write,
                            self.cfg.service.log_write_bytes,
                            AccessPattern::Sequential,
                            FIRE_AND_FORGET,
                        );
                    }
                    self.events.push(BoxEvent::QueryDone(outcome));
                }
                self.scratch_outcomes = outcomes;
            }
        }
    }

    fn route_machine_output(&mut self, out: MachineOutput) {
        match out {
            MachineOutput::ThreadBlocked { tid, tag, .. } => {
                if parse_stage_tag(tag).is_some() {
                    // Primary index read on the exclusive SSD volume.
                    self.disk.submit(
                        self.now,
                        self.ssd,
                        self.owners.primary_log, // same process identity
                        IoKind::Read,
                        self.cfg.service.index_read_bytes,
                        AccessPattern::Random,
                        wake_token(tid),
                    );
                } else if (DISK_BULLY_TAG_BASE..DISK_BULLY_TAG_BASE + (1 << 16)).contains(&tag) {
                    let op = self
                        .cfg
                        .secondary
                        .disk_bully
                        .as_ref()
                        .expect("disk bully configured")
                        .sample_op(&mut self.rng);
                    self.disk.submit(
                        self.now,
                        self.hdd,
                        self.owners.disk_bully,
                        op.kind,
                        op.bytes,
                        op.access,
                        wake_token(tid),
                    );
                } else {
                    // Unknown blocker: wake immediately rather than hang.
                    self.machine.wake(self.now, tid);
                }
            }
            MachineOutput::ThreadExited { tag, .. } => {
                if let Some((stage, qidx, _)) = parse_stage_tag(tag) {
                    self.service
                        .on_stage_exited(self.now, stage, qidx, &mut self.machine);
                } else if let Some(user) = crate::tags::parse_aux_tag(tag) {
                    self.events.push(BoxEvent::AuxDone(user));
                }
                // Secondary exits need no routing.
            }
        }
    }

    fn handle_app_event(&mut self, ev: AppEvent) {
        match ev {
            AppEvent::Timeout(qidx) => {
                self.service.on_timeout(self.now, qidx, &mut self.machine);
            }
            AppEvent::CpuPoll => {
                self.with_controller(|ctl, sys, now| {
                    ctl.poll_cpu(now, sys);
                });
                if let Some(p) = self.cfg.perfiso.as_ref() {
                    self.app
                        .push(self.now + p.cpu_poll_interval, AppEvent::CpuPoll);
                }
            }
            AppEvent::IoPoll => {
                self.with_controller(|ctl, sys, now| {
                    ctl.poll_io(now, sys);
                });
                if let Some(p) = self.cfg.perfiso.as_ref() {
                    self.app
                        .push(self.now + p.io_poll_interval, AppEvent::IoPoll);
                }
            }
            AppEvent::MemPoll => {
                self.with_controller(|ctl, sys, now| {
                    ctl.poll_memory(now, sys);
                });
                if let Some(p) = self.cfg.perfiso.as_ref() {
                    self.app
                        .push(self.now + p.memory_poll_interval, AppEvent::MemPoll);
                }
            }
            AppEvent::HdfsReplication => {
                let (next, op) = self.hdfs_repl.next_submission(self.now, &mut self.rng);
                self.disk.submit(
                    self.now,
                    self.hdd,
                    self.owners.hdfs_repl,
                    op.kind,
                    op.bytes,
                    op.access,
                    FIRE_AND_FORGET,
                );
                self.app.push(next, AppEvent::HdfsReplication);
            }
            AppEvent::HdfsClient => {
                let (next, op) = self.hdfs_client.next_submission(self.now, &mut self.rng);
                self.disk.submit(
                    self.now,
                    self.hdd,
                    self.owners.hdfs_client,
                    op.kind,
                    op.bytes,
                    op.access,
                    FIRE_AND_FORGET,
                );
                self.app.push(next, AppEvent::HdfsClient);
            }
        }
    }

    fn with_controller(&mut self, f: impl FnOnce(&mut PerfIso, &mut SysAdapter<'_>, SimTime)) {
        let Some(mut ctl) = self.controller.take() else {
            return;
        };
        {
            let mut sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            f(&mut ctl, &mut sys, self.now);
        }
        self.controller = Some(ctl);
    }
}

/// The [`SystemInterface`] over a simulated box.
struct SysAdapter<'a> {
    now: SimTime,
    machine: &'a mut Machine,
    disk: &'a mut DiskSim,
    hdd: VolumeId,
    secondary_job: JobId,
    owners: Owners,
    secondary_tids: &'a mut Vec<ThreadId>,
    secondary_killed: &'a mut bool,
}

impl SysAdapter<'_> {
    fn owner_of(&self, tenant: IoTenant) -> OwnerId {
        match tenant.0 {
            0 => self.owners.disk_bully,
            1 => self.owners.hdfs_repl,
            _ => self.owners.hdfs_client,
        }
    }
}

impl SystemInterface for SysAdapter<'_> {
    fn total_cores(&self) -> u32 {
        self.machine.config().cores
    }

    fn idle_cores(&mut self) -> CoreMask {
        self.machine.idle_core_mask()
    }

    fn set_secondary_affinity(&mut self, mask: CoreMask) {
        self.machine
            .set_job_affinity(self.now, self.secondary_job, mask);
    }

    fn secondary_affinity(&self) -> CoreMask {
        self.machine.job_affinity(self.secondary_job)
    }

    fn set_secondary_cycle_cap(&mut self, cap: Option<f64>) {
        let quota = cap.map(|c| CpuRateQuota::percent(c * 100.0));
        self.machine
            .set_job_quota(self.now, self.secondary_job, quota);
    }

    fn memory_total(&self) -> u64 {
        self.machine.memory_total()
    }

    fn memory_used(&self) -> u64 {
        self.machine.memory_used()
    }

    fn secondary_memory_used(&self) -> u64 {
        self.machine.job_memory(self.secondary_job)
    }

    fn kill_secondary_processes(&mut self) {
        for tid in self.secondary_tids.drain(..) {
            self.machine.kill_thread(self.now, tid);
        }
        self.machine.set_job_memory(self.secondary_job, 0);
        *self.secondary_killed = true;
    }

    fn io_tenants(&self) -> Vec<IoTenant> {
        vec![IoTenant(0), IoTenant(1), IoTenant(2)]
    }

    fn io_stats(&mut self, tenant: IoTenant) -> IoTenantStats {
        let owner = self.owner_of(tenant);
        let s = self.disk.owner_stats(self.now, owner);
        IoTenantStats {
            window_iops: s.window_iops,
            window_bytes_per_sec: s.window_bytes_per_sec,
        }
    }

    fn shared_volume_iops(&mut self) -> f64 {
        self.disk.volume_iops(self.now, self.hdd)
    }

    fn set_io_priority(&mut self, tenant: IoTenant, priority: u8) {
        let owner = self.owner_of(tenant);
        self.disk
            .set_owner_priority(owner, IoPriority(priority.min(7)));
    }

    fn io_priority(&self, tenant: IoTenant) -> u8 {
        self.disk.owner_priority(self.owner_of(tenant)).0
    }

    fn set_io_limit(&mut self, tenant: IoTenant, limit: Option<IoLimit>) {
        let owner = self.owner_of(tenant);
        self.disk.set_owner_limit(
            self.now,
            owner,
            limit.map(|l| RateLimit {
                bytes_per_sec: l.bytes_per_sec,
                iops: l.iops,
            }),
        );
    }

    fn set_egress_low_rate(&mut self, _rate: Option<u64>) {
        // Single-box runs have no network; the cluster simulator applies
        // egress caps on its NetSim.
    }
}

/// The replay plan for a standalone run.
#[derive(Clone, Debug)]
pub struct RunPlan {
    /// Offered load in queries/second.
    pub qps: f64,
    /// Warm-up period excluded from statistics.
    pub warmup: SimDuration,
    /// Measured period.
    pub measure: SimDuration,
    /// Trace-generation parameters (the query count is derived).
    pub trace: TraceConfig,
}

impl RunPlan {
    /// A plan replaying at `qps` for the given measured duration after a
    /// proportional warm-up.
    pub fn at_qps(qps: f64, measure: SimDuration) -> Self {
        RunPlan {
            qps,
            warmup: SimDuration::from_millis(500),
            measure,
            trace: TraceConfig::default(),
        }
    }
}

/// What a standalone run measured (one bar group of a paper figure).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BoxReport {
    /// Offered load.
    pub qps: f64,
    /// Completed-query latency statistics (measured window only).
    pub latency: PercentileSummary,
    /// CPU breakdown over the measured window.
    pub breakdown: CpuBreakdown,
    /// Secondary CPU time over the measured window — the "absolute
    /// progress" of the batch job (a pure-compute bully's progress is
    /// proportional to its CPU time).
    pub secondary_cpu: SimDuration,
    /// Fan-out workers spawned per query on average.
    pub avg_fanout: f64,
    /// Machine scheduler counters (whole run).
    pub machine: MachineStats,
    /// Controller counters, when PerfIso ran.
    pub controller: Option<ControllerStats>,
}

impl BoxReport {
    /// Drop ratio over the measured window.
    pub fn drop_ratio(&self) -> f64 {
        self.latency.drop_ratio()
    }
}

/// Runs one standalone single-box experiment.
pub fn run_standalone(cfg: BoxConfig, plan: &RunPlan) -> BoxReport {
    let total = plan.warmup + plan.measure;
    let n_queries = (plan.qps * total.as_secs_f64() * 1.05) as usize + 16;
    let trace = TraceGenerator::new(TraceConfig {
        queries: n_queries,
        ..plan.trace.clone()
    })
    .generate(cfg.seed ^ 0x7ACE);
    let mut client = OpenLoopClient::new(trace, plan.qps, cfg.seed ^ 0xC1);
    let mut sim = BoxSim::new(cfg);

    let warmup_end = SimTime::ZERO + plan.warmup;
    let end = SimTime::ZERO + total;
    let mut recorder = LatencyRecorder::new();
    let mut warm_snapshot: Option<(CpuBreakdown, SimDuration)> = None;
    let mut queries_measured = 0u64;
    let mut workers_at_warm = 0u64;

    let mut events: Vec<BoxEvent> = Vec::with_capacity(64);
    let mut record_events = |sim: &mut BoxSim, recorder: &mut LatencyRecorder| {
        sim.drain_events_into(&mut events);
        for ev in events.drain(..) {
            if let BoxEvent::QueryDone(out) = ev {
                if out.arrival >= warmup_end {
                    if out.dropped {
                        recorder.record_dropped();
                    } else {
                        recorder.record(out.latency);
                    }
                }
            }
        }
    };

    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        if warm_snapshot.is_none() && at >= warmup_end {
            sim.advance_to(warmup_end);
            record_events(&mut sim, &mut recorder);
            warm_snapshot = Some((sim.breakdown(), sim.secondary_cpu_time()));
            workers_at_warm = sim.service().workers_spawned;
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
        record_events(&mut sim, &mut recorder);
        if at >= warmup_end {
            queries_measured += 1;
        }
    }
    if warm_snapshot.is_none() {
        sim.advance_to(warmup_end);
        record_events(&mut sim, &mut recorder);
        warm_snapshot = Some((sim.breakdown(), sim.secondary_cpu_time()));
        workers_at_warm = sim.service().workers_spawned;
    }
    // Let the tail drain one timeout beyond the end so nothing hangs.
    sim.advance_to(end + sim.cfg.service.timeout);
    record_events(&mut sim, &mut recorder);

    let (warm_bd, warm_sec_cpu) = warm_snapshot.expect("snapshot taken");
    let final_bd = sim.breakdown();
    BoxReport {
        qps: plan.qps,
        latency: recorder.summary(),
        breakdown: final_bd.since(&warm_bd),
        secondary_cpu: sim.secondary_cpu_time().saturating_sub(warm_sec_cpu),
        avg_fanout: if queries_measured == 0 {
            0.0
        } else {
            (sim.service().workers_spawned - workers_at_warm) as f64 / queries_measured as f64
        },
        machine: sim.machine_stats(),
        controller: sim.controller_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_plan(qps: f64) -> RunPlan {
        RunPlan {
            qps,
            warmup: SimDuration::from_millis(300),
            measure: SimDuration::from_millis(1_500),
            trace: TraceConfig::default(),
        }
    }

    #[test]
    fn standalone_box_completes_queries() {
        let cfg = BoxConfig::paper_box(SecondaryKind::none(), None, 42);
        let r = run_standalone(cfg, &quick_plan(2_000.0));
        assert!(r.latency.count > 2_000, "completed {}", r.latency.count);
        assert!(r.drop_ratio() < 0.005, "drops {}", r.drop_ratio());
        // Standalone at 2000 QPS: mostly idle machine.
        assert!(
            r.breakdown.idle_fraction() > 0.6,
            "{}",
            r.breakdown.to_percent_string()
        );
        assert!(r.latency.p50 > SimDuration::from_micros(500));
        assert!(r.latency.p50 < SimDuration::from_millis(10));
    }

    #[test]
    fn bully_without_isolation_hurts_tail() {
        let base = run_standalone(
            BoxConfig::paper_box(SecondaryKind::none(), None, 7),
            &quick_plan(2_000.0),
        );
        let colo = run_standalone(
            BoxConfig::paper_box(SecondaryKind::cpu(BullyIntensity::High), None, 7),
            &quick_plan(2_000.0),
        );
        assert!(
            colo.latency.p99 > base.latency.p99 + SimDuration::from_millis(3),
            "colocated p99 {} vs standalone {}",
            colo.latency.p99,
            base.latency.p99
        );
        assert!(colo.secondary_cpu > SimDuration::ZERO);
    }

    #[test]
    fn blind_isolation_protects_tail() {
        let base = run_standalone(
            BoxConfig::paper_box(SecondaryKind::none(), None, 9),
            &quick_plan(2_000.0),
        );
        let iso = run_standalone(
            BoxConfig::paper_box(
                SecondaryKind::cpu(BullyIntensity::High),
                Some(PerfIsoConfig::default()),
                9,
            ),
            &quick_plan(2_000.0),
        );
        let degradation = iso.latency.p99.saturating_sub(base.latency.p99);
        assert!(
            degradation < SimDuration::from_millis(2),
            "blind isolation degradation {degradation} (iso {} base {})",
            iso.latency.p99,
            base.latency.p99
        );
        // And the secondary still makes progress: with B=8 on a mostly-idle
        // 48-core machine it should soak tens of core-seconds per second.
        assert!(
            iso.secondary_cpu > SimDuration::from_secs(10),
            "secondary cpu {}",
            iso.secondary_cpu
        );
    }

    #[test]
    fn disk_bully_box_runs() {
        let cfg = BoxConfig::paper_box(
            SecondaryKind::disk(DiskBully::default()),
            Some(PerfIsoConfig::paper_cluster()),
            11,
        );
        let r = run_standalone(cfg, &quick_plan(1_000.0));
        assert!(r.latency.count > 1_000);
        assert!(r.drop_ratio() < 0.01);
    }
}
