//! The single-machine simulation driver.
//!
//! Composes one production server exactly as §5.2–5.3 describes it: a
//! 48-logical-core machine, a striped SSD volume exclusive to IndexServe, a
//! striped HDD volume shared between primary logging and secondary batch
//! I/O, the IndexServe service, optional secondary tenants (CPU bully, disk
//! bully, HDFS traffic), and the PerfIso controller polling on its own
//! timers.
//!
//! [`BoxSim`] is an embeddable component (the cluster simulator runs 44 of
//! them); [`run_standalone`] wraps it with an open-loop client and produces
//! the per-figure measurements.

use std::sync::Arc;

use autopilot::{
    ConfigStore, RestartDecision, ServiceKind, ServiceManager, ServiceRegistry, ServiceState,
};
use perfiso::controller::ControllerStats;
use perfiso::recovery::ControllerState;
use perfiso::system::{IoLimit, IoTenant, IoTenantStats, SystemInterface};
use perfiso::{PerfIso, PerfIsoConfig};
use qtrace::{OpenLoopClient, QuerySpec, TraceConfig, TraceGenerator};
use simcore::{CoreMask, EventQueue, EventQueueState, SimDuration, SimRng, SimTime, Snapshot};
use simcpu::machine::MachineStats;
use simcpu::{
    ArenaStats, CpuRateQuota, JobId, Machine, MachineConfig, MachineOutput, MachineState, Program,
    ThreadId,
};
use simdisk::{
    AccessPattern, DiskSim, DiskSimState, IoKind, IoPriority, OwnerId, RateLimit, VolumeId,
    VolumeSpec,
};
use telemetry::recorder::PercentileSummary;
use telemetry::{
    CpuBreakdown, LatencyRecorder, ResilienceStats, SketchSummary, TelemetryMode, TenantClass,
};
use workloads::cpu_bully::{CpuBully, CpuBullyHandle};
use workloads::disk_bully::{DiskBully, DISK_BULLY_TAG_BASE};
use workloads::hdfs::{HdfsCpuProgram, HdfsNode, HDFS_TAG_BASE};
use workloads::service_graph::{GraphEngine, GraphWorkload};
use workloads::{BullyIntensity, ResiliencePolicy};

use crate::chaos::{FaultPlan, FaultRecord, PlannedFaultKind};
use crate::port::{BlockedAction, GraphPort, ServicePort};
use crate::service::{IndexServe, QueryOutcome, ServiceConfig};
use crate::tags::{
    parse_wake_token, service_bits, tag_service, wake_token, FIRE_AND_FORGET, MAX_SERVICES,
    PRIMARY_BIT,
};

/// Which secondary tenants run on the box.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SecondaryKind {
    /// A CPU bully with the given intensity.
    pub cpu_bully: Option<BullyIntensity>,
    /// A DiskSPD-style disk bully on the shared HDD volume.
    pub disk_bully: Option<DiskBully>,
    /// HDFS DataNode + client traffic (always present on cluster machines).
    pub hdfs: bool,
}

impl SecondaryKind {
    /// No secondary at all (the standalone baseline).
    pub fn none() -> Self {
        SecondaryKind::default()
    }

    /// Just a CPU bully.
    pub fn cpu(intensity: BullyIntensity) -> Self {
        SecondaryKind {
            cpu_bully: Some(intensity),
            ..Default::default()
        }
    }

    /// Just a disk bully.
    pub fn disk(bully: DiskBully) -> Self {
        SecondaryKind {
            disk_bully: Some(bully),
            ..Default::default()
        }
    }
}

/// One service hosted on a box (the multi-service roster entry).
///
/// Configs sit behind `Arc` for the same stamp-out-cheaply reason as
/// [`BoxConfig::service`].
#[derive(Clone, Debug)]
pub enum HostedSpec {
    /// A classic IndexServe primary under a per-slot display name.
    IndexServe {
        /// Display name (per-service report rows).
        name: String,
        /// Service-model parameters.
        service: Arc<ServiceConfig>,
    },
    /// A microservice-graph workload executed by
    /// [`workloads::service_graph::GraphEngine`].
    Graph {
        /// Display name (per-service report rows).
        name: String,
        /// The validated stage DAG.
        graph: Arc<GraphWorkload>,
    },
}

impl HostedSpec {
    /// Display name of the hosted service.
    pub fn name(&self) -> &str {
        match self {
            HostedSpec::IndexServe { name, .. } | HostedSpec::Graph { name, .. } => name,
        }
    }

    /// Declared working-set bytes, registered against the service's job.
    pub fn working_set(&self) -> u64 {
        match self {
            HostedSpec::IndexServe { service, .. } => service.working_set(),
            HostedSpec::Graph { graph, .. } => graph.working_set(),
        }
    }
}

/// Full configuration of one simulated box.
///
/// The service and controller configurations are behind `Arc` so that
/// cluster and fleet drivers can stamp out hundreds of boxes per run
/// without cloning config payloads — only the reference counts move.
#[derive(Clone, Debug)]
pub struct BoxConfig {
    /// Machine parameters.
    pub machine: MachineConfig,
    /// Service-model parameters (shared, immutable). Used by the default
    /// single-service roster; ignored when `hosted` is non-empty.
    pub service: Arc<ServiceConfig>,
    /// The service roster. Empty (the default everywhere predating
    /// multi-service boxes) hosts exactly one IndexServe primary built
    /// from `service` — bit-identical to the pre-roster behaviour.
    /// Non-empty hosts one primary job per entry, capped at
    /// [`MAX_SERVICES`].
    pub hosted: Vec<HostedSpec>,
    /// Secondary tenants.
    pub secondary: SecondaryKind,
    /// PerfIso configuration (`None` = controller absent; note that
    /// "no isolation" is expressed as a *policy*, not by omitting the
    /// controller, so kill-switch experiments can toggle it).
    pub perfiso: Option<Arc<PerfIsoConfig>>,
    /// Injected-fault timeline (`None` = steady state). Shared so cluster
    /// drivers can stamp the same plan across boxes.
    pub fault: Option<Arc<FaultPlan>>,
    /// Latency-recording backend. `Exact` (the default) keeps every
    /// sample; `Sketch` bounds memory for production-scale runs and adds
    /// a `latency_sketch` summary (with its error bound) to the report.
    pub telemetry: TelemetryMode,
    /// Overload-resilience policy (`None` = no admission control, no
    /// retries/hedging, no breakers — bit-identical to the pre-resilience
    /// box). Shared so cluster drivers stamp one policy across boxes.
    pub resilience: Option<Arc<ResiliencePolicy>>,
    /// RNG seed.
    pub seed: u64,
}

impl BoxConfig {
    /// The paper's server with the given secondary and PerfIso config.
    pub fn paper_box(secondary: SecondaryKind, perfiso: Option<PerfIsoConfig>, seed: u64) -> Self {
        BoxConfig {
            machine: MachineConfig::paper_server(),
            service: Arc::new(ServiceConfig::default()),
            hosted: Vec::new(),
            secondary,
            perfiso: perfiso.map(Arc::new),
            fault: None,
            telemetry: TelemetryMode::Exact,
            resilience: None,
            seed,
        }
    }
}

/// Events a [`BoxSim`] reports to its embedder.
#[derive(Clone, Copy, Debug)]
pub enum BoxEvent {
    /// A query finished (successfully or dropped).
    QueryDone(QueryOutcome),
    /// An auxiliary primary thread (see [`BoxSim::spawn_primary_aux`])
    /// finished; carries the user value from [`crate::tags::aux_tag`].
    AuxDone(u64),
}

#[derive(Clone, Copy, Debug)]
enum AppEvent {
    /// A query deadline: service index in the top byte, service-local
    /// query index below (service 0 packs to the bare index, so
    /// single-service timelines are unchanged).
    Timeout(u64),
    CpuPoll,
    IoPoll,
    MemPoll,
    HdfsReplication,
    HdfsClient,
    /// A planned fault fires (index into the fault plan).
    Fault(u32),
    /// Autopilot's restart backoff elapsed: the controller comes back.
    ControllerUp,
    /// The secondary workload respawns after a restart fault.
    SecondaryUp,
    /// The IndexServe process finishes restarting.
    PrimaryUp,
    /// One synthetic arrival of an in-flight connection flood.
    FloodTick,
}

/// Service names (as configured through `PerfIsoConfig::tenant_limits`)
/// of the batch I/O tenants every box registers, in [`IoTenant`] index
/// order. Spec-level validation rejects limits for any other name, so a
/// typo'd service cannot silently run uncapped.
pub const IO_TENANT_SERVICES: [&str; 3] = ["disk-bully", "hdfs-replication", "hdfs-client"];

/// I/O owner table for the shared HDD volume.
#[derive(Clone, Copy, Debug)]
struct Owners {
    primary_log: OwnerId,
    disk_bully: OwnerId,
    hdfs_repl: OwnerId,
    hdfs_client: OwnerId,
}

/// Caps how long the recovery watch counts polls after a controller
/// restart before declaring convergence anyway.
const RECOVERY_POLL_CAP: u32 = 64;
/// Completed/dropped-query latency samples required before the rollout
/// watchdog judges a new configuration.
const ROLLBACK_MIN_SAMPLES: usize = 50;
/// Samples after which a rollout that never breached is accepted for good.
const ROLLBACK_ACCEPT_SAMPLES: usize = 400;

/// A config rollout under observation by the tail-latency watchdog.
#[derive(Clone)]
struct RolloutWatch {
    /// Index of this rollout's [`FaultRecord`].
    record: usize,
    /// The configuration to return to on breach.
    prev: Arc<PerfIsoConfig>,
    /// Rollback trigger: observed P99 above this reverts the rollout.
    threshold: SimDuration,
    /// Query latencies (dropped queries contribute their timeout) observed
    /// since the rollout applied.
    samples: Vec<SimDuration>,
}

/// A rollout published to the config store but not yet seen by the
/// controller's poll loop.
#[derive(Clone)]
struct PendingRollout {
    key: String,
    record: usize,
    rollback: Option<SimDuration>,
}

/// Autopilot-side state of a fault-injected box: the service registry and
/// restart manager, the versioned config store the controller polls, the
/// crash checkpoint, and the per-fault records for the report.
#[derive(Clone)]
struct ChaosState {
    plan: Arc<FaultPlan>,
    manager: ServiceManager,
    registry: ServiceRegistry,
    store: ConfigStore,
    records: Vec<FaultRecord>,
    /// Deterministic PID source for restarted services.
    next_pid: u32,
    /// Controller state at the last poll — what `load`-from-disk returns.
    checkpoint: Option<ControllerState>,
    /// Cumulative controller counters carried across restarts.
    saved_stats: Option<ControllerStats>,
    /// In-flight controller downtime (record index); `None` when up.
    crash_record: Option<usize>,
    /// Autopilot gave up on the controller; it never comes back.
    controller_gave_up: bool,
    /// Post-restart convergence tracking `(record, polls so far)`.
    recovery_watch: Option<(usize, u32)>,
    /// Restart pending its stability window before the failure counter
    /// resets (a crash inside the window keeps accumulating).
    restarted_at: Option<SimTime>,
    /// Rollouts published but not yet picked up by a controller poll.
    pending_rollouts: Vec<PendingRollout>,
    /// The active rollout watchdog, when a rollout set `rollback_on`.
    rollout: Option<RolloutWatch>,
    /// In-flight secondary downtime (record index).
    secondary_record: Option<usize>,
    /// While `Some`, the IndexServe process is down and refuses arrivals.
    primary_down_until: Option<SimTime>,
    /// In-flight primary downtime (record index).
    primary_record: Option<usize>,
    /// While `Some`, a connection flood injects synthetic arrivals.
    flood_until: Option<SimTime>,
    /// Inter-arrival gap of the active flood's synthetic load.
    flood_interval: SimDuration,
    /// An in-flight quota-exhaustion episode, when one is active.
    io_surge: Option<IoSurge>,
}

/// A quota-exhaustion episode: one batch I/O tenant's operations are
/// inflated until `until`, driving it into its throttle.
#[derive(Clone)]
struct IoSurge {
    until: SimTime,
    /// [`IoTenant`] index (0 = disk-bully, 1 = hdfs-replication,
    /// 2 = hdfs-client).
    tenant: u8,
    multiplier: f64,
}

impl ChaosState {
    fn new(plan: Arc<FaultPlan>) -> Self {
        ChaosState {
            manager: ServiceManager::new(plan.restart),
            plan,
            registry: ServiceRegistry::new(),
            store: ConfigStore::new(),
            records: Vec::new(),
            next_pid: 100,
            checkpoint: None,
            saved_stats: None,
            crash_record: None,
            controller_gave_up: false,
            recovery_watch: None,
            restarted_at: None,
            pending_rollouts: Vec::new(),
            rollout: None,
            secondary_record: None,
            primary_down_until: None,
            primary_record: None,
            flood_until: None,
            flood_interval: SimDuration::ZERO,
            io_surge: None,
        }
    }

    fn fresh_pid(&mut self) -> u32 {
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }
}

/// Shift packing a service index into a [`AppEvent::Timeout`] payload.
const TIMEOUT_SVC_SHIFT: u32 = 56;

/// One hosted service and its machine job.
struct ServiceSlot {
    name: String,
    port: Box<dyn ServicePort>,
    job: JobId,
}

/// One simulated production server.
pub struct BoxSim {
    cfg: BoxConfig,
    machine: Machine,
    disk: DiskSim,
    ssd: VolumeId,
    hdd: VolumeId,
    /// Hosted latency-sensitive services; slot 0 is "the primary" for
    /// single-service accessors. Thread tags route back by their
    /// [`service_bits`].
    services: Vec<ServiceSlot>,
    primary_job: JobId,
    secondary_job: JobId,
    owners: Owners,
    controller: Option<PerfIso>,
    /// The *active* controller configuration: starts as `cfg.perfiso` and
    /// moves when a config rollout applies (or rolls back).
    perfiso_cfg: Option<Arc<PerfIsoConfig>>,
    /// Fault-injection state, when the box runs a chaos timeline.
    chaos: Option<Box<ChaosState>>,
    app: EventQueue<AppEvent>,
    bully: Option<CpuBullyHandle>,
    hdfs_repl: HdfsNode,
    hdfs_client: HdfsNode,
    rng: SimRng,
    events: Vec<BoxEvent>,
    now: SimTime,
    secondary_killed: bool,
    /// Box-level resilience counters (admission sheds); per-service
    /// engine counters merge in at report time.
    resilience: ResilienceStats,
    /// The arrival spec a connection flood replays as synthetic load:
    /// the first externally injected slot-0 spec (chaos runs only).
    flood_spec: Option<QuerySpec>,
    /// Tracks secondary threads for kill-on-memory-pressure.
    secondary_tids: Vec<ThreadId>,
    /// Reusable buffers for the settle loop (machine outputs, disk
    /// completions, service outcomes). Kept across the whole run so the
    /// per-step event routing allocates nothing in steady state.
    scratch_outputs: Vec<MachineOutput>,
    scratch_completions: Vec<simdisk::IoCompletion>,
    scratch_outcomes: Vec<QueryOutcome>,
}

/// A [`BoxSim::snapshot`]ed deep copy of one box's mutable state.
///
/// Composes every sub-simulator's snapshot (machine, disk, hosted service
/// ports, controller, chaos/autopilot state, app timers, RNG) so that
/// [`BoxSim::restore`] rewinds the box as a unit. Opaque: only the box
/// that produced it can consume it.
pub struct BoxSnapshot {
    machine: MachineState,
    disk: DiskSimState,
    ports: Vec<Box<dyn ServicePort>>,
    controller: Option<PerfIso>,
    perfiso_cfg: Option<Arc<PerfIsoConfig>>,
    chaos: Option<Box<ChaosState>>,
    app: EventQueueState<AppEvent>,
    bully: Option<CpuBullyHandle>,
    hdfs_repl: HdfsNode,
    hdfs_client: HdfsNode,
    rng: SimRng,
    events: Vec<BoxEvent>,
    now: SimTime,
    secondary_killed: bool,
    resilience: ResilienceStats,
    flood_spec: Option<QuerySpec>,
    secondary_tids: Vec<ThreadId>,
}

impl BoxSim {
    /// Builds the box, spawns secondaries, installs PerfIso, and arms the
    /// poll timers.
    pub fn new(cfg: BoxConfig) -> Self {
        let mut machine = Machine::with_seed(cfg.machine, cfg.seed);
        let mut disk = DiskSim::new(cfg.seed ^ 0xD15C);
        let ssd = disk.add_volume(VolumeSpec::paper_ssd_volume());
        let hdd = disk.add_volume(VolumeSpec::paper_hdd_volume());
        let total = CoreMask::all(cfg.machine.cores);
        // The service roster: the (default) empty `hosted` list means one
        // IndexServe primary built from `cfg.service`, reproducing the
        // single-service box bit for bit (job ids, seeds, tags).
        let roster: Vec<HostedSpec> = if cfg.hosted.is_empty() {
            vec![HostedSpec::IndexServe {
                name: "indexserve".to_string(),
                service: cfg.service.clone(),
            }]
        } else {
            assert!(
                cfg.hosted.len() <= MAX_SERVICES,
                "a box hosts at most {MAX_SERVICES} services, got {}",
                cfg.hosted.len()
            );
            cfg.hosted.clone()
        };
        let service_jobs: Vec<JobId> = roster
            .iter()
            .map(|_| machine.create_job(TenantClass::Primary, total))
            .collect();
        let secondary_job = machine.create_job(TenantClass::Secondary, total);
        // Per-service working sets (satellite of the multi-service
        // refactor: the 110 GiB + 6 GiB literal now lives in
        // `ServiceConfig::PAPER_WORKING_SET` as the default).
        for (h, job) in roster.iter().zip(&service_jobs) {
            machine.set_job_memory(*job, h.working_set());
        }
        let primary_job = service_jobs[0];

        let owners = Owners {
            primary_log: disk.register_owner(IoPriority::HIGH),
            disk_bully: disk.register_owner(IoPriority::LOW),
            hdfs_repl: disk.register_owner(IoPriority::LOW),
            hdfs_client: disk.register_owner(IoPriority::LOW),
        };
        let services: Vec<ServiceSlot> = roster
            .into_iter()
            .zip(service_jobs)
            .enumerate()
            .map(|(i, (h, job))| {
                // Per-slot seed stream; slot 0 collapses to the classic
                // IndexServe seed.
                let seed = cfg.seed ^ 0x5E47 ^ ((i as u64) * 0x9E37_79B9);
                let name = h.name().to_string();
                let port: Box<dyn ServicePort> = match h {
                    HostedSpec::IndexServe { service, .. } => {
                        Box::new(IndexServe::for_service(service, job, seed, i as u8))
                    }
                    HostedSpec::Graph { graph, .. } => Box::new(GraphPort::new(
                        name.clone(),
                        GraphEngine::with_policy(
                            graph,
                            job,
                            PRIMARY_BIT | service_bits(i as u8),
                            seed,
                            cfg.resilience.clone(),
                        ),
                        i as u8,
                    )),
                };
                ServiceSlot { name, port, job }
            })
            .collect();
        let rng = SimRng::seed_from_u64(cfg.seed ^ 0xB0);
        let app = EventQueue::with_capacity(256);
        let hdfs_repl = HdfsNode::replication();
        let hdfs_client = HdfsNode::client();

        let perfiso_cfg = cfg.perfiso.clone();
        let mut sim = BoxSim {
            cfg,
            machine,
            disk,
            ssd,
            hdd,
            services,
            primary_job,
            secondary_job,
            owners,
            controller: None,
            perfiso_cfg,
            chaos: None,
            app,
            bully: None,
            hdfs_repl,
            hdfs_client,
            rng,
            events: Vec::new(),
            now: SimTime::ZERO,
            secondary_killed: false,
            resilience: ResilienceStats::default(),
            flood_spec: None,
            secondary_tids: Vec::new(),
            scratch_outputs: Vec::with_capacity(64),
            scratch_completions: Vec::with_capacity(64),
            scratch_outcomes: Vec::with_capacity(64),
        };

        // Secondary tenants.
        sim.spawn_secondaries(SimTime::ZERO, true);

        // PerfIso.
        if let Some(pcfg) = sim.perfiso_cfg.clone() {
            sim.install_controller(&pcfg, None, None);
            sim.app
                .push(SimTime::ZERO + pcfg.cpu_poll_interval, AppEvent::CpuPoll);
            sim.app
                .push(SimTime::ZERO + pcfg.io_poll_interval, AppEvent::IoPoll);
            sim.app
                .push(SimTime::ZERO + pcfg.memory_poll_interval, AppEvent::MemPoll);
        }

        // Fault timeline: register the box's services with Autopilot and
        // schedule every planned fault up front (pure simulation time — no
        // RNG draws — so chaos runs stay bit-identical across threads).
        if let Some(plan) = sim.cfg.fault.clone() {
            let mut ch = Box::new(ChaosState::new(plan));
            let pid = ch.fresh_pid();
            ch.registry
                .register("indexserve", ServiceKind::Primary, vec![pid]);
            let has_secondary = sim.cfg.secondary.cpu_bully.is_some()
                || sim.cfg.secondary.disk_bully.is_some()
                || sim.cfg.secondary.hdfs;
            if has_secondary {
                let pid = ch.fresh_pid();
                ch.registry
                    .register("secondary", ServiceKind::Secondary, vec![pid]);
            }
            if sim.controller.is_some() {
                let pid = ch.fresh_pid();
                ch.registry
                    .register("perfiso", ServiceKind::Infrastructure, vec![pid]);
            }
            for (i, f) in ch.plan.faults.iter().enumerate() {
                sim.app.push(f.at, AppEvent::Fault(i as u32));
            }
            sim.chaos = Some(ch);
            // Initial checkpoint: install itself persists a snapshot, so a
            // crash before the first poll still has state to load (§4.2).
            if sim.controller.is_some() {
                let state = sim.controller_snapshot();
                sim.chaos.as_mut().expect("just set").checkpoint = Some(state);
            }
        }
        sim
    }

    /// Spawns the configured secondary tenants at `now`. `initial` also
    /// primes the HDFS traffic generators; respawns after a
    /// secondary-restart fault leave the (remote-driven) disk traffic
    /// timeline untouched and only recreate the local processes.
    fn spawn_secondaries(&mut self, now: SimTime, initial: bool) {
        if let Some(intensity) = self.cfg.secondary.cpu_bully {
            let b = CpuBully::new(intensity, self.cfg.machine.cores);
            let handle = b.spawn(&mut self.machine, self.secondary_job, now);
            self.secondary_tids.extend(handle.tids.iter().copied());
            self.bully = Some(handle);
            self.machine.set_job_memory(self.secondary_job, 2 << 30);
        }
        if let Some(db) = &self.cfg.secondary.disk_bully {
            for i in 0..db.depth {
                let tid = self.machine.spawn_program(
                    now,
                    self.secondary_job,
                    Program::from(db.worker_program(i)),
                    DISK_BULLY_TAG_BASE + i as u64,
                );
                self.secondary_tids.push(tid);
            }
        }
        if self.cfg.secondary.hdfs {
            // Daemon CPU footprint: two duty-cycle threads ≈ a few percent.
            for i in 0..2 {
                let tid = self.machine.spawn_program(
                    now,
                    self.secondary_job,
                    Program::from(HdfsCpuProgram::new(0.6)),
                    HDFS_TAG_BASE + i,
                );
                self.secondary_tids.push(tid);
            }
            if initial {
                let (t1, _) = self.hdfs_repl.next_submission(now, &mut self.rng);
                let (t2, _) = self.hdfs_client.next_submission(now, &mut self.rng);
                self.app.push(t1, AppEvent::HdfsReplication);
                self.app.push(t2, AppEvent::HdfsClient);
            }
        }
    }

    /// Constructs and installs a controller from `pcfg`, registering the
    /// batch I/O tenants, then optionally restores dynamic `state` (crash
    /// recovery, §4.2) and cumulative `stats` (counters survive restarts).
    fn install_controller(
        &mut self,
        pcfg: &Arc<PerfIsoConfig>,
        state: Option<&ControllerState>,
        stats: Option<ControllerStats>,
    ) {
        let mut ctl = PerfIso::new(pcfg.as_ref().clone());
        {
            let mut sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            ctl.install(&mut sys);
            // Register the batch I/O tenants for DWRR + static caps.
            // Caps come from the configuration's per-service
            // `tenant_limits` (how production configures them through
            // Autopilot, §5.3) — e.g. `PerfIsoConfig::paper_cluster`
            // caps "hdfs-replication" at 20 MB/s and "hdfs-client" at
            // 60 MB/s; an absent entry means uncapped.
            let limit_for = |service: &str| -> Option<IoLimit> {
                pcfg.tenant_limits
                    .iter()
                    .find(|t| t.service == service)
                    .map(|t| t.limit)
            };
            ctl.register_io_tenant(
                &mut sys,
                IoTenant(0),
                perfiso::TenantIoConfig {
                    weight: 1.0,
                    min_iops: 50.0,
                },
                limit_for(IO_TENANT_SERVICES[0]),
                IoPriority::LOW.0,
            );
            ctl.register_io_tenant(
                &mut sys,
                IoTenant(1),
                perfiso::TenantIoConfig {
                    weight: 1.0,
                    min_iops: 20.0,
                },
                limit_for(IO_TENANT_SERVICES[1]),
                IoPriority::LOW.0,
            );
            ctl.register_io_tenant(
                &mut sys,
                IoTenant(2),
                perfiso::TenantIoConfig {
                    weight: 2.0,
                    min_iops: 40.0,
                },
                limit_for(IO_TENANT_SERVICES[2]),
                IoPriority::LOW.0,
            );
            if let Some(s) = state {
                ctl.restore(s, &mut sys);
            }
        }
        if let Some(s) = stats {
            ctl.stats = s;
        }
        self.controller = Some(ctl);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The slot-0 IndexServe instance (for inspection).
    ///
    /// # Panics
    ///
    /// Panics when slot 0 hosts a non-IndexServe service (a graph
    /// workload); multi-service embedders should use the per-slot
    /// accessors instead.
    pub fn service(&self) -> &IndexServe {
        self.services[0]
            .port
            .as_indexserve()
            .expect("slot-0 service is not IndexServe")
    }

    /// Number of hosted services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Display name of service slot `i`.
    pub fn service_name(&self, i: usize) -> &str {
        &self.services[i].name
    }

    /// The machine job hosting service slot `i`.
    pub fn service_job(&self, i: usize) -> JobId {
        self.services[i].job
    }

    /// CPU time consumed by service slot `i`.
    pub fn service_cpu_time(&self, i: usize) -> SimDuration {
        self.machine.job_cpu_time(self.services[i].job)
    }

    /// Total worker/stage threads spawned across all hosted services.
    pub fn workers_spawned(&self) -> u64 {
        self.services.iter().map(|s| s.port.workers_spawned()).sum()
    }

    /// The longest per-request deadline across hosted services (tail
    /// drain horizon).
    pub fn max_timeout(&self) -> SimDuration {
        self.services
            .iter()
            .map(|s| s.port.timeout())
            .max()
            .expect("at least one service")
    }

    /// Requests outstanding (admitted plus queued) across every hosted
    /// service — zero once all stragglers have retired.
    pub fn services_in_flight(&self) -> u64 {
        self.services.iter().map(|s| s.port.in_flight()).sum()
    }

    /// The primary tenant's job id on the machine.
    pub fn primary_job(&self) -> JobId {
        self.primary_job
    }

    /// The secondary tenants' job id on the machine.
    pub fn secondary_job(&self) -> JobId {
        self.secondary_job
    }

    /// Progress handle of the colocated CPU bully, when one is configured
    /// (for inspecting how much best-effort work got through).
    pub fn cpu_bully(&self) -> Option<&CpuBullyHandle> {
        self.bully.as_ref()
    }

    /// CPU breakdown so far (including in-flight slices).
    pub fn breakdown(&self) -> CpuBreakdown {
        self.machine.breakdown()
    }

    /// Secondary job CPU time (covers every secondary workload).
    pub fn secondary_cpu_time(&self) -> SimDuration {
        self.machine.job_cpu_time(self.secondary_job)
    }

    /// Machine scheduler counters.
    pub fn machine_stats(&self) -> MachineStats {
        self.machine.stats()
    }

    /// Thread-program arena occupancy and recycling counters.
    pub fn arena_stats(&self) -> ArenaStats {
        self.machine.arena_stats()
    }

    /// Controller counters, when PerfIso runs (or ran before a crash that
    /// Autopilot gave up on).
    pub fn controller_stats(&self) -> Option<ControllerStats> {
        self.controller
            .as_ref()
            .map(|c| c.stats)
            .or_else(|| self.chaos.as_ref().and_then(|ch| ch.saved_stats))
    }

    /// Issues a runtime command to the controller (kill switch etc.).
    ///
    /// # Panics
    ///
    /// Panics if no controller is installed.
    pub fn controller_command(&mut self, cmd: perfiso::Command) {
        let mut ctl = self.controller.take().expect("no controller installed");
        {
            let mut sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            ctl.command(cmd, &mut sys);
        }
        self.controller = Some(ctl);
    }

    /// Whether the memory watchdog killed the secondary.
    pub fn secondary_killed(&self) -> bool {
        self.secondary_killed
    }

    /// Snapshots the controller's dynamic state for crash recovery (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if no controller is installed.
    pub fn controller_snapshot(&mut self) -> perfiso::recovery::ControllerState {
        let ctl = self.controller.take().expect("no controller installed");
        let state = {
            let sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            ctl.snapshot(&sys)
        };
        self.controller = Some(ctl);
        state
    }

    /// Replaces the controller with a freshly constructed one (simulating a
    /// crash-restart under Autopilot) and restores the given dynamic state.
    /// The batch I/O tenants re-register from the static configuration,
    /// exactly as on first install.
    ///
    /// # Panics
    ///
    /// Panics if the box was built without a PerfIso configuration.
    pub fn controller_restart_with(&mut self, state: &perfiso::recovery::ControllerState) {
        let pcfg = self.perfiso_cfg.clone().expect("no PerfIso configuration");
        self.install_controller(&pcfg, Some(state), None);
    }

    /// Per-fault records accumulated so far (empty without a fault plan).
    pub fn take_fault_records(&mut self) -> Vec<FaultRecord> {
        self.chaos
            .as_mut()
            .map(|c| std::mem::take(&mut c.records))
            .unwrap_or_default()
    }

    /// Whether the controller process is currently down (crashed and not
    /// yet restarted by Autopilot). Always false outside chaos runs with a
    /// configured controller.
    pub fn controller_down(&self) -> bool {
        self.perfiso_cfg.is_some() && self.controller.is_none()
    }

    /// Checkpoints the full box state for later [`BoxSim::restore`].
    ///
    /// Returns `None` when the box cannot be snapshotted — some thread on
    /// the machine runs a program whose `clone_box` declines, or a hosted
    /// service has no `clone_port`. Speculative cluster sync treats such a
    /// box conservatively; everything built from the standard workloads is
    /// snapshotable.
    ///
    /// Immutable construction-time state (config, job ids, volume ids,
    /// owner table) is not captured: a snapshot may only be restored into
    /// the box that produced it.
    pub fn snapshot(&self) -> Option<BoxSnapshot> {
        let machine = self.machine.snapshot()?;
        let mut ports = Vec::with_capacity(self.services.len());
        for s in &self.services {
            ports.push(s.port.clone_port()?);
        }
        Some(BoxSnapshot {
            machine,
            disk: self.disk.save(),
            ports,
            controller: self.controller.clone(),
            perfiso_cfg: self.perfiso_cfg.clone(),
            chaos: self.chaos.clone(),
            app: self.app.save(),
            bully: self.bully.clone(),
            hdfs_repl: self.hdfs_repl.clone(),
            hdfs_client: self.hdfs_client.clone(),
            rng: self.rng.clone(),
            events: self.events.clone(),
            now: self.now,
            secondary_killed: self.secondary_killed,
            resilience: self.resilience,
            flood_spec: self.flood_spec.clone(),
            secondary_tids: self.secondary_tids.clone(),
        })
    }

    /// Rolls the box back to a previously captured [`BoxSnapshot`].
    ///
    /// The same snapshot can be restored any number of times; after a
    /// restore the box replays bit-identically to the run that produced
    /// the snapshot (given identical subsequent inputs). The cloned CPU
    /// bully handle shares its progress counter with the machine's
    /// threads, whose rolled-back value the machine restore writes back,
    /// so externally observed bully progress rolls back too.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape does not match this box (it came
    /// from a differently configured box).
    pub fn restore(&mut self, s: &BoxSnapshot) {
        assert_eq!(
            s.ports.len(),
            self.services.len(),
            "snapshot is from a differently configured box"
        );
        self.machine.restore(&s.machine);
        self.disk.restore(&s.disk);
        for (slot, port) in self.services.iter_mut().zip(&s.ports) {
            slot.port = port
                .clone_port()
                .expect("snapshotted ports are clonable by construction");
        }
        self.controller = s.controller.clone();
        self.perfiso_cfg = s.perfiso_cfg.clone();
        self.chaos = s.chaos.clone();
        self.app.restore(&s.app);
        self.bully = s.bully.clone();
        self.hdfs_repl = s.hdfs_repl.clone();
        self.hdfs_client = s.hdfs_client.clone();
        self.rng = s.rng.clone();
        self.events.clone_from(&s.events);
        self.now = s.now;
        self.secondary_killed = s.secondary_killed;
        self.resilience = s.resilience;
        self.flood_spec = s.flood_spec.clone();
        self.secondary_tids.clone_from(&s.secondary_tids);
    }

    /// Mutable access to the machine plus the secondary job id, for
    /// spawning custom secondary workloads (e.g. the fleet experiment's ML
    /// trainer).
    pub fn secondary_spawn_access(&mut self) -> (&mut Machine, JobId) {
        (&mut self.machine, self.secondary_job)
    }

    /// Registers externally spawned secondary threads so kill actions
    /// (memory watchdog) cover them.
    pub fn track_secondary_threads(&mut self, tids: &[ThreadId]) {
        self.secondary_tids.extend_from_slice(tids);
    }

    /// Declares the secondary job's memory footprint (for watchdog tests).
    pub fn set_secondary_memory(&mut self, bytes: u64) {
        self.machine.set_job_memory(self.secondary_job, bytes);
    }

    /// Injects a query arriving now at service slot 0; schedules its
    /// deadline. Returns the service-local query index echoed in
    /// [`BoxEvent::QueryDone`].
    pub fn inject_query(&mut self, now: SimTime, spec: QuerySpec) -> u64 {
        self.inject_query_for(0, now, spec)
    }

    /// Injects a query arriving now at service slot `service`.
    pub fn inject_query_for(&mut self, service: usize, now: SimTime, spec: QuerySpec) -> u64 {
        self.advance_to(now);
        if service == 0 && self.flood_spec.is_none() && self.chaos.is_some() {
            // Remember one representative arrival for a connection flood
            // to replay as synthetic load.
            self.flood_spec = Some(spec.clone());
        }
        if self
            .chaos
            .as_ref()
            .is_some_and(|c| c.primary_down_until.is_some())
        {
            // The primary process is restarting: the connection is
            // refused and the query counts as dropped immediately.
            let qidx = self.services[service].port.refuse_arrival(now, spec);
            self.settle();
            return qidx;
        }
        if self.admission_sheds(service) {
            // Box-level load shedding: the service is already holding its
            // configured concurrency plus queue depth, so the arrival is
            // refused deterministically and counted as a dropped query.
            self.resilience.sheds += 1;
            let qidx = self.services[service].port.refuse_arrival(now, spec);
            self.settle();
            return qidx;
        }
        let qidx = self.services[service]
            .port
            .on_arrival(now, spec, &mut self.machine);
        let deadline = now + self.services[service].port.timeout();
        self.app.push(
            deadline,
            AppEvent::Timeout(((service as u64) << TIMEOUT_SVC_SHIFT) | qidx),
        );
        self.settle();
        qidx
    }

    /// True when the box-level admission policy sheds an arrival at slot
    /// `service` (its outstanding load already covers the configured
    /// concurrency plus queue depth).
    fn admission_sheds(&self, service: usize) -> bool {
        self.cfg
            .resilience
            .as_ref()
            .and_then(|p| p.admission)
            .is_some_and(|adm| !adm.admits(self.services[service].port.in_flight()))
    }

    /// Merged resilience counters: box-level admission sheds plus every
    /// hosted service's engine counters. `None` when nothing ever fired,
    /// so policy-free reports serialize byte-identically to before the
    /// subsystem existed.
    pub fn resilience_report(&self) -> Option<ResilienceStats> {
        let mut total = self.resilience;
        for s in &self.services {
            if let Some(st) = s.port.resilience_stats() {
                total.merge(st);
            }
        }
        (!total.is_empty()).then_some(total)
    }

    /// Spawns an auxiliary primary-tenant compute thread (MLA aggregation
    /// work); [`BoxEvent::AuxDone`] fires with `user` when it completes.
    ///
    /// The thread contends for CPU exactly like IndexServe's own threads,
    /// so colocated bullies degrade aggregation latency too — the effect
    /// the paper measures at the MLA layer (Fig 9).
    pub fn spawn_primary_aux(&mut self, now: SimTime, compute: SimDuration, user: u64) {
        self.advance_to(now);
        self.machine.spawn_program(
            now,
            self.primary_job,
            Program::compute_once(compute),
            crate::tags::aux_tag(user),
        );
        self.settle();
    }

    /// Takes accumulated events.
    ///
    /// Allocation-free callers should prefer [`BoxSim::drain_events_into`].
    pub fn drain_events(&mut self) -> Vec<BoxEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves accumulated events into `buf` (appending), keeping the
    /// internal buffer's capacity for reuse on the hot path.
    pub fn drain_events_into(&mut self, buf: &mut Vec<BoxEvent>) {
        buf.append(&mut self.events);
    }

    /// True when events are pending.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Time of the next internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for c in [
            self.machine.next_timer_at(),
            self.disk.next_timer_at(),
            self.app.peek_time(),
        ]
        .into_iter()
        .flatten()
        .chain(self.services.iter().filter_map(|s| s.port.next_timer_at()))
        {
            next = Some(next.map_or(c, |n: SimTime| n.min(c)));
        }
        next
    }

    /// Advances virtual time to `t`, processing everything due.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "time went backwards");
        while let Some(next) = self.next_event_time().filter(|&n| n <= t) {
            self.now = next;
            self.machine.advance_to(next);
            self.disk.advance_to(next);
            self.advance_services(next);
            while let Some((_, ev)) = self.app.pop_before(next) {
                self.handle_app_event(ev);
            }
            self.settle();
        }
        self.now = t;
        self.machine.advance_to(t);
        self.disk.advance_to(t);
        self.advance_services(t);
        self.settle();
    }

    /// Pumps services with internal event sources (graph fabrics) to `t`.
    fn advance_services(&mut self, t: SimTime) {
        for i in 0..self.services.len() {
            self.services[i].port.advance_to(t, &mut self.machine);
        }
    }

    /// Routes machine outputs and disk completions until quiescent at the
    /// current instant.
    ///
    /// Runs entirely on reusable scratch buffers: in steady state one
    /// settle pass allocates nothing, which matters because this is the
    /// innermost loop of every experiment in the workspace.
    fn settle(&mut self) {
        loop {
            if !self.machine.has_outputs() && !self.disk.has_completions() {
                break;
            }
            let mut outs = std::mem::take(&mut self.scratch_outputs);
            let mut comps = std::mem::take(&mut self.scratch_completions);
            outs.clear();
            comps.clear();
            self.machine.drain_outputs_into(&mut outs);
            self.disk.drain_completions_into(&mut comps);
            for o in outs.drain(..) {
                self.route_machine_output(o);
            }
            for c in comps.drain(..) {
                if let Some(tid) = parse_wake_token(c.token) {
                    self.machine.wake(self.now, tid);
                }
            }
            self.scratch_outputs = outs;
            self.scratch_completions = comps;
            // Collect service outcomes produced by routing, slot order.
            for i in 0..self.services.len() {
                if !self.services[i].port.has_outcomes() {
                    continue;
                }
                let log_write_bytes = self.services[i].port.log_write_bytes();
                let mut outcomes = std::mem::take(&mut self.scratch_outcomes);
                outcomes.clear();
                self.services[i].port.drain_outcomes_into(&mut outcomes);
                for outcome in outcomes.drain(..) {
                    // Feed the rollout watchdog (dropped queries contribute
                    // their full deadline as the observed latency).
                    if let Some(w) = self.chaos.as_mut().and_then(|ch| ch.rollout.as_mut()) {
                        w.samples.push(outcome.latency);
                    }
                    if !outcome.dropped && log_write_bytes > 0 {
                        // Asynchronous query log on the shared HDD volume.
                        self.disk.submit(
                            self.now,
                            self.hdd,
                            self.owners.primary_log,
                            IoKind::Write,
                            log_write_bytes,
                            AccessPattern::Sequential,
                            FIRE_AND_FORGET,
                        );
                    }
                    self.events.push(BoxEvent::QueryDone(outcome));
                }
                self.scratch_outcomes = outcomes;
            }
        }
    }

    fn route_machine_output(&mut self, out: MachineOutput) {
        match out {
            MachineOutput::ThreadBlocked { tid, tag, .. } => {
                if tag & PRIMARY_BIT != 0 {
                    // A hosted service's thread: the owning slot decides
                    // whether this is an index read or a spurious block.
                    let svc = tag_service(tag) as usize;
                    let action = match self.services.get_mut(svc) {
                        Some(slot) => slot.port.on_thread_blocked(self.now, tag, tid),
                        None => BlockedAction::Wake,
                    };
                    match action {
                        BlockedAction::IndexRead { bytes } => {
                            // Primary index read on the exclusive SSD volume.
                            self.disk.submit(
                                self.now,
                                self.ssd,
                                self.owners.primary_log, // same process identity
                                IoKind::Read,
                                bytes,
                                AccessPattern::Random,
                                wake_token(tid),
                            );
                        }
                        BlockedAction::Wake => {
                            self.machine.wake(self.now, tid);
                        }
                    }
                } else if (DISK_BULLY_TAG_BASE..DISK_BULLY_TAG_BASE + (1 << 16)).contains(&tag) {
                    let op = self
                        .cfg
                        .secondary
                        .disk_bully
                        .as_ref()
                        .expect("disk bully configured")
                        .sample_op(&mut self.rng);
                    let bytes = self.surge_bytes(0, op.bytes);
                    self.disk.submit(
                        self.now,
                        self.hdd,
                        self.owners.disk_bully,
                        op.kind,
                        bytes,
                        op.access,
                        wake_token(tid),
                    );
                } else {
                    // Unknown blocker: wake immediately rather than hang.
                    self.machine.wake(self.now, tid);
                }
            }
            MachineOutput::ThreadExited { tid, tag, .. } => {
                if tag & PRIMARY_BIT != 0 {
                    let svc = tag_service(tag) as usize;
                    if svc < self.services.len() {
                        self.services[svc].port.on_thread_exited(
                            self.now,
                            tag,
                            tid,
                            &mut self.machine,
                        );
                    }
                } else if let Some(user) = crate::tags::parse_aux_tag(tag) {
                    self.events.push(BoxEvent::AuxDone(user));
                }
                // Secondary exits need no routing.
            }
        }
    }

    fn handle_app_event(&mut self, ev: AppEvent) {
        match ev {
            AppEvent::Timeout(packed) => {
                let svc = (packed >> TIMEOUT_SVC_SHIFT) as usize;
                let qidx = packed & ((1 << TIMEOUT_SVC_SHIFT) - 1);
                if svc < self.services.len() {
                    self.services[svc]
                        .port
                        .on_timeout(self.now, qidx, &mut self.machine);
                }
            }
            AppEvent::CpuPoll => {
                // The controller's poll loop also checks the Autopilot
                // config store for rollouts (and the rollback watchdog).
                if self.chaos.is_some() {
                    self.chaos_config_poll();
                }
                let updates_before = self.controller.as_ref().map(|c| c.stats.affinity_updates);
                self.with_controller(|ctl, sys, now| {
                    ctl.poll_cpu(now, sys);
                });
                if self.chaos.is_some() {
                    self.chaos_after_cpu_poll(updates_before);
                }
                if let Some(p) = self.perfiso_cfg.as_ref() {
                    self.app
                        .push(self.now + p.cpu_poll_interval, AppEvent::CpuPoll);
                }
            }
            AppEvent::IoPoll => {
                self.with_controller(|ctl, sys, now| {
                    ctl.poll_io(now, sys);
                });
                if let Some(p) = self.perfiso_cfg.as_ref() {
                    self.app
                        .push(self.now + p.io_poll_interval, AppEvent::IoPoll);
                }
            }
            AppEvent::MemPoll => {
                self.with_controller(|ctl, sys, now| {
                    ctl.poll_memory(now, sys);
                });
                if let Some(p) = self.perfiso_cfg.as_ref() {
                    self.app
                        .push(self.now + p.memory_poll_interval, AppEvent::MemPoll);
                }
            }
            AppEvent::Fault(i) => self.fire_fault(i as usize),
            AppEvent::ControllerUp => self.controller_up(),
            AppEvent::SecondaryUp => self.secondary_up(),
            AppEvent::PrimaryUp => self.primary_up(),
            AppEvent::FloodTick => self.flood_tick(),
            AppEvent::HdfsReplication => {
                let (next, op) = self.hdfs_repl.next_submission(self.now, &mut self.rng);
                let bytes = self.surge_bytes(1, op.bytes);
                self.disk.submit(
                    self.now,
                    self.hdd,
                    self.owners.hdfs_repl,
                    op.kind,
                    bytes,
                    op.access,
                    FIRE_AND_FORGET,
                );
                self.app.push(next, AppEvent::HdfsReplication);
            }
            AppEvent::HdfsClient => {
                let (next, op) = self.hdfs_client.next_submission(self.now, &mut self.rng);
                let bytes = self.surge_bytes(2, op.bytes);
                self.disk.submit(
                    self.now,
                    self.hdd,
                    self.owners.hdfs_client,
                    op.kind,
                    bytes,
                    op.access,
                    FIRE_AND_FORGET,
                );
                self.app.push(next, AppEvent::HdfsClient);
            }
        }
    }

    /// One synthetic arrival of a connection flood, re-armed until the
    /// flood window closes. Runs inside `handle_app_event` — already at
    /// `self.now`, mid-`advance_to` — so the arrival is inlined here
    /// rather than re-entering `inject_query_for`.
    fn flood_tick(&mut self) {
        let (until, interval) = match self.chaos.as_ref() {
            Some(ch) => match ch.flood_until {
                Some(u) => (u, ch.flood_interval),
                None => return,
            },
            None => return,
        };
        if self.now >= until {
            self.chaos.as_mut().expect("checked above").flood_until = None;
            return;
        }
        if let Some(spec) = self.flood_spec.clone() {
            let down = self
                .chaos
                .as_ref()
                .is_some_and(|c| c.primary_down_until.is_some());
            if down || self.admission_sheds(0) {
                if !down {
                    self.resilience.sheds += 1;
                }
                self.services[0].port.refuse_arrival(self.now, spec);
            } else {
                let qidx = self.services[0]
                    .port
                    .on_arrival(self.now, spec, &mut self.machine);
                let deadline = self.now + self.services[0].port.timeout();
                self.app.push(deadline, AppEvent::Timeout(qidx));
            }
        }
        self.app.push(self.now + interval, AppEvent::FloodTick);
    }

    /// Applies an active quota-exhaustion surge to I/O tenant `tenant`'s
    /// operation size. The inflation happens *after* sampling, so the RNG
    /// stream is untouched and surge-free runs stay bit-identical.
    fn surge_bytes(&self, tenant: u8, bytes: u64) -> u64 {
        match self.chaos.as_ref().and_then(|c| c.io_surge.as_ref()) {
            Some(s) if s.tenant == tenant && self.now < s.until => {
                ((bytes as f64) * s.multiplier).round() as u64
            }
            _ => bytes,
        }
    }

    fn with_controller(&mut self, f: impl FnOnce(&mut PerfIso, &mut SysAdapter<'_>, SimTime)) {
        let Some(mut ctl) = self.controller.take() else {
            return;
        };
        {
            let mut sys = SysAdapter {
                now: self.now,
                machine: &mut self.machine,
                disk: &mut self.disk,
                hdd: self.hdd,
                secondary_job: self.secondary_job,
                owners: self.owners,
                secondary_tids: &mut self.secondary_tids,
                secondary_killed: &mut self.secondary_killed,
            };
            f(&mut ctl, &mut sys, self.now);
        }
        self.controller = Some(ctl);
    }

    /// Fires planned fault `idx` from the chaos timeline.
    fn fire_fault(&mut self, idx: usize) {
        let Some(mut ch) = self.chaos.take() else {
            return;
        };
        let fault = ch.plan.faults[idx].clone();
        match &fault.kind {
            PlannedFaultKind::ControllerCrash { downtime_polls } => {
                // A crash while the controller is already down (or after
                // Autopilot gave up) is absorbed by the outage in flight.
                if self.controller.is_some() && ch.crash_record.is_none() {
                    ch.records.push(FaultRecord::fired(&fault.kind, self.now));
                    let ridx = ch.records.len() - 1;
                    let ctl = self.controller.take().expect("checked above");
                    ch.saved_stats = Some(ctl.stats);
                    drop(ctl);
                    // The dying controller's cleanup releases the
                    // secondaries: the box degrades to the Fig. 4
                    // no-isolation regime until the restart.
                    let all = CoreMask::all(self.cfg.machine.cores);
                    self.machine
                        .set_job_affinity(self.now, self.secondary_job, all);
                    self.machine
                        .set_job_quota(self.now, self.secondary_job, None);
                    ch.recovery_watch = None;
                    ch.restarted_at = None;
                    match ch.manager.report_crash(&mut ch.registry, "perfiso") {
                        RestartDecision::RestartAfterMs(ms) => {
                            let poll = self
                                .perfiso_cfg
                                .as_ref()
                                .expect("controller was running")
                                .cpu_poll_interval;
                            let floor = SimDuration::from_nanos(
                                poll.as_nanos().saturating_mul(u64::from(*downtime_polls)),
                            );
                            let downtime = SimDuration::from_millis(ms).max(floor);
                            ch.crash_record = Some(ridx);
                            self.app.push(self.now + downtime, AppEvent::ControllerUp);
                        }
                        RestartDecision::GiveUp => {
                            ch.records[ridx].gave_up = true;
                            ch.crash_record = Some(ridx);
                            ch.controller_gave_up = true;
                        }
                    }
                }
            }
            PlannedFaultKind::SecondaryRestart { downtime }
            | PlannedFaultKind::ServiceChurn { downtime } => {
                if ch.registry.get("secondary").is_some()
                    && ch.secondary_record.is_none()
                    && !self.secondary_killed
                {
                    ch.records.push(FaultRecord::fired(&fault.kind, self.now));
                    let ridx = ch.records.len() - 1;
                    // Kill the local processes; remote-driven HDFS disk
                    // traffic continues (the DataNode's peers don't know).
                    for tid in self.secondary_tids.drain(..) {
                        self.machine.kill_thread(self.now, tid);
                    }
                    self.machine.set_job_memory(self.secondary_job, 0);
                    self.bully = None;
                    match ch.manager.report_crash(&mut ch.registry, "secondary") {
                        RestartDecision::RestartAfterMs(ms) => {
                            let dt = (*downtime).max(SimDuration::from_millis(ms));
                            ch.secondary_record = Some(ridx);
                            self.app.push(self.now + dt, AppEvent::SecondaryUp);
                        }
                        RestartDecision::GiveUp => ch.records[ridx].gave_up = true,
                    }
                }
            }
            PlannedFaultKind::BoxRestart { downtime } => {
                if ch.primary_record.is_none() {
                    ch.records.push(FaultRecord::fired(&fault.kind, self.now));
                    let ridx = ch.records.len() - 1;
                    // Every in-flight request on every service dies with
                    // the box.
                    for i in 0..self.services.len() {
                        self.services[i].port.fail_all(self.now, &mut self.machine);
                    }
                    match ch.manager.report_crash(&mut ch.registry, "indexserve") {
                        RestartDecision::RestartAfterMs(ms) => {
                            let dt = (*downtime).max(SimDuration::from_millis(ms));
                            ch.primary_down_until = Some(self.now + dt);
                            ch.primary_record = Some(ridx);
                            self.app.push(self.now + dt, AppEvent::PrimaryUp);
                        }
                        RestartDecision::GiveUp => {
                            ch.records[ridx].gave_up = true;
                            ch.primary_down_until = Some(SimTime::MAX);
                        }
                    }
                }
            }
            PlannedFaultKind::ConfigRollout {
                key,
                config,
                rollback_p99,
                ..
            } => {
                ch.records.push(FaultRecord::fired(&fault.kind, self.now));
                let ridx = ch.records.len() - 1;
                ch.store
                    .put(key, config.as_ref())
                    .expect("PerfIsoConfig serializes");
                ch.pending_rollouts.push(PendingRollout {
                    key: key.clone(),
                    record: ridx,
                    rollback: *rollback_p99,
                });
            }
            PlannedFaultKind::ConnectionFlood {
                duration,
                extra_qps,
            } => {
                ch.records.push(FaultRecord::fired(&fault.kind, self.now));
                let ridx = ch.records.len() - 1;
                ch.records[ridx].downtime_ms = duration.as_millis_f64();
                ch.flood_until = Some(self.now + *duration);
                ch.flood_interval =
                    SimDuration::from_nanos(1_000_000_000 / u64::from((*extra_qps).max(1)));
                self.app
                    .push(self.now + ch.flood_interval, AppEvent::FloodTick);
            }
            PlannedFaultKind::QuotaExhaustion {
                duration,
                tenant,
                multiplier,
            } => {
                ch.records.push(FaultRecord::fired(&fault.kind, self.now));
                let ridx = ch.records.len() - 1;
                ch.records[ridx].downtime_ms = duration.as_millis_f64();
                let t = match tenant.as_str() {
                    "disk-bully" => 0u8,
                    "hdfs-replication" => 1,
                    _ => 2,
                };
                ch.io_surge = Some(IoSurge {
                    until: self.now + *duration,
                    tenant: t,
                    multiplier: *multiplier,
                });
            }
        }
        self.chaos = Some(ch);
    }

    /// Autopilot's restart backoff elapsed: reconstruct the controller and
    /// resume from the checkpoint (the paper's §4.2 recovery path).
    fn controller_up(&mut self) {
        let Some(mut ch) = self.chaos.take() else {
            return;
        };
        if let Some(ridx) = ch.crash_record.take() {
            let pcfg = self.perfiso_cfg.clone().expect("controller configured");
            let state = ch.checkpoint.clone();
            let stats = ch.saved_stats.take();
            self.install_controller(&pcfg, state.as_ref(), stats);
            let pid = ch.fresh_pid();
            ch.registry.update_pids("perfiso", vec![pid]);
            ch.registry.set_state("perfiso", ServiceState::Running);
            ch.records[ridx].downtime_ms =
                self.now.since(SimTime::ZERO).as_millis_f64() - ch.records[ridx].fired_at_ms;
            ch.recovery_watch = Some((ridx, 0));
            ch.restarted_at = Some(self.now);
        }
        self.chaos = Some(ch);
    }

    /// The secondary workload respawns after its restart downtime.
    fn secondary_up(&mut self) {
        let Some(mut ch) = self.chaos.take() else {
            return;
        };
        if let Some(ridx) = ch.secondary_record.take() {
            self.spawn_secondaries(self.now, false);
            let pid = ch.fresh_pid();
            ch.manager
                .report_started(&mut ch.registry, "secondary", vec![pid]);
            ch.records[ridx].downtime_ms =
                self.now.since(SimTime::ZERO).as_millis_f64() - ch.records[ridx].fired_at_ms;
        }
        self.chaos = Some(ch);
    }

    /// The IndexServe process finishes restarting and accepts queries again.
    fn primary_up(&mut self) {
        let Some(mut ch) = self.chaos.take() else {
            return;
        };
        if let Some(ridx) = ch.primary_record.take() {
            ch.primary_down_until = None;
            let pid = ch.fresh_pid();
            ch.manager
                .report_started(&mut ch.registry, "indexserve", vec![pid]);
            ch.records[ridx].downtime_ms =
                self.now.since(SimTime::ZERO).as_millis_f64() - ch.records[ridx].fired_at_ms;
        }
        self.chaos = Some(ch);
    }

    /// The config-store side of a controller poll: evaluate the rollback
    /// watchdog, then pick up newly published configuration documents.
    fn chaos_config_poll(&mut self) {
        if self.controller.is_none() {
            return;
        }
        let Some(mut ch) = self.chaos.take() else {
            return;
        };
        // Rollback watchdog: judge the active rollout on observed tail
        // latency (dropped queries contribute their full deadline).
        let mut revert: Option<(usize, Arc<PerfIsoConfig>)> = None;
        if let Some(w) = ch.rollout.as_mut() {
            if w.samples.len() >= ROLLBACK_MIN_SAMPLES {
                let mut sorted = w.samples.clone();
                sorted.sort_unstable();
                let idx = ((sorted.len() as f64) * 0.99).ceil() as usize;
                let p99 = sorted[idx.saturating_sub(1).min(sorted.len() - 1)];
                if p99 > w.threshold {
                    revert = Some((w.record, w.prev.clone()));
                } else if w.samples.len() >= ROLLBACK_ACCEPT_SAMPLES {
                    ch.rollout = None;
                }
            }
        }
        if let Some((record, prev)) = revert {
            ch.rollout = None;
            let state = self.controller_snapshot();
            let stats = self.controller.as_ref().expect("present").stats;
            self.install_controller(&prev, Some(&state), Some(stats));
            self.perfiso_cfg = Some(prev);
            ch.records[record].rolled_back = true;
        }
        // Newly published documents (versioned ConfigStore): re-install
        // the controller under the new configuration, carrying its
        // dynamic state and counters across.
        while !ch.pending_rollouts.is_empty() {
            let p = ch.pending_rollouts.remove(0);
            let Some((_, cfg)) = ch.store.get::<PerfIsoConfig>(&p.key) else {
                continue;
            };
            let state = self.controller_snapshot();
            let stats = self.controller.as_ref().expect("present").stats;
            let prev = self.perfiso_cfg.clone().expect("controller configured");
            let next = Arc::new(cfg);
            self.install_controller(&next, Some(&state), Some(stats));
            self.perfiso_cfg = Some(next);
            if let Some(threshold) = p.rollback {
                ch.rollout = Some(RolloutWatch {
                    record: p.record,
                    prev,
                    threshold,
                    samples: Vec::new(),
                });
            }
        }
        self.chaos = Some(ch);
    }

    /// Post-CPU-poll chaos bookkeeping: recovery convergence, the
    /// crash-loop stability window, and the §4.2 checkpoint.
    fn chaos_after_cpu_poll(&mut self, updates_before: Option<u64>) {
        if self.controller.is_none() {
            return;
        }
        let Some(mut ch) = self.chaos.take() else {
            return;
        };
        // Recovery watch: converged at the first poll that changed nothing.
        if let (Some((ridx, polls)), Some(before)) = (ch.recovery_watch, updates_before) {
            let after = self
                .controller
                .as_ref()
                .expect("present")
                .stats
                .affinity_updates;
            let polls = polls + 1;
            if after == before || polls >= RECOVERY_POLL_CAP {
                ch.records[ridx].recovery_polls = polls;
                ch.recovery_watch = None;
            } else {
                ch.recovery_watch = Some((ridx, polls));
            }
        }
        // Crash-loop stability window: only a controller that survives one
        // base-backoff period counts as successfully (re)started — a crash
        // inside the window keeps the consecutive-failure counter growing.
        if let Some(at) = ch.restarted_at {
            if self.now.since(at) >= SimDuration::from_millis(ch.plan.restart.base_backoff_ms) {
                let pids = ch
                    .registry
                    .get("perfiso")
                    .map(|s| s.pids.clone())
                    .unwrap_or_default();
                ch.manager.report_started(&mut ch.registry, "perfiso", pids);
                ch.restarted_at = None;
            }
        }
        // Checkpoint the dynamic state at this poll — what loading "its
        // state from disk" returns after the next crash.
        ch.checkpoint = Some(self.controller_snapshot());
        self.chaos = Some(ch);
    }
}

/// The [`SystemInterface`] over a simulated box.
struct SysAdapter<'a> {
    now: SimTime,
    machine: &'a mut Machine,
    disk: &'a mut DiskSim,
    hdd: VolumeId,
    secondary_job: JobId,
    owners: Owners,
    secondary_tids: &'a mut Vec<ThreadId>,
    secondary_killed: &'a mut bool,
}

impl SysAdapter<'_> {
    fn owner_of(&self, tenant: IoTenant) -> OwnerId {
        match tenant.0 {
            0 => self.owners.disk_bully,
            1 => self.owners.hdfs_repl,
            _ => self.owners.hdfs_client,
        }
    }
}

impl SystemInterface for SysAdapter<'_> {
    fn total_cores(&self) -> u32 {
        self.machine.config().cores
    }

    fn idle_cores(&mut self) -> CoreMask {
        self.machine.idle_core_mask()
    }

    fn set_secondary_affinity(&mut self, mask: CoreMask) {
        self.machine
            .set_job_affinity(self.now, self.secondary_job, mask);
    }

    fn secondary_affinity(&self) -> CoreMask {
        self.machine.job_affinity(self.secondary_job)
    }

    fn set_secondary_cycle_cap(&mut self, cap: Option<f64>) {
        let quota = cap.map(|c| CpuRateQuota::percent(c * 100.0));
        self.machine
            .set_job_quota(self.now, self.secondary_job, quota);
    }

    fn memory_total(&self) -> u64 {
        self.machine.memory_total()
    }

    fn memory_used(&self) -> u64 {
        self.machine.memory_used()
    }

    fn secondary_memory_used(&self) -> u64 {
        self.machine.job_memory(self.secondary_job)
    }

    fn kill_secondary_processes(&mut self) {
        for tid in self.secondary_tids.drain(..) {
            self.machine.kill_thread(self.now, tid);
        }
        self.machine.set_job_memory(self.secondary_job, 0);
        *self.secondary_killed = true;
    }

    fn io_tenants(&self) -> Vec<IoTenant> {
        vec![IoTenant(0), IoTenant(1), IoTenant(2)]
    }

    fn io_stats(&mut self, tenant: IoTenant) -> IoTenantStats {
        let owner = self.owner_of(tenant);
        let s = self.disk.owner_stats(self.now, owner);
        IoTenantStats {
            window_iops: s.window_iops,
            window_bytes_per_sec: s.window_bytes_per_sec,
        }
    }

    fn shared_volume_iops(&mut self) -> f64 {
        self.disk.volume_iops(self.now, self.hdd)
    }

    fn set_io_priority(&mut self, tenant: IoTenant, priority: u8) {
        let owner = self.owner_of(tenant);
        self.disk
            .set_owner_priority(owner, IoPriority(priority.min(7)));
    }

    fn io_priority(&self, tenant: IoTenant) -> u8 {
        self.disk.owner_priority(self.owner_of(tenant)).0
    }

    fn set_io_limit(&mut self, tenant: IoTenant, limit: Option<IoLimit>) {
        let owner = self.owner_of(tenant);
        self.disk.set_owner_limit(
            self.now,
            owner,
            limit.map(|l| RateLimit {
                bytes_per_sec: l.bytes_per_sec,
                iops: l.iops,
            }),
        );
    }

    fn set_egress_low_rate(&mut self, _rate: Option<u64>) {
        // Single-box runs have no network; the cluster simulator applies
        // egress caps on its NetSim.
    }
}

/// The replay plan for a standalone run.
#[derive(Clone, Debug)]
pub struct RunPlan {
    /// Offered load in queries/second.
    pub qps: f64,
    /// Warm-up period excluded from statistics.
    pub warmup: SimDuration,
    /// Measured period.
    pub measure: SimDuration,
    /// Trace-generation parameters (the query count is derived).
    pub trace: TraceConfig,
}

impl RunPlan {
    /// A plan replaying at `qps` for the given measured duration after a
    /// proportional warm-up.
    pub fn at_qps(qps: f64, measure: SimDuration) -> Self {
        RunPlan {
            qps,
            warmup: SimDuration::from_millis(500),
            measure,
            trace: TraceConfig::default(),
        }
    }
}

/// Per-service measurement row of a multi-service box run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ServiceReport {
    /// Service display name (roster order).
    pub name: String,
    /// Offered load for this service, queries/second.
    pub qps: f64,
    /// Completed-request latency statistics (measured window only).
    pub latency: PercentileSummary,
    /// CPU time the service's job consumed over the whole run.
    pub cpu_time: SimDuration,
}

/// What a standalone run measured (one bar group of a paper figure).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct BoxReport {
    /// Offered load.
    pub qps: f64,
    /// Completed-query latency statistics (measured window only).
    pub latency: PercentileSummary,
    /// CPU breakdown over the measured window.
    pub breakdown: CpuBreakdown,
    /// Secondary CPU time over the measured window — the "absolute
    /// progress" of the batch job (a pure-compute bully's progress is
    /// proportional to its CPU time).
    pub secondary_cpu: SimDuration,
    /// Fan-out workers spawned per query on average.
    pub avg_fanout: f64,
    /// Machine scheduler counters (whole run).
    pub machine: MachineStats,
    /// Controller counters, when PerfIso ran.
    pub controller: Option<ControllerStats>,
    /// Executed fault-injection timeline, when a chaos plan ran.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<FaultRecord>,
    /// Per-service breakdown. Populated only for boxes with an explicit
    /// service roster; empty (and absent from JSON) on classic
    /// single-service runs, so pre-roster reports parse unchanged.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub services: Vec<ServiceReport>,
    /// The sketch estimate of the latency distribution plus its error
    /// bound. Present only when the box ran with
    /// [`TelemetryMode::Sketch`]; exact-mode reports (every pre-sketch
    /// fixture) omit the key, so their JSON is unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency_sketch: Option<SketchSummary>,
    /// Resilience-mechanism counters (admission sheds, retries, hedges,
    /// breaker trips, deadline cancels). Present only when a mechanism
    /// actually fired, so pre-resilience reports serialize unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resilience: Option<ResilienceStats>,
}

impl BoxReport {
    /// Drop ratio over the measured window.
    pub fn drop_ratio(&self) -> f64 {
        self.latency.drop_ratio()
    }
}

/// Per-service offered load for a multi-primary run (see [`run_multi`]).
#[derive(Clone, Debug)]
pub struct ServicePlan {
    /// Offered load in queries/second.
    pub qps: f64,
    /// Trace-generation parameters (the query count is derived).
    pub trace: TraceConfig,
}

impl ServicePlan {
    /// A plan offering `qps` with default trace parameters.
    pub fn at_qps(qps: f64) -> Self {
        ServicePlan {
            qps,
            trace: TraceConfig::default(),
        }
    }
}

/// Latency recorders for one box run: the merged stream plus one
/// recorder per hosted service.
struct RunRecorders {
    overall: LatencyRecorder,
    per_service: Vec<LatencyRecorder>,
    warmup_end: SimTime,
}

impl RunRecorders {
    fn new(services: usize, warmup_end: SimTime, mode: TelemetryMode) -> Self {
        RunRecorders {
            overall: mode.recorder(),
            per_service: (0..services).map(|_| mode.recorder()).collect(),
            warmup_end,
        }
    }

    /// Drains box events, recording measured-window completions into the
    /// merged and per-service recorders.
    fn drain(&mut self, sim: &mut BoxSim, events: &mut Vec<BoxEvent>) {
        sim.drain_events_into(events);
        for ev in events.drain(..) {
            if let BoxEvent::QueryDone(out) = ev {
                if out.arrival >= self.warmup_end {
                    let svc = &mut self.per_service[out.service as usize];
                    if out.dropped {
                        self.overall.record_dropped();
                        svc.record_dropped();
                    } else {
                        self.overall.record(out.latency);
                        svc.record(out.latency);
                    }
                }
            }
        }
    }
}

/// Builds the per-service report rows; empty unless the box was
/// configured with an explicit roster (so classic reports are unchanged).
fn service_rows(
    sim: &BoxSim,
    rec: &mut RunRecorders,
    qps_of: impl Fn(usize) -> f64,
) -> Vec<ServiceReport> {
    if sim.cfg.hosted.is_empty() {
        return Vec::new();
    }
    rec.per_service
        .iter_mut()
        .enumerate()
        .map(|(i, r)| ServiceReport {
            name: sim.service_name(i).to_string(),
            qps: qps_of(i),
            latency: r.summary(),
            cpu_time: sim.service_cpu_time(i),
        })
        .collect()
}

/// Runs one standalone single-box experiment.
pub fn run_standalone(cfg: BoxConfig, plan: &RunPlan) -> BoxReport {
    let total = plan.warmup + plan.measure;
    let n_queries = (plan.qps * total.as_secs_f64() * 1.05) as usize + 16;
    let trace = TraceGenerator::new(TraceConfig {
        queries: n_queries,
        ..plan.trace.clone()
    })
    .generate(cfg.seed ^ 0x7ACE);
    let mut client = OpenLoopClient::new(trace, plan.qps, cfg.seed ^ 0xC1);
    let mut sim = BoxSim::new(cfg);

    let warmup_end = SimTime::ZERO + plan.warmup;
    let end = SimTime::ZERO + total;
    let mut rec = RunRecorders::new(sim.service_count(), warmup_end, sim.cfg.telemetry);
    let mut warm_snapshot: Option<(CpuBreakdown, SimDuration)> = None;
    let mut queries_measured = 0u64;
    let mut workers_at_warm = 0u64;
    let mut events: Vec<BoxEvent> = Vec::with_capacity(64);

    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        if warm_snapshot.is_none() && at >= warmup_end {
            sim.advance_to(warmup_end);
            rec.drain(&mut sim, &mut events);
            warm_snapshot = Some((sim.breakdown(), sim.secondary_cpu_time()));
            workers_at_warm = sim.workers_spawned();
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
        rec.drain(&mut sim, &mut events);
        if at >= warmup_end {
            queries_measured += 1;
        }
    }
    if warm_snapshot.is_none() {
        sim.advance_to(warmup_end);
        rec.drain(&mut sim, &mut events);
        warm_snapshot = Some((sim.breakdown(), sim.secondary_cpu_time()));
        workers_at_warm = sim.workers_spawned();
    }
    // Let the tail drain one timeout beyond the end so nothing hangs.
    sim.advance_to(end + sim.max_timeout());
    rec.drain(&mut sim, &mut events);

    let (warm_bd, warm_sec_cpu) = warm_snapshot.expect("snapshot taken");
    let final_bd = sim.breakdown();
    let services = service_rows(&sim, &mut rec, |i| if i == 0 { plan.qps } else { 0.0 });
    BoxReport {
        qps: plan.qps,
        latency: rec.overall.summary(),
        latency_sketch: rec.overall.sketch_summary(),
        breakdown: final_bd.since(&warm_bd),
        secondary_cpu: sim.secondary_cpu_time().saturating_sub(warm_sec_cpu),
        avg_fanout: if queries_measured == 0 {
            0.0
        } else {
            (sim.workers_spawned() - workers_at_warm) as f64 / queries_measured as f64
        },
        machine: sim.machine_stats(),
        controller: sim.controller_stats(),
        faults: sim.take_fault_records(),
        services,
        resilience: sim.resilience_report(),
    }
}

/// Runs one multi-primary box experiment: every hosted service gets its
/// own open-loop client at its own offered load, arrivals are merged in
/// time order (ties break toward the lower slot), and the report carries
/// both the merged and the per-service latency views — the measurement
/// surface for PerfIso arbitrating between colocated latency-sensitive
/// services.
///
/// # Panics
///
/// Panics unless `plans` has exactly one entry per hosted service.
pub fn run_multi(
    cfg: BoxConfig,
    plans: &[ServicePlan],
    warmup: SimDuration,
    measure: SimDuration,
) -> BoxReport {
    let seed = cfg.seed;
    let mut sim = BoxSim::new(cfg);
    assert_eq!(
        plans.len(),
        sim.service_count(),
        "one ServicePlan per hosted service"
    );
    let total = warmup + measure;
    let warmup_end = SimTime::ZERO + warmup;
    let end = SimTime::ZERO + total;
    // Per-service trace/client seed streams, salted by slot so no two
    // services replay correlated arrival processes.
    let mut clients: Vec<OpenLoopClient> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let n_queries = (p.qps * total.as_secs_f64() * 1.05) as usize + 16;
            let trace = TraceGenerator::new(TraceConfig {
                queries: n_queries,
                ..p.trace.clone()
            })
            .generate(seed ^ 0x7ACE ^ ((i as u64) << 16));
            OpenLoopClient::new(trace, p.qps, seed ^ 0xC1 ^ ((i as u64) << 16))
        })
        .collect();

    let mut rec = RunRecorders::new(sim.service_count(), warmup_end, sim.cfg.telemetry);
    let mut warm_snapshot: Option<(CpuBreakdown, SimDuration)> = None;
    let mut queries_measured = 0u64;
    let mut workers_at_warm = 0u64;
    let mut events: Vec<BoxEvent> = Vec::with_capacity(64);

    loop {
        // Earliest next arrival across services (strict `<`: ties go to
        // the lowest slot, keeping the merge deterministic).
        let mut best: Option<(usize, SimTime)> = None;
        for (i, c) in clients.iter_mut().enumerate() {
            if let Some(at) = c.next_arrival_time() {
                if at <= end && best.is_none_or(|(_, b)| at < b) {
                    best = Some((i, at));
                }
            }
        }
        let Some((svc, at)) = best else {
            break;
        };
        if warm_snapshot.is_none() && at >= warmup_end {
            sim.advance_to(warmup_end);
            rec.drain(&mut sim, &mut events);
            warm_snapshot = Some((sim.breakdown(), sim.secondary_cpu_time()));
            workers_at_warm = sim.workers_spawned();
        }
        let (_, spec) = clients[svc].pop().expect("peeked");
        sim.inject_query_for(svc, at, spec);
        rec.drain(&mut sim, &mut events);
        if at >= warmup_end {
            queries_measured += 1;
        }
    }
    if warm_snapshot.is_none() {
        sim.advance_to(warmup_end);
        rec.drain(&mut sim, &mut events);
        warm_snapshot = Some((sim.breakdown(), sim.secondary_cpu_time()));
        workers_at_warm = sim.workers_spawned();
    }
    sim.advance_to(end + sim.max_timeout());
    rec.drain(&mut sim, &mut events);

    let (warm_bd, warm_sec_cpu) = warm_snapshot.expect("snapshot taken");
    let final_bd = sim.breakdown();
    let services = service_rows(&sim, &mut rec, |i| plans[i].qps);
    BoxReport {
        qps: plans.iter().map(|p| p.qps).sum(),
        latency: rec.overall.summary(),
        latency_sketch: rec.overall.sketch_summary(),
        breakdown: final_bd.since(&warm_bd),
        secondary_cpu: sim.secondary_cpu_time().saturating_sub(warm_sec_cpu),
        avg_fanout: if queries_measured == 0 {
            0.0
        } else {
            (sim.workers_spawned() - workers_at_warm) as f64 / queries_measured as f64
        },
        machine: sim.machine_stats(),
        controller: sim.controller_stats(),
        faults: sim.take_fault_records(),
        services,
        resilience: sim.resilience_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_plan(qps: f64) -> RunPlan {
        RunPlan {
            qps,
            warmup: SimDuration::from_millis(300),
            measure: SimDuration::from_millis(1_500),
            trace: TraceConfig::default(),
        }
    }

    #[test]
    fn standalone_box_completes_queries() {
        let cfg = BoxConfig::paper_box(SecondaryKind::none(), None, 42);
        let r = run_standalone(cfg, &quick_plan(2_000.0));
        assert!(r.latency.count > 2_000, "completed {}", r.latency.count);
        assert!(r.drop_ratio() < 0.005, "drops {}", r.drop_ratio());
        // Standalone at 2000 QPS: mostly idle machine.
        assert!(
            r.breakdown.idle_fraction() > 0.6,
            "{}",
            r.breakdown.to_percent_string()
        );
        assert!(r.latency.p50 > SimDuration::from_micros(500));
        assert!(r.latency.p50 < SimDuration::from_millis(10));
    }

    #[test]
    fn bully_without_isolation_hurts_tail() {
        let base = run_standalone(
            BoxConfig::paper_box(SecondaryKind::none(), None, 7),
            &quick_plan(2_000.0),
        );
        let colo = run_standalone(
            BoxConfig::paper_box(SecondaryKind::cpu(BullyIntensity::High), None, 7),
            &quick_plan(2_000.0),
        );
        assert!(
            colo.latency.p99 > base.latency.p99 + SimDuration::from_millis(3),
            "colocated p99 {} vs standalone {}",
            colo.latency.p99,
            base.latency.p99
        );
        assert!(colo.secondary_cpu > SimDuration::ZERO);
    }

    #[test]
    fn blind_isolation_protects_tail() {
        let base = run_standalone(
            BoxConfig::paper_box(SecondaryKind::none(), None, 9),
            &quick_plan(2_000.0),
        );
        let iso = run_standalone(
            BoxConfig::paper_box(
                SecondaryKind::cpu(BullyIntensity::High),
                Some(PerfIsoConfig::default()),
                9,
            ),
            &quick_plan(2_000.0),
        );
        let degradation = iso.latency.p99.saturating_sub(base.latency.p99);
        assert!(
            degradation < SimDuration::from_millis(2),
            "blind isolation degradation {degradation} (iso {} base {})",
            iso.latency.p99,
            base.latency.p99
        );
        // And the secondary still makes progress: with B=8 on a mostly-idle
        // 48-core machine it should soak tens of core-seconds per second.
        assert!(
            iso.secondary_cpu > SimDuration::from_secs(10),
            "secondary cpu {}",
            iso.secondary_cpu
        );
    }

    #[test]
    fn disk_bully_box_runs() {
        let cfg = BoxConfig::paper_box(
            SecondaryKind::disk(DiskBully::default()),
            Some(PerfIsoConfig::paper_cluster()),
            11,
        );
        let r = run_standalone(cfg, &quick_plan(1_000.0));
        assert!(r.latency.count > 1_000);
        assert!(r.drop_ratio() < 0.01);
    }
}
