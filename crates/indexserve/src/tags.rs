//! Thread-tag and I/O-token encodings used by the machine driver.
//!
//! Machine outputs carry a `u64` user tag per thread; disk completions echo
//! a `u64` token. These helpers pack stage/query/worker identifiers and
//! wakeable thread handles into those words.

use simcpu::ThreadId;

/// Query pipeline stages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Query parsing.
    Parse,
    /// A fan-out matcher worker.
    Worker,
    /// The ranking stage.
    Rank,
    /// Final aggregation.
    Aggregate,
}

const STAGE_SHIFT: u32 = 56;
const QUERY_SHIFT: u32 = 16;

/// Bit marking a tag as belonging to a primary (latency-sensitive) service.
pub const PRIMARY_BIT: u64 = 1 << 62;

/// Shift of the 2-bit per-box service index (bits 60..62, between the
/// stage nibble and `PRIMARY_BIT`). Service 0 tags are bit-identical to
/// the single-service encoding.
pub const SERVICE_SHIFT: u32 = 60;

/// Maximum number of primary services one box can host (2 index bits).
pub const MAX_SERVICES: usize = 4;

/// Packs a service index into tag bits; OR this into any primary tag.
pub fn service_bits(service: u8) -> u64 {
    debug_assert!((service as usize) < MAX_SERVICES);
    (service as u64) << SERVICE_SHIFT
}

/// Extracts the service index from a primary tag.
pub fn tag_service(tag: u64) -> u8 {
    ((tag >> SERVICE_SHIFT) & 0x3) as u8
}

/// Packs a primary-tenant stage tag.
pub fn stage_tag(stage: Stage, query_idx: u64, worker_idx: u16) -> u64 {
    let s = match stage {
        Stage::Parse => 1u64,
        Stage::Worker => 2,
        Stage::Rank => 3,
        Stage::Aggregate => 4,
    };
    PRIMARY_BIT | (s << STAGE_SHIFT) | (query_idx << QUERY_SHIFT) | worker_idx as u64
}

/// Unpacks a primary stage tag; `None` for non-primary tags.
pub fn parse_stage_tag(tag: u64) -> Option<(Stage, u64, u16)> {
    if tag & PRIMARY_BIT == 0 {
        return None;
    }
    let stage = match (tag >> STAGE_SHIFT) & 0xF {
        1 => Stage::Parse,
        2 => Stage::Worker,
        3 => Stage::Rank,
        4 => Stage::Aggregate,
        _ => return None,
    };
    let query = (tag >> QUERY_SHIFT) & ((1 << (STAGE_SHIFT - QUERY_SHIFT - 2)) - 1);
    Some((stage, query, (tag & 0xFFFF) as u16))
}

/// Packs a thread handle into a disk-completion token that requests a wake.
pub fn wake_token(tid: ThreadId) -> u64 {
    (1 << 63) | ((tid.index as u64) << 32) | tid.gen as u64
}

/// Decodes a wake token; `None` for fire-and-forget tokens.
pub fn parse_wake_token(token: u64) -> Option<ThreadId> {
    if token & (1 << 63) == 0 {
        return None;
    }
    Some(ThreadId {
        index: ((token >> 32) & 0x7FFF_FFFF) as u32,
        gen: token as u32,
    })
}

/// A fire-and-forget token (logging writes, background HDFS traffic).
pub const FIRE_AND_FORGET: u64 = 0;

/// Tag base for auxiliary primary-tenant threads (e.g. MLA aggregation work
/// the cluster layer runs on an index machine).
pub const AUX_TAG_BASE: u64 = 1 << 46;

/// Builds an auxiliary-thread tag carrying a user value below `1 << 40`.
pub fn aux_tag(user: u64) -> u64 {
    debug_assert!(user < (1 << 40));
    AUX_TAG_BASE | user
}

/// Extracts the user value from an auxiliary tag, if it is one.
pub fn parse_aux_tag(tag: u64) -> Option<u64> {
    // Primary stage tags carry bit 62; bully tags sit at bits 40..44.
    if tag & AUX_TAG_BASE != 0 && tag & (1 << 62) == 0 {
        Some(tag & ((1 << 40) - 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tag_roundtrip() {
        for (stage, q, w) in [
            (Stage::Parse, 0u64, 0u16),
            (Stage::Worker, 123_456, 14),
            (Stage::Rank, 999_999, 0),
            (Stage::Aggregate, 1, 65_535),
        ] {
            let tag = stage_tag(stage, q, w);
            let (s2, q2, w2) = parse_stage_tag(tag).unwrap();
            assert_eq!(s2, stage);
            assert_eq!(q2, q);
            assert_eq!(w2, w);
        }
    }

    #[test]
    fn non_primary_tags_rejected() {
        assert!(parse_stage_tag(0).is_none());
        assert!(parse_stage_tag(workloads::cpu_bully::CPU_BULLY_TAG_BASE).is_none());
    }

    #[test]
    fn wake_token_roundtrip() {
        let tid = ThreadId { index: 77, gen: 3 };
        assert_eq!(parse_wake_token(wake_token(tid)), Some(tid));
        assert_eq!(parse_wake_token(FIRE_AND_FORGET), None);
    }

    #[test]
    fn tag_spaces_disjoint() {
        let t = stage_tag(Stage::Worker, 42, 1);
        assert_ne!(t & workloads::cpu_bully::CPU_BULLY_TAG_BASE, t);
        assert!(parse_stage_tag(workloads::disk_bully::DISK_BULLY_TAG_BASE).is_none());
    }

    #[test]
    fn service_bits_do_not_disturb_stage_fields() {
        let base = stage_tag(Stage::Rank, 9_999, 7);
        for svc in 0..MAX_SERVICES as u8 {
            let tag = base | service_bits(svc);
            assert_eq!(tag_service(tag), svc);
            assert_eq!(parse_stage_tag(tag), Some((Stage::Rank, 9_999, 7)));
        }
        // Service 0 is the identity encoding.
        assert_eq!(base | service_bits(0), base);
    }
}
