//! Box-level checkpoint/rollback: snapshot → speculate → restore must be
//! observationally identical to a box that never speculated. This is the
//! whole-box guarantee speculative cluster sync rests on; the per-layer
//! halves live in `simcore` and `simcpu` property tests.

use indexserve::boxsim::{BoxConfig, BoxEvent, BoxSim, SecondaryKind};
use perfiso::PerfIsoConfig;
use qtrace::{TraceConfig, TraceGenerator};
use simcore::{SimDuration, SimTime};
use workloads::disk_bully::DiskBully;
use workloads::BullyIntensity;

/// The busiest paper box: CPU bully + disk bully + HDFS under PerfIso —
/// exercises machine, disk, controller, and RNG state in the snapshot.
fn busy_box(seed: u64) -> BoxSim {
    let cfg = BoxConfig::paper_box(
        SecondaryKind {
            cpu_bully: Some(BullyIntensity::Mid),
            disk_bully: Some(DiskBully::default()),
            hdfs: true,
        },
        Some(PerfIsoConfig::paper_cluster()),
        seed,
    );
    BoxSim::new(cfg)
}

/// Comparable record of one drained box event.
type Obs = Vec<(u8, u64, u64, u64, bool)>;

fn flatten(events: Vec<BoxEvent>) -> Obs {
    events
        .into_iter()
        .map(|e| match e {
            BoxEvent::QueryDone(o) => (
                0u8,
                o.qidx,
                o.arrival.since(SimTime::ZERO).as_nanos(),
                o.latency.as_nanos(),
                o.dropped,
            ),
            BoxEvent::AuxDone(u) => (1u8, u, 0, 0, false),
        })
        .collect()
}

#[test]
fn snapshot_restore_replays_identically() {
    let trace = TraceGenerator::new(TraceConfig {
        queries: 400,
        ..TraceConfig::default()
    })
    .generate(0x7ACE);
    // Deterministic arrival schedule: 2000 QPS uniform.
    let arrivals: Vec<(SimTime, qtrace::QuerySpec)> = trace
        .iter()
        .enumerate()
        .map(|(i, s)| (SimTime::from_micros(500 * (i as u64 + 1)), s.clone()))
        .collect();

    let mut live = busy_box(77);
    let mut control = busy_box(77);

    let (head, tail) = arrivals.split_at(150);
    for (at, spec) in head {
        live.inject_query(*at, spec.clone());
        control.inject_query(*at, spec.clone());
    }
    let a = flatten(live.drain_events());
    let b = flatten(control.drain_events());
    assert_eq!(a, b, "identical boxes diverged before the snapshot");

    let snap = live.snapshot().expect("paper box is snapshotable");

    // Speculate: feed the tail early and run far ahead, then roll back.
    for (at, spec) in tail.iter().take(100) {
        live.inject_query(*at, spec.clone());
    }
    live.advance_to(SimTime::from_millis(400));
    live.drain_events();
    live.restore(&snap);
    assert_eq!(live.now(), control.now());

    // Replay the real schedule on both; every observable must match.
    for (at, spec) in tail {
        live.inject_query(*at, spec.clone());
        control.inject_query(*at, spec.clone());
    }
    let end =
        arrivals.last().expect("nonempty").0 + live.max_timeout() + SimDuration::from_millis(50);
    live.advance_to(end);
    control.advance_to(end);
    let x = flatten(live.drain_events());
    let y = flatten(control.drain_events());
    assert!(!x.is_empty(), "no events observed");
    assert_eq!(x, y, "post-restore event stream diverged");
    assert_eq!(live.breakdown(), control.breakdown());
    assert_eq!(live.machine_stats(), control.machine_stats());
    assert_eq!(live.secondary_cpu_time(), control.secondary_cpu_time());
    assert_eq!(
        live.controller_stats().map(|s| s.affinity_updates),
        control.controller_stats().map(|s| s.affinity_updates)
    );
    let (lp, cp) = (
        live.cpu_bully().expect("bully").progress_chunks(),
        control.cpu_bully().expect("bully").progress_chunks(),
    );
    assert_eq!(lp, cp, "bully progress did not roll back");
}

#[test]
fn snapshot_is_reusable() {
    let trace = TraceGenerator::new(TraceConfig {
        queries: 120,
        ..TraceConfig::default()
    })
    .generate(0x7ACE);
    let mut b = busy_box(31);
    for (i, spec) in trace.iter().take(60).enumerate() {
        b.inject_query(SimTime::from_micros(700 * (i as u64 + 1)), spec.clone());
    }
    b.drain_events();
    let snap = b.snapshot().expect("snapshotable");

    let end = SimTime::from_millis(300);
    let mut first: Option<Obs> = None;
    for _ in 0..3 {
        b.restore(&snap);
        b.advance_to(end);
        let got = flatten(b.drain_events());
        match &first {
            None => first = Some(got),
            Some(f) => assert_eq!(&got, f, "restores of one snapshot diverged"),
        }
    }
}
