//! Deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`, where `sequence` is a
//! monotonically increasing tiebreaker assigned at push time. Two events at
//! the same instant therefore pop in insertion order, which keeps whole-system
//! runs bit-for-bit reproducible for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: payload `E` scheduled at a given [`SimTime`].
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the `BinaryHeap` (a max-heap) pops the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use simcore::{queue::EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), 'b');
/// q.push(SimTime::from_micros(5), 'c');
/// q.push(SimTime::from_micros(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at time `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(5), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        /// Popping must yield a non-decreasing sequence of timestamps, and
        /// within one timestamp the original insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }

        /// The queue must return exactly the multiset of pushed payloads.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
