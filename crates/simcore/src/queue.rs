//! Deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`, where `sequence` is a
//! monotonically increasing tiebreaker assigned at push time. Two events at
//! the same instant therefore pop in insertion order, which keeps whole-system
//! runs bit-for-bit reproducible for a fixed seed.
//!
//! Storage is a hierarchical timer wheel ([`crate::wheel`]) rather than a
//! binary heap: pushes and pops are O(1) amortized instead of O(log n), and
//! [`EventQueue::pop_before`] lets advance loops consume due events in a
//! single traversal. The pop order is contractually identical to the
//! `(time, seq)` total order the former heap produced.

use crate::snapshot::Snapshot;
use crate::time::SimTime;
use crate::wheel::{Wheel, WheelState};

/// A timer wheel of timestamped events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use simcore::{queue::EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_micros(5), 'b');
/// q.push(SimTime::from_micros(5), 'c');
/// q.push(SimTime::from_micros(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Clone)]
pub struct EventQueue<E> {
    wheel: Wheel<E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: Wheel::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            wheel: Wheel::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at time `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.push(at, seq, payload);
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.wheel.pop()
    }

    /// Removes and returns the earliest event if it is due at or before `t`;
    /// leaves the queue untouched otherwise.
    ///
    /// The one-traversal idiom for advance loops:
    ///
    /// ```
    /// use simcore::{queue::EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// q.push(SimTime::from_micros(1), "due");
    /// q.push(SimTime::from_micros(9), "later");
    /// let horizon = SimTime::from_micros(5);
    /// while let Some((_at, ev)) = q.pop_before(horizon) {
    ///     assert_eq!(ev, "due");
    /// }
    /// assert_eq!(q.len(), 1);
    /// ```
    #[inline]
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        self.wheel.pop_before(t)
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Costs a scan of the earliest wheel bucket; loops that would peek and
    /// then pop should use [`EventQueue::pop_before`] instead.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.wheel.peek_time()
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Drops all pending events and resets the sequence counter, leaving the
    /// queue observationally identical to a freshly constructed one (only
    /// internal buffer capacities are retained). In particular, FIFO
    /// tie-break order after a `clear` matches a fresh queue's, so runs that
    /// reuse queues stay deterministic.
    pub fn clear(&mut self) {
        self.wheel.clear();
        self.next_seq = 0;
    }
}

/// A deep copy of an [`EventQueue`]'s state, taken by [`Snapshot::save`].
///
/// Restoring reproduces both the exact `(time, seq)` pop order of the
/// pending events and the sequence counter, so events pushed *after* a
/// restore tie-break exactly as they would have in a never-rolled-back run.
pub struct EventQueueState<E> {
    wheel: WheelState<E>,
    next_seq: u64,
}

impl<E: Clone> Clone for EventQueueState<E> {
    fn clone(&self) -> Self {
        EventQueueState {
            wheel: self.wheel.clone(),
            next_seq: self.next_seq,
        }
    }
}

impl<E: Clone> Snapshot for EventQueue<E> {
    type State = EventQueueState<E>;

    fn save(&self) -> EventQueueState<E> {
        EventQueueState {
            wheel: self.wheel.save(),
            next_seq: self.next_seq,
        }
    }

    fn restore(&mut self, state: &EventQueueState<E>) {
        self.wheel.restore(&state.wheel);
        self.next_seq = state.next_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(5), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), 'a');
        q.push(SimTime::from_millis(3), 'b');
        assert_eq!(q.pop_before(SimTime::from_millis(2)).unwrap().1, 'a');
        assert_eq!(q.pop_before(SimTime::from_millis(2)), None);
        assert_eq!(q.len(), 1);
        // Inclusive bound: an event exactly at `t` is due.
        assert_eq!(q.pop_before(SimTime::from_millis(3)).unwrap().1, 'b');
        assert_eq!(q.pop_before(SimTime::MAX), None);
    }

    /// Regression test: `clear` must reset the FIFO sequence counter, so a
    /// cleared queue that is refilled pops in exactly the order a fresh
    /// queue would (reused queues across runs stay deterministic).
    #[test]
    fn cleared_queue_is_observationally_fresh() {
        let t = SimTime::from_micros(42);
        let mut reused = EventQueue::new();
        for i in 0..10 {
            reused.push(t, i);
        }
        reused.pop();
        reused.clear();

        let mut fresh = EventQueue::new();
        for i in 0..10 {
            reused.push(t, 100 + i);
            fresh.push(t, 100 + i);
        }
        loop {
            let (a, b) = (reused.pop(), fresh.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Popping must yield a non-decreasing sequence of timestamps, and
        /// within one timestamp the original insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }

        /// The queue must return exactly the multiset of pushed payloads.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..50, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
