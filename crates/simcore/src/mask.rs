//! Core bitmask arithmetic.
//!
//! The idle-core system call that blind isolation polls (§3.1.1 of the
//! paper) "returns a bit mask with the bits corresponding to the idle CPUs'
//! ids set"; affinity restriction takes the same shape. Machines are capped
//! at 64 logical cores, which covers the paper's 48-core servers.

use serde::{Deserialize, Serialize};

use crate::ids::CoreId;

/// A set of logical cores, stored as a 64-bit mask.
///
/// # Examples
///
/// ```
/// use simcore::CoreMask;
///
/// let all = CoreMask::all(8);
/// let low = CoreMask::range(0, 4);
/// assert_eq!(all.count(), 8);
/// assert_eq!(all.difference(low).count(), 4);
/// assert!(low.contains(simcore::CoreId(3)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CoreMask(pub u64);

impl CoreMask {
    /// The empty set.
    pub const EMPTY: CoreMask = CoreMask(0);

    /// A mask with the lowest `n` cores set.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn all(n: u32) -> CoreMask {
        assert!(n <= 64, "at most 64 cores supported: {n}");
        if n == 64 {
            CoreMask(u64::MAX)
        } else {
            CoreMask((1u64 << n) - 1)
        }
    }

    /// A mask with cores `lo..hi` set.
    ///
    /// # Panics
    ///
    /// Panics if `hi > 64` or `lo > hi`.
    pub fn range(lo: u32, hi: u32) -> CoreMask {
        assert!(hi <= 64 && lo <= hi, "bad core range {lo}..{hi}");
        CoreMask(Self::all(hi).0 & !Self::all(lo).0)
    }

    /// A mask containing exactly one core.
    ///
    /// # Panics
    ///
    /// Panics if `core.0 >= 64`.
    pub fn single(core: CoreId) -> CoreMask {
        assert!(core.0 < 64, "core id out of range: {}", core.0);
        CoreMask(1u64 << core.0)
    }

    /// Builds a mask from core ids.
    pub fn from_cores(cores: &[CoreId]) -> CoreMask {
        let mut m = CoreMask::EMPTY;
        for &c in cores {
            m = m.with(c);
        }
        m
    }

    /// Number of cores in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True when the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when `core` is in the set.
    pub fn contains(self, core: CoreId) -> bool {
        core.0 < 64 && self.0 & (1u64 << core.0) != 0
    }

    /// Returns the set plus `core`.
    pub fn with(self, core: CoreId) -> CoreMask {
        CoreMask(self.0 | CoreMask::single(core).0)
    }

    /// Returns the set minus `core`.
    pub fn without(self, core: CoreId) -> CoreMask {
        CoreMask(self.0 & !CoreMask::single(core).0)
    }

    /// Set intersection.
    pub fn intersection(self, other: CoreMask) -> CoreMask {
        CoreMask(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: CoreMask) -> CoreMask {
        CoreMask(self.0 | other.0)
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(self, other: CoreMask) -> CoreMask {
        CoreMask(self.0 & !other.0)
    }

    /// The lowest-numbered core in the set, if any.
    pub fn lowest(self) -> Option<CoreId> {
        if self.0 == 0 {
            None
        } else {
            Some(CoreId(self.0.trailing_zeros() as u16))
        }
    }

    /// The highest-numbered core in the set, if any.
    pub fn highest(self) -> Option<CoreId> {
        if self.0 == 0 {
            None
        } else {
            Some(CoreId(63 - self.0.leading_zeros() as u16))
        }
    }

    /// The `n` lowest-numbered cores of the set (all of them if fewer).
    pub fn take_lowest(self, n: u32) -> CoreMask {
        let mut out = CoreMask::EMPTY;
        let mut rest = self;
        for _ in 0..n {
            match rest.lowest() {
                Some(c) => {
                    out = out.with(c);
                    rest = rest.without(c);
                }
                None => break,
            }
        }
        out
    }

    /// The `n` highest-numbered cores of the set (all of them if fewer).
    pub fn take_highest(self, n: u32) -> CoreMask {
        let mut out = CoreMask::EMPTY;
        let mut rest = self;
        for _ in 0..n {
            match rest.highest() {
                Some(c) => {
                    out = out.with(c);
                    rest = rest.without(c);
                }
                None => break,
            }
        }
        out
    }

    /// Iterates core ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = CoreId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let c = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(CoreId(c))
            }
        })
    }
}

impl std::fmt::Debug for CoreMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoreMask({:#018x}, n={})", self.0, self.count())
    }
}

impl std::fmt::Display for CoreMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_and_range() {
        assert_eq!(CoreMask::all(0), CoreMask::EMPTY);
        assert_eq!(CoreMask::all(64).count(), 64);
        assert_eq!(CoreMask::all(48).count(), 48);
        assert_eq!(CoreMask::range(4, 8).count(), 4);
        assert!(CoreMask::range(4, 8).contains(CoreId(4)));
        assert!(!CoreMask::range(4, 8).contains(CoreId(8)));
    }

    #[test]
    fn with_without_roundtrip() {
        let m = CoreMask::EMPTY.with(CoreId(5)).with(CoreId(9));
        assert_eq!(m.count(), 2);
        assert!(m.contains(CoreId(5)));
        assert_eq!(m.without(CoreId(5)).count(), 1);
        assert_eq!(m.without(CoreId(5)).without(CoreId(9)), CoreMask::EMPTY);
    }

    #[test]
    fn set_algebra() {
        let a = CoreMask::range(0, 8);
        let b = CoreMask::range(4, 12);
        assert_eq!(a.intersection(b), CoreMask::range(4, 8));
        assert_eq!(a.union(b), CoreMask::range(0, 12));
        assert_eq!(a.difference(b), CoreMask::range(0, 4));
    }

    #[test]
    fn lowest_highest() {
        let m = CoreMask::from_cores(&[CoreId(3), CoreId(17), CoreId(42)]);
        assert_eq!(m.lowest(), Some(CoreId(3)));
        assert_eq!(m.highest(), Some(CoreId(42)));
        assert_eq!(CoreMask::EMPTY.lowest(), None);
    }

    #[test]
    fn take_lowest_highest() {
        let m = CoreMask::range(0, 10);
        assert_eq!(m.take_lowest(3), CoreMask::range(0, 3));
        assert_eq!(m.take_highest(3), CoreMask::range(7, 10));
        assert_eq!(m.take_lowest(100), m);
    }

    #[test]
    fn iteration_ascending() {
        let m = CoreMask::from_cores(&[CoreId(9), CoreId(1), CoreId(4)]);
        let ids: Vec<u16> = m.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![1, 4, 9]);
    }

    #[test]
    fn display_lists_cores() {
        let m = CoreMask::from_cores(&[CoreId(0), CoreId(2)]);
        assert_eq!(format!("{m}"), "{0,2}");
    }

    proptest! {
        /// Union/intersection/difference behave like sets of indices.
        #[test]
        fn prop_set_semantics(a in any::<u64>(), b in any::<u64>()) {
            let (ma, mb) = (CoreMask(a), CoreMask(b));
            for i in 0..64u16 {
                let c = CoreId(i);
                prop_assert_eq!(ma.union(mb).contains(c), ma.contains(c) || mb.contains(c));
                prop_assert_eq!(ma.intersection(mb).contains(c), ma.contains(c) && mb.contains(c));
                prop_assert_eq!(ma.difference(mb).contains(c), ma.contains(c) && !mb.contains(c));
            }
        }

        /// take_lowest returns exactly min(n, count) of the smallest members.
        #[test]
        fn prop_take_lowest(bits in any::<u64>(), n in 0u32..70) {
            let m = CoreMask(bits);
            let t = m.take_lowest(n);
            prop_assert_eq!(t.count(), n.min(m.count()));
            prop_assert_eq!(t.intersection(m), t);
            // Every non-member of t that is a member of m is larger than all of t.
            if let Some(hi) = t.highest() {
                for c in m.difference(t).iter() {
                    prop_assert!(c.0 > hi.0);
                }
            }
        }

        /// Iteration visits each set bit exactly once, in order.
        #[test]
        fn prop_iter_matches_count(bits in any::<u64>()) {
            let m = CoreMask(bits);
            let v: Vec<u16> = m.iter().map(|c| c.0).collect();
            prop_assert_eq!(v.len() as u32, m.count());
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted, v);
        }
    }
}
