//! Deterministic pseudo-random number generation.
//!
//! Simulations must be bit-for-bit reproducible for a fixed seed, across
//! platforms and dependency upgrades, so the generator is implemented here
//! rather than borrowed from an external crate: xoshiro256++ seeded through
//! SplitMix64 (the reference seeding procedure recommended by its authors).

use serde::{Deserialize, Serialize};

/// A deterministic xoshiro256++ generator.
///
/// # Examples
///
/// ```
/// use simcore::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent sub-stream, e.g. one per machine or per tenant.
    ///
    /// Forking with distinct `stream` values from the same parent yields
    /// statistically independent generators while preserving reproducibility.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from_u64(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `(0, 1]`; safe as input to `ln()`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform integer in `[lo, hi)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty inclusive range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        self.range_u64(lo, hi + 1)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty slice");
        self.range_u64(0, len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(99);
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut f1 = parent1.fork(5);
        let mut f2 = parent2.fork(5);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut parent3 = SimRng::seed_from_u64(99);
        let mut g1 = parent3.fork(6);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_hits_all_values() {
        let mut r = SimRng::seed_from_u64(13);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.range_u64(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.range_u64(5, 5);
    }

    proptest! {
        #[test]
        fn prop_range_in_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 1u64..1_000) {
            let mut r = SimRng::seed_from_u64(seed);
            for _ in 0..32 {
                let v = r.range_u64(lo, lo + span);
                prop_assert!(v >= lo && v < lo + span);
            }
        }

        #[test]
        fn prop_range_f64_in_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, w in 0.001f64..100.0) {
            let mut r = SimRng::seed_from_u64(seed);
            for _ in 0..32 {
                let v = r.range_f64(lo, lo + w);
                prop_assert!(v >= lo && v < lo + w);
            }
        }
    }
}
