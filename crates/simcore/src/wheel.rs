//! Hierarchical timer wheel: the storage engine behind [`EventQueue`].
//!
//! A calendar-queue-style structure replacing the former `BinaryHeap`. The
//! virtual-time axis is divided into *granules* of 2^[`GRANULE_BITS`] ns
//! (~16 µs) and granule indices are hashed into a hierarchy of wheels of
//! [`SLOTS`] slots each: level 0 resolves single granules, and each level
//! above covers [`SLOTS`]× the span of the one below, so nine levels span
//! the full `u64` nanosecond range. An event lands at the lowest level
//! whose current rotation can still distinguish its expiry from the wheel
//! cursor (`floor`); as the cursor advances, higher-level slots *cascade*:
//! their events are re-hashed into the finer levels below.
//!
//! # Storage
//!
//! Events live in one contiguous slab recycled through an internal free
//! list, and each slot is an intrusive singly-linked list threaded through
//! the slab (`next` indices). Every operation relinks indices instead of
//! moving payloads: a push hashes to its slot and prepends in O(1), a
//! cascade relinks one `u32` per event, and a pop min-scans the earliest
//! slot's short list — the few recycled cells stay hot in cache, so the
//! scan is cheaper than heap sifts at the queue sizes the simulators run
//! (tens of pending timers). Each event is touched exactly twice (push,
//! pop) plus at most one relink per level crossed. In steady state the
//! wheel allocates nothing.
//!
//! # Determinism contract
//!
//! Events pop in exactly ascending `(time, seq)` order — bit-identical to
//! the total order the previous `BinaryHeap` core produced. Slot lists are
//! unordered, but every `(time, seq)` key is unique, so the min-scan pop
//! is independent of the path an event took through the levels, and late
//! pushes (behind the cursor, possible only through adversarial queue
//! reuse) keep exact rank through the sorted `overdue` side buffer.
//! Adversarial interleavings of push/pop/clear match the reference heap
//! order (see `tests/prop_wheel.rs`).
//!
//! [`EventQueue`]: crate::queue::EventQueue

use crate::time::SimTime;
use std::cell::Cell;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask selecting a slot index.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// log2 of the level-0 granule width in nanoseconds (2^14 ns ≈ 16 µs).
/// Chosen so the level-0 rotation (64 granules ≈ 1 ms) covers the
/// simulators' common timer horizon — scheduler slice ends, thread wakes,
/// I/O service times — keeping the hot path cascade-free; coarser would
/// funnel events through ever-larger imminent heaps, finer pushes
/// millisecond timers into the cascading levels.
const GRANULE_BITS: u32 = 14;
/// Levels needed so the top level's rotation spans all 2^64 nanoseconds.
const LEVELS: usize = (64 - GRANULE_BITS as usize).div_ceil(SLOT_BITS as usize);

/// Null link / empty slot marker.
const NIL: u32 = u32::MAX;

/// One slab cell: a wheel-resident event threaded into a slot list, or a
/// free-list node awaiting reuse (`payload` is `None` only while free).
#[derive(Clone)]
struct Node<E> {
    at: SimTime,
    seq: u64,
    next: u32,
    payload: Option<E>,
}

/// The hierarchical timer wheel. See the module docs for the layout.
///
/// `repr(C)` with the per-operation metadata — cursor, free list, level
/// bitmap, length, peek cache, and the level-0 occupancy word — packed at
/// the front, so the bookkeeping of a push or pop touches one cache line
/// plus the slot head and the slab cell.
#[derive(Clone)]
#[repr(C)]
pub(crate) struct Wheel<E> {
    /// Granule cursor: the base granule of the currently open level-0
    /// slot. Every event in the wheel expires at granule `>= floor`;
    /// anything earlier is in `overdue`.
    floor: u64,
    /// Free-list head into `nodes`, or `NIL`.
    free: u32,
    /// Bit `l` set ⇔ `occupied[l] != 0`; finds the lowest live level in one
    /// `trailing_zeros`.
    live_levels: u32,
    /// Total pending events (wheel + overdue).
    len: usize,
    /// Lazily recomputed earliest pending expiry ([`Wheel::peek_time`]).
    peek_valid: Cell<bool>,
    peek_at: Cell<Option<SimTime>>,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ slot `s` is non-empty.
    occupied: [u64; LEVELS],
    /// Level-0 slot list heads, inline: the open-window slots that nearly
    /// every push and pop touch stay adjacent to the metadata above.
    heads0: [u32; SLOTS],
    /// Far-future event slab; freed cells are chained through `free`.
    nodes: Vec<Node<E>>,
    /// Levels ≥ 1 slot list heads (`(LEVELS-1) * SLOTS`, row-major), `NIL`
    /// when empty — the cold side of the hierarchy, touched only when an
    /// event skips past the level-0 rotation or cascades back down.
    heads_hi: Box<[u32]>,
    /// Events pushed behind the cursor (possible only when a queue is
    /// driven backwards, e.g. the property tests' adversarial reuse):
    /// slab indices sorted by *descending* `(time, seq)`, popped from the
    /// back. Empty in every forward-running simulator.
    overdue: Vec<u32>,
}

/// A [`Wheel::save`]d deep copy of a wheel's pending-event state.
///
/// Mirrors the wheel's own layout field-for-field (slab included, with free
/// cells as tombstones) so save and restore are flat copies; the transient
/// peek cache is excluded. Restoring into any wheel — same instance or a
/// fresh one — reproduces the exact `(time, seq)` pop order of the source
/// at the moment of the save.
pub(crate) struct WheelState<E> {
    floor: u64,
    free: u32,
    live_levels: u32,
    len: usize,
    occupied: [u64; LEVELS],
    heads0: [u32; SLOTS],
    nodes: Vec<Node<E>>,
    heads_hi: Box<[u32]>,
    overdue: Vec<u32>,
}

impl<E: Clone> Clone for WheelState<E> {
    fn clone(&self) -> Self {
        WheelState {
            floor: self.floor,
            free: self.free,
            live_levels: self.live_levels,
            len: self.len,
            occupied: self.occupied,
            heads0: self.heads0,
            nodes: self.nodes.clone(),
            heads_hi: self.heads_hi.clone(),
            overdue: self.overdue.clone(),
        }
    }
}

/// Granule index of a timestamp.
#[inline]
fn granule(at: SimTime) -> u64 {
    at.as_nanos() >> GRANULE_BITS
}

/// The level whose current rotation distinguishes granule `g` from the
/// cursor `floor`: the highest bit where they differ, divided into 6-bit
/// slot-index groups (the `| SLOT_MASK` folds "no difference" into level 0).
#[inline]
fn level_for(floor: u64, g: u64) -> usize {
    let significant = 63 - ((floor ^ g) | SLOT_MASK).leading_zeros();
    (significant / SLOT_BITS) as usize
}

impl<E> Wheel<E> {
    pub fn new() -> Self {
        Wheel {
            nodes: Vec::new(),
            free: NIL,
            heads0: [NIL; SLOTS],
            heads_hi: vec![NIL; (LEVELS - 1) * SLOTS].into_boxed_slice(),
            occupied: [0; LEVELS],
            live_levels: 0,
            floor: 0,
            overdue: Vec::new(),
            len: 0,
            peek_valid: Cell::new(true),
            peek_at: Cell::new(None),
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        let mut w = Self::new();
        w.nodes.reserve(cap);
        w
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an event. `seq` must be unique across all pending events.
    #[inline]
    pub fn push(&mut self, at: SimTime, seq: u64, payload: E) {
        self.len += 1;
        if self.peek_valid.get() {
            // A push can only move the earliest expiry down.
            let cache = self.peek_at.get().map_or(at, |c| c.min(at));
            self.peek_at.set(Some(cache));
        }
        let node = self.alloc(at, seq, payload);
        if granule(at) < self.floor {
            // Push behind the cursor: merge into the sorted overdue buffer
            // (descending, so the earliest is at the back). Never taken by
            // the forward-running simulators; required so a cleared-and-
            // reused queue behaves exactly like a fresh one.
            let key = (at, seq);
            let idx = self.overdue.partition_point(|&n| {
                let n = &self.nodes[n as usize];
                (n.at, n.seq) > key
            });
            self.overdue.insert(idx, node);
        } else {
            self.link(node, at);
        }
    }

    /// Takes a slab cell off the free list (or grows the slab).
    #[inline]
    fn alloc(&mut self, at: SimTime, seq: u64, payload: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let cell = &mut self.nodes[idx as usize];
            self.free = cell.next;
            cell.at = at;
            cell.seq = seq;
            cell.next = NIL;
            cell.payload = Some(payload);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "event queue slab overflow");
            self.nodes.push(Node {
                at,
                seq,
                next: NIL,
                payload: Some(payload),
            });
            idx
        }
    }

    /// Threads an at-or-after-`floor` node onto its slot list.
    #[inline]
    fn link(&mut self, node: u32, at: SimTime) {
        let g = granule(at);
        debug_assert!(g >= self.floor);
        let level = level_for(self.floor, g);
        let slot = ((g >> (level as u32 * SLOT_BITS)) & SLOT_MASK) as usize;
        let head = if level == 0 {
            &mut self.heads0[slot]
        } else {
            &mut self.heads_hi[(level - 1) * SLOTS + slot]
        };
        self.nodes[node as usize].next = *head;
        *head = node;
        self.occupied[level] |= 1 << slot;
        self.live_levels |= 1 << level;
    }

    /// The expiry of the earliest pending event, if any.
    ///
    /// Amortized O(1): the answer is cached and only recomputed (a bitmap
    /// probe plus a min-scan of one short slot list) after a pop. Advance
    /// loops should still prefer [`Wheel::pop_before`] over peek-then-pop.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.peek_valid.get() {
            let at = if let Some(&back) = self.overdue.last() {
                Some(self.nodes[back as usize].at)
            } else {
                self.earliest_slot().map(|(level, slot)| {
                    let mut min: Option<SimTime> = None;
                    let mut cur = if level == 0 {
                        self.heads0[slot]
                    } else {
                        self.heads_hi[(level - 1) * SLOTS + slot]
                    };
                    while cur != NIL {
                        let n = &self.nodes[cur as usize];
                        min = Some(min.map_or(n.at, |m| m.min(n.at)));
                        cur = n.next;
                    }
                    min.expect("occupied slot has nodes")
                })
            };
            self.peek_at.set(at);
            self.peek_valid.set(true);
        }
        self.peek_at.get()
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::MAX)
    }

    /// Removes and returns the earliest event if it expires at or before
    /// `t`; otherwise leaves the queue untouched and returns `None`.
    ///
    /// This is the single-traversal replacement for peek-then-pop: one
    /// bitmap probe finds the earliest slot and one pass over its short
    /// list decides due-or-not, unlinks the minimum, and refills the peek
    /// cache with the runner-up — so the terminating call of an advance
    /// loop leaves the next `peek_time` free.
    #[inline]
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        if self.peek_valid.get() {
            match self.peek_at.get() {
                None => return None,
                Some(at) if at > t => return None,
                _ => {}
            }
        }
        // The overdue buffer (when non-empty) is earlier than the whole
        // wheel, so its back is the global minimum.
        if let Some(&back) = self.overdue.last() {
            let at = self.nodes[back as usize].at;
            if at > t {
                self.peek_at.set(Some(at));
                self.peek_valid.set(true);
                return None;
            }
            self.overdue.pop();
            match self.overdue.last() {
                Some(&next) => {
                    self.peek_at.set(Some(self.nodes[next as usize].at));
                    self.peek_valid.set(true);
                }
                None => {
                    // Lazily re-scan from the wheel on the next peek.
                    self.peek_at.set(None);
                    self.peek_valid.set(self.len == 1);
                }
            }
            return Some(self.take(back));
        }
        // Fast path: while the open slot (the level-0 slot at the cursor)
        // is non-empty it is the global earliest — pushes behind it go to
        // `overdue` and every other slot or level is later — so repeated
        // pops skip the slot search entirely.
        let slot = (self.floor & SLOT_MASK) as usize;
        if self.occupied[0] & (1 << slot) != 0 {
            return self.pop_open_slot(slot, t);
        }
        // Find the earliest slot, cascading upper levels down until it is a
        // level-0 slot, and open it (move the cursor to its base).
        let Some((mut level, mut slot)) = self.earliest_slot() else {
            self.peek_at.set(None);
            self.peek_valid.set(true);
            return None;
        };
        while level > 0 {
            // Lower levels are empty, so everything pending expires at or
            // after this slot's window: advance the cursor to its start and
            // re-hash the list; each entry lands at least one level down.
            let shift = level as u32 * SLOT_BITS;
            self.floor = ((self.floor >> (shift + SLOT_BITS)) << (shift + SLOT_BITS))
                | ((slot as u64) << shift);
            self.cascade_slot(level, slot);
            let (l, s) = self.earliest_slot().expect("cascade re-linked entries");
            level = l;
            slot = s;
        }
        let base = (self.floor & !SLOT_MASK) | slot as u64;
        debug_assert!(base >= self.floor);
        self.floor = base;
        self.pop_open_slot(slot, t)
    }

    /// Due-checks and pops the minimum of the open (cursor-resident),
    /// non-empty level-0 slot.
    ///
    /// One pass over the slot's short list: find the `(time, seq)`
    /// minimum, its predecessor, and the runner-up expiry. The slot's
    /// remaining minimum is the global next-earliest (later slots and
    /// levels only hold later events, and the overdue buffer is empty).
    fn pop_open_slot(&mut self, slot: usize, t: SimTime) -> Option<(SimTime, E)> {
        let head = self.heads0[slot];
        debug_assert!(head != NIL);
        let first = &self.nodes[head as usize];
        if first.next == NIL {
            // Singleton slot: due-check the head, then close the slot and
            // leave the cache to lazily re-scan the next occupied slot.
            let at = first.at;
            if at > t {
                self.peek_at.set(Some(at));
                self.peek_valid.set(true);
                return None;
            }
            self.heads0[slot] = NIL;
            self.occupied[0] &= !(1 << slot);
            if self.occupied[0] == 0 {
                self.live_levels &= !1;
            }
            self.peek_at.set(None);
            self.peek_valid.set(self.len == 1);
            return Some(self.take(head));
        }
        let (mut min, mut min_prev) = (head, NIL);
        let mut min_key = (first.at, first.seq);
        let mut runner_up = SimTime::MAX;
        let (mut prev, mut cur) = (head, first.next);
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            let key = (n.at, n.seq);
            if key < min_key {
                runner_up = min_key.0;
                min_key = key;
                min = cur;
                min_prev = prev;
            } else {
                runner_up = runner_up.min(n.at);
            }
            prev = cur;
            cur = n.next;
        }
        if min_key.0 > t {
            self.peek_at.set(Some(min_key.0));
            self.peek_valid.set(true);
            return None;
        }
        let after = self.nodes[min as usize].next;
        if min_prev == NIL {
            self.heads0[slot] = after;
        } else {
            self.nodes[min_prev as usize].next = after;
        }
        self.peek_at.set(Some(runner_up));
        self.peek_valid.set(true);
        Some(self.take(min))
    }

    /// Frees a node's slab cell and hands back its `(expiry, payload)`.
    #[inline]
    fn take(&mut self, node: u32) -> (SimTime, E) {
        self.len -= 1;
        let free = self.free;
        let n = &mut self.nodes[node as usize];
        let at = n.at;
        let payload = n.payload.take().expect("pending node is live");
        n.next = free;
        self.free = node;
        (at, payload)
    }

    /// Drops all pending events, resetting the cursor. The slab and heap
    /// capacities are retained.
    pub fn clear(&mut self) {
        self.overdue.clear();
        self.nodes.clear();
        self.free = NIL;
        self.heads0.fill(NIL);
        self.heads_hi.fill(NIL);
        self.occupied = [0; LEVELS];
        self.live_levels = 0;
        self.floor = 0;
        self.len = 0;
        self.peek_valid.set(true);
        self.peek_at.set(None);
    }

    /// The earliest occupied `(level, slot)`, holding the globally earliest
    /// wheel-resident event: levels partition future time, so everything at
    /// a higher level expires after everything below, and within a level
    /// slot order is expiry order.
    #[inline]
    fn earliest_slot(&self) -> Option<(usize, usize)> {
        if self.live_levels == 0 {
            return None;
        }
        let level = self.live_levels.trailing_zeros() as usize;
        Some((level, self.occupied[level].trailing_zeros() as usize))
    }

    /// Clears a slot's occupancy bit (and its level's live bit when the
    /// level empties), returning the detached list head.
    fn detach(&mut self, level: usize, slot: usize) -> u32 {
        debug_assert!(level >= 1);
        let head = std::mem::replace(&mut self.heads_hi[(level - 1) * SLOTS + slot], NIL);
        self.occupied[level] &= !(1 << slot);
        if self.occupied[level] == 0 {
            self.live_levels &= !(1 << level);
        }
        head
    }

    /// Captures the complete pending-event state for later [`Wheel::restore`].
    ///
    /// The contiguous slab + intrusive-index layout makes this a flat deep
    /// copy: clone the slab (free cells ride along as `payload: None`
    /// tombstones, so the free list needs no re-derivation), memcpy the
    /// slot-head arrays and occupancy bitmaps, and copy five scalars.
    /// No per-event traversal, no pointer fixups.
    pub fn save(&self) -> WheelState<E>
    where
        E: Clone,
    {
        WheelState {
            floor: self.floor,
            free: self.free,
            live_levels: self.live_levels,
            len: self.len,
            occupied: self.occupied,
            heads0: self.heads0,
            nodes: self.nodes.clone(),
            heads_hi: self.heads_hi.clone(),
            overdue: self.overdue.clone(),
        }
    }

    /// Rewinds the wheel to a previously [`Wheel::save`]d state.
    ///
    /// `clone_from` into the live buffers, so a rollback loop restoring into
    /// the same wheel reuses its slab/overdue capacity. The peek cache is
    /// invalidated rather than copied (it is lazily recomputed and carries
    /// no observable state).
    pub fn restore(&mut self, state: &WheelState<E>)
    where
        E: Clone,
    {
        self.floor = state.floor;
        self.free = state.free;
        self.live_levels = state.live_levels;
        self.len = state.len;
        self.occupied = state.occupied;
        self.heads0 = state.heads0;
        self.nodes.clone_from(&state.nodes);
        self.heads_hi.copy_from_slice(&state.heads_hi);
        self.overdue.clone_from(&state.overdue);
        self.peek_valid.set(false);
        self.peek_at.set(None);
    }

    /// Re-hashes one upper-level slot into the levels below (the cursor
    /// must already sit inside or before the slot's window, so every entry
    /// lands strictly lower). Pure index relinking; payloads do not move.
    fn cascade_slot(&mut self, level: usize, slot: usize) {
        debug_assert!(level >= 1);
        let mut cur = self.detach(level, slot);
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            let (at, next) = (n.at, n.next);
            debug_assert!(level_for(self.floor, granule(at)) < level);
            self.link(cur, at);
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_cover_u64() {
        assert_eq!(LEVELS, 9);
        // The top level's slot width times the slot count reaches past the
        // last representable granule.
        let top_shift = GRANULE_BITS + (LEVELS as u32 - 1) * SLOT_BITS;
        assert!(top_shift + SLOT_BITS >= 64);
    }

    #[test]
    fn level_for_picks_lowest_distinguishing_level() {
        assert_eq!(level_for(0, 0), 0);
        assert_eq!(level_for(0, 63), 0);
        assert_eq!(level_for(0, 64), 1);
        assert_eq!(level_for(0, 4095), 1);
        assert_eq!(level_for(0, 4096), 2);
        assert_eq!(level_for(5, 5), 0);
        assert_eq!(level_for(u64::MAX - 1, u64::MAX), 0);
        // The largest representable granule still fits the top level.
        assert_eq!(level_for(0, u64::MAX >> GRANULE_BITS), LEVELS - 1);
    }

    #[test]
    fn cascade_preserves_order_across_levels() {
        let mut w: Wheel<u32> = Wheel::new();
        // One event per level distance, pushed in reverse time order.
        let times: Vec<u64> = (0..LEVELS as u32)
            .map(|l| 1u64 << (GRANULE_BITS + l * SLOT_BITS))
            .rev()
            .collect();
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime::from_nanos(t), i as u64, i as u32);
        }
        let mut popped = Vec::new();
        while let Some((at, _)) = w.pop() {
            popped.push(at.as_nanos());
        }
        let mut expect = times;
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn pop_before_is_exclusive_of_later_events() {
        let mut w: Wheel<&str> = Wheel::new();
        w.push(SimTime::from_micros(100), 0, "a");
        w.push(SimTime::from_micros(200), 1, "b");
        assert!(w.pop_before(SimTime::from_micros(99)).is_none());
        assert_eq!(
            w.pop_before(SimTime::from_micros(100)),
            Some((SimTime::from_micros(100), "a"))
        );
        assert!(w.pop_before(SimTime::from_micros(199)).is_none());
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.pop_before(SimTime::MAX),
            Some((SimTime::from_micros(200), "b"))
        );
        assert!(w.is_empty());
    }

    #[test]
    fn late_push_pops_first() {
        let mut w: Wheel<u8> = Wheel::new();
        w.push(SimTime::from_millis(5), 0, 1);
        assert_eq!(w.pop(), Some((SimTime::from_millis(5), 1)));
        // The cursor sits past 5 ms now; a push behind it must still pop
        // immediately, and before anything later.
        w.push(SimTime::from_millis(9), 1, 3);
        w.push(SimTime::from_millis(2), 2, 2);
        assert_eq!(w.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(w.pop(), Some((SimTime::from_millis(2), 2)));
        assert_eq!(w.pop(), Some((SimTime::from_millis(9), 3)));
    }

    #[test]
    fn slab_recycles_cells() {
        let mut w: Wheel<u64> = Wheel::new();
        // A steady pop-one-push-one cycle over wheel-resident delays must
        // not grow the slab beyond the initial population.
        for i in 0..16u64 {
            w.push(SimTime::from_millis(i + 1), i, i);
        }
        let baseline = w.nodes.len();
        for seq in 16u64..1_016 {
            let (at, _) = w.pop().expect("steady population");
            w.push(at + crate::time::SimDuration::from_millis(17), seq, seq);
        }
        assert!(w.nodes.len() <= baseline.max(16));
        assert_eq!(w.len(), 16);
    }
}
