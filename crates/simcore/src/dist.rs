//! Statistical distributions used by the workload models.
//!
//! Implemented in-house (rather than via `rand_distr`) so that sampling is
//! deterministic under our own [`SimRng`] and auditable: each sampler is a
//! few lines of classic textbook math with unit tests pinning its moments.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Samples from a distribution using the simulation RNG.
pub trait Sample {
    /// Draws one value.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// Exponential distribution with the given rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda` per unit.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and strictly positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive: {rate}"
        );
        Exp { rate }
    }

    /// Creates an exponential distribution from its mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and strictly positive.
    pub fn from_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive: {mean}"
        );
        Exp { rate: 1.0 / mean }
    }
}

impl Sample for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.next_f64_open().ln() / self.rate
    }
}

/// Standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = rng.next_f64_open();
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution `N(mean, std^2)`.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `std` is finite and non-negative.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            std.is_finite() && std >= 0.0,
            "std must be non-negative: {std}"
        );
        Normal { mean, std }
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mean + self.std * standard_normal(rng)
    }
}

/// Log-normal distribution parameterised by its *median* and shape `sigma`.
///
/// If `X ~ LogNormal(median, sigma)` then `ln X ~ N(ln median, sigma^2)`,
/// so `P50 = median` and `P99 ≈ median · exp(2.326 · sigma)`. This is the
/// workhorse for service-time modelling: the paper's standalone profile
/// (p50 = 4 ms, p99 = 12 ms) pins `sigma = ln(3)/2.326 ≈ 0.47`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    ln_median: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from its median and shape.
    ///
    /// # Panics
    ///
    /// Panics unless `median > 0` and `sigma >= 0`, both finite.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(
            median.is_finite() && median > 0.0,
            "median must be positive: {median}"
        );
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative: {sigma}"
        );
        LogNormal {
            ln_median: median.ln(),
            sigma,
        }
    }

    /// Log-normal with median 1 — a pure multiplicative jitter factor.
    ///
    /// Identical to `from_median(1.0, sigma)` (`ln 1 = 0` exactly) but
    /// without the runtime `ln`, for hot paths that build the jitter per
    /// sample site.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma >= 0` and finite.
    pub fn unit_median(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative: {sigma}"
        );
        LogNormal {
            ln_median: 0.0,
            sigma,
        }
    }

    /// The distribution mean, `median · exp(sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.ln_median + self.sigma * self.sigma / 2.0).exp()
    }

    /// The `q`-quantile (`q` in `(0,1)`), via the probit approximation.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.ln_median + self.sigma * probit(q)).exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.ln_median + self.sigma * standard_normal(rng)).exp()
    }
}

/// Acklam's rational approximation to the standard normal quantile function.
fn probit(p: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p) && p > 0.0,
        "p must be in (0,1): {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// Pareto distribution with scale `x_min` and shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are finite and strictly positive.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min.is_finite() && x_min > 0.0,
            "x_min must be positive: {x_min}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive: {alpha}"
        );
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, via an exact CDF
/// table (binary search per sample).
///
/// Used for web-index document popularity, which drives the primary's cache
/// hit ratio.
#[derive(Clone, Debug)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for `n` ranks and exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be non-negative: {s}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Samples a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability mass of the top `k` ranks (a cache of the `k` hottest
    /// items yields this hit ratio under independent reference).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn top_k_mass(&self, k: usize) -> f64 {
        assert!(k > 0, "k must be positive");
        self.cdf[(k - 1).min(self.cdf.len() - 1)]
    }
}

/// A Poisson arrival process: exponential inter-arrival gaps at `rate_per_sec`.
#[derive(Clone, Copy, Debug)]
pub struct PoissonProcess {
    exp: Exp,
}

impl PoissonProcess {
    /// Creates a process with the given arrival rate (events per second).
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is finite and strictly positive.
    pub fn new(rate_per_sec: f64) -> Self {
        PoissonProcess {
            exp: Exp::new(rate_per_sec),
        }
    }

    /// Samples the next inter-arrival gap.
    pub fn next_gap(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.exp.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(d: &impl Sample, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn exp_mean_and_variance() {
        let d = Exp::new(2.0);
        let (mean, var) = moments(&d, 17, 200_000);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exp_from_mean() {
        let d = Exp::from_mean(3.0);
        let (mean, _) = moments(&d, 23, 200_000);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let (mean, var) = moments(&d, 29, 200_000);
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_and_p99() {
        let d = LogNormal::from_median(4.0, 0.4723);
        let mut rng = SimRng::seed_from_u64(31);
        let mut xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = xs[xs.len() / 2];
        let p99 = xs[(xs.len() as f64 * 0.99) as usize];
        assert!((p50 - 4.0).abs() < 0.1, "p50 {p50}");
        // exp(0.4723 * 2.326) ≈ 3.0, so p99 ≈ 12.
        assert!((p99 - 12.0).abs() < 0.5, "p99 {p99}");
    }

    #[test]
    fn lognormal_quantile_matches_samples() {
        let d = LogNormal::from_median(1.0, 0.8);
        assert!((d.quantile(0.5) - 1.0).abs() < 1e-9);
        let q99 = d.quantile(0.99);
        assert!((q99 - (0.8f64 * 2.3263).exp()).abs() / q99 < 0.01);
    }

    #[test]
    fn pareto_tail_is_heavy() {
        let d = Pareto::new(1.0, 2.0);
        let (mean, _) = moments(&d, 37, 200_000);
        // Mean of Pareto(1, 2) is alpha/(alpha-1) = 2.
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn zipf_rank_one_is_most_popular() {
        let z = ZipfTable::new(1_000, 1.0);
        let mut rng = SimRng::seed_from_u64(41);
        let mut counts = vec![0u32; 1_001];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // Rank-1 mass for n=1000, s=1 is 1/H(1000) ≈ 0.1336.
        let p1 = counts[1] as f64 / 100_000.0;
        assert!((p1 - 0.1336).abs() < 0.01, "p1 {p1}");
    }

    #[test]
    fn zipf_top_k_mass_is_monotone() {
        let z = ZipfTable::new(100, 0.9);
        let mut last = 0.0;
        for k in 1..=100 {
            let m = z.top_k_mass(k);
            assert!(m >= last);
            last = m;
        }
        assert!((z.top_k_mass(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_process_rate() {
        let p = PoissonProcess::new(2_000.0);
        let mut rng = SimRng::seed_from_u64(43);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let rate = n as f64 / total;
        assert!((rate - 2_000.0).abs() < 30.0, "rate {rate}");
    }

    #[test]
    fn probit_symmetry() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.99) + probit(0.01)).abs() < 1e-6);
        assert!((probit(0.99) - 2.3263).abs() < 1e-3);
    }
}
