//! Discrete-event simulation (DES) engine shared by every simulator crate in
//! the PerfIso reproduction.
//!
//! The crate deliberately stays small and dependency-free (apart from
//! [`rand`]): it provides virtual time ([`SimTime`], [`SimDuration`]), a
//! deterministic event queue ([`queue::EventQueue`]), a seeded RNG wrapper
//! ([`rng::SimRng`]), and the statistical distributions used to model
//! workloads ([`dist`]).
//!
//! Higher-level simulators (CPU, disk, network, cluster) define their own
//! event payload types and drive their own loops; `simcore` only guarantees
//! deterministic ordering and reproducible randomness.
//!
//! # Examples
//!
//! ```
//! use simcore::{queue::EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(2), "second");
//! q.push(SimTime::ZERO + SimDuration::from_millis(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_micros(1_000));
//! ```

pub mod dist;
pub mod ids;
pub mod mask;
pub mod queue;
pub mod rng;
pub mod snapshot;
pub mod time;
pub(crate) mod wheel;

pub use ids::{CoreId, JobId, ThreadId};
pub use mask::CoreMask;
pub use queue::{EventQueue, EventQueueState};
pub use rng::SimRng;
pub use snapshot::{Epoch, Snapshot};
pub use time::{SimDuration, SimTime};
