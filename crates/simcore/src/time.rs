//! Virtual time for the discrete-event simulators.
//!
//! Time is kept in integer nanoseconds. All PerfIso phenomena live between
//! microseconds (thread wake bursts) and hours (fleet experiments), so a
//! `u64` nanosecond clock gives ~584 years of range with no rounding drift.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as a sentinel for "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; useful as a sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative: {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "duration must be finite and non-negative: {us}"
        );
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(
            f.is_finite() && f >= 0.0,
            "scale factor must be finite and non-negative: {f}"
        );
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// Integer division into `n` equal slices (truncating).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, n: u64) -> SimDuration {
        assert!(n > 0, "cannot divide a duration into zero slices");
        SimDuration(self.0 / n)
    }

    /// Integer division into `n` equal slices, rounding up.
    ///
    /// Unlike [`SimDuration::div`], a non-zero duration never rounds to
    /// zero, which matters when the result is used to schedule a timer that
    /// must land strictly in the future.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn div_ceil(self, n: u64) -> SimDuration {
        assert!(n > 0, "cannot divide a duration into zero slices");
        SimDuration(self.0.div_ceil(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 5_250);
        let d = t - SimTime::from_millis(5);
        assert_eq!(d, SimDuration::from_micros(250));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_nanos(7);
        assert_eq!(u.as_nanos(), 7);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_millis(1));
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(0.0035);
        assert_eq!(d.as_micros(), 3_500);
        assert!((d.as_millis_f64() - 3.5).abs() < 1e-9);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(5));
        assert_eq!(d.div(4), SimDuration::from_micros(2_500));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
