//! Checkpoint/rollback capability for simulator state.
//!
//! Optimistic (Time Warp-style) cluster sync needs every layer of the
//! simulator stack to be able to save its state cheaply and restore it
//! exactly when a late cross-box delivery invalidates speculative work.
//! This module defines the contract all layers implement:
//!
//! - [`Snapshot`]: save the complete dynamic state of a component into an
//!   owned `State` value, and restore from it later. Restoring must leave
//!   the component *observationally identical* to the moment of the save —
//!   every subsequent event, RNG draw, and report field must be
//!   bit-for-bit what a never-rolled-back run would produce. (Internal
//!   caches and buffer capacities may differ; observable behaviour may
//!   not.)
//! - [`Epoch`]: a monotonically increasing tag stamped onto snapshots by
//!   the checkpointing driver. A restore checks the epoch it was handed
//!   against the epoch it expects, turning cross-wired checkpoints
//!   (restoring box A from box B's state, or from a stale generation)
//!   into a loud panic instead of a silent divergence.
//!
//! `State` values are deep copies: the layers in this workspace keep
//! their dynamic state in contiguous slabs (the timer wheel's node slab,
//! the step arena, thread tables), so a save is a handful of `Vec` clones
//! — O(live state) with small constants, no per-element allocation — and
//! a restore is `clone_from` back into the live buffers, reusing their
//! capacity.

/// A monotonically increasing checkpoint generation tag.
///
/// The driver that owns a set of snapshots mints a fresh epoch per
/// checkpoint via [`Epoch::mint`] and stamps it into everything saved at
/// that instant; restore paths assert the stamp matches the checkpoint
/// they intend to roll back to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(u64);

impl Epoch {
    /// The epoch before any checkpoint was taken.
    pub const ZERO: Epoch = Epoch(0);

    /// Mints the next epoch (post-increments self).
    #[must_use = "the minted epoch tags the new checkpoint"]
    pub fn mint(&mut self) -> Epoch {
        self.0 += 1;
        Epoch(self.0)
    }

    /// The raw counter value (diagnostics, stats).
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Cheap save/restore of a simulator component's complete dynamic state.
///
/// # Contract
///
/// `restore(&save())` must be a behavioural no-op: after it, the
/// component produces exactly the event sequence, RNG stream, and
/// statistics it would have produced had the intervening mutations never
/// happened. Property tests in `simcore` and `simcpu` pin this
/// (snapshot → mutate → restore ≡ never mutated).
///
/// A single `State` may be restored from any number of times (rollback
/// loops re-restore the same checkpoint), so `restore` takes the state
/// by reference and may not consume it.
pub trait Snapshot {
    /// The owned saved-state representation.
    type State;

    /// Captures the component's dynamic state.
    fn save(&self) -> Self::State;

    /// Rewinds the component to a previously saved state.
    fn restore(&mut self, state: &Self::State);
}

impl Snapshot for crate::rng::SimRng {
    type State = crate::rng::SimRng;

    fn save(&self) -> Self::State {
        self.clone()
    }

    fn restore(&mut self, state: &Self::State) {
        *self = state.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn epoch_monotonic() {
        let mut e = Epoch::default();
        assert_eq!(e, Epoch::ZERO);
        let a = e.mint();
        let b = e.mint();
        assert!(Epoch::ZERO < a && a < b);
        assert_eq!(a.value() + 1, b.value());
    }

    #[test]
    fn rng_restore_replays_stream() {
        let mut rng = SimRng::seed_from_u64(7);
        let _burn: u64 = rng.next_u64();
        let snap = rng.save();
        let expect: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let _diverge: f64 = rng.next_f64();
        rng.restore(&snap);
        let replay: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(expect, replay);
    }
}
