//! Identifier types for cores, jobs, and threads.

use serde::{Deserialize, Serialize};

/// A logical core index (0-based, below 64).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CoreId(pub u16);

/// A job (process group / Job Object) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// A thread handle: slot index plus generation.
///
/// Thread slots are recycled after exit; the generation distinguishes a live
/// thread from a stale handle to an exited one, so `wake`/`kill` on a stale
/// handle is a detectable no-op rather than corruption.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ThreadId {
    /// Slot index in the machine's thread table.
    pub index: u32,
    /// Generation of the slot at handle creation.
    pub gen: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ThreadId { index: 1, gen: 0 });
        assert!(s.contains(&ThreadId { index: 1, gen: 0 }));
        assert!(!s.contains(&ThreadId { index: 1, gen: 1 }));
        assert!(CoreId(3) < CoreId(4));
        assert!(JobId(1) < JobId(2));
    }
}
