//! Equivalence proof for the timer-wheel event queue.
//!
//! The pre-wheel `EventQueue` core — a `BinaryHeap` ordered by
//! `(time, seq)` — is reimplemented here as the executable specification,
//! and the wheel is driven against it under arbitrary interleaved
//! push/pop/pop_before/peek/clear sequences, including same-instant FIFO
//! bursts and far-future pushes that exercise the overflow levels and their
//! cascades. Every observable (popped pairs, peeked times, lengths) must be
//! identical, which is exactly the determinism contract the golden-report
//! suite leans on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use simcore::{EventQueue, SimTime};

/// One pending event in the reference model.
struct Scheduled {
    at: SimTime,
    seq: u64,
    id: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap pops the earliest `(time, seq)`.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The old binary-heap queue, verbatim semantics.
struct HeapModel {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl HeapModel {
    fn new() -> Self {
        HeapModel {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, at: SimTime, id: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, id });
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.heap.pop().map(|s| (s.at, s.id))
    }

    fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, u32)> {
        if self.peek_time()? > t {
            return None;
        }
        self.pop()
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    Pop,
    PopBefore(u64),
    Peek,
    Clear,
}

/// Arbitrary operations, biased toward pushes so queues actually build up.
/// Push/bound times mix three regimes: dense sub-microsecond values (many
/// same-granule and same-instant collisions), a mid range spanning a few
/// level-0 rotations, and a far-future range that lands in the overflow
/// levels and must cascade back down.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..2_000).prop_map(Op::Push),
        (0u64..2_000).prop_map(Op::Push),
        (0u64..5_000_000).prop_map(Op::Push),
        (0u64..5_000_000).prop_map(Op::Push),
        (0u64..(1 << 45)).prop_map(Op::Push),
        (0u64..(1 << 45)).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Pop),
        (0u64..5_000_000).prop_map(Op::PopBefore),
        (0u64..(1 << 45)).prop_map(Op::PopBefore),
        Just(Op::Peek),
        Just(Op::Clear),
    ]
}

proptest! {
    /// The wheel is observationally identical to the reference heap under
    /// arbitrary interleavings, and the final drain pops the exact same
    /// `(time, payload)` sequence.
    #[test]
    fn prop_wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = EventQueue::new();
        let mut model = HeapModel::new();
        let mut id = 0u32;
        for op in ops {
            match op {
                Op::Push(ns) => {
                    let at = SimTime::from_nanos(ns);
                    wheel.push(at, id);
                    model.push(at, id);
                    id += 1;
                }
                Op::Pop => prop_assert_eq!(wheel.pop(), model.pop()),
                Op::PopBefore(ns) => {
                    let t = SimTime::from_nanos(ns);
                    prop_assert_eq!(wheel.pop_before(t), model.pop_before(t));
                }
                Op::Peek => prop_assert_eq!(wheel.peek_time(), model.peek_time()),
                Op::Clear => {
                    wheel.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            prop_assert_eq!(wheel.is_empty(), model.len() == 0);
        }
        loop {
            let (a, b) = (wheel.pop(), model.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// A burst of events at one shared instant pops in exact insertion
    /// order, even when interleaved with events elsewhere in time.
    #[test]
    fn prop_same_instant_burst_is_fifo(
        n in 1usize..300,
        t in 0u64..(1 << 40),
        other in proptest::collection::vec(0u64..(1 << 40), 0..50),
    ) {
        let burst = SimTime::from_nanos(t);
        let mut q = EventQueue::new();
        // Interleave the burst with unrelated events.
        for (i, &o) in other.iter().enumerate() {
            q.push(SimTime::from_nanos(o), u32::MAX - i as u32);
        }
        for i in 0..n {
            q.push(burst, i as u32);
        }
        let mut burst_ids = Vec::new();
        while let Some((at, idx)) = q.pop() {
            if at == burst && idx < u32::MAX - 64 {
                burst_ids.push(idx);
            }
        }
        prop_assert_eq!(burst_ids, (0..n as u32).collect::<Vec<_>>());
    }

    /// Far-future pushes park in the overflow levels and cascade back down
    /// in globally sorted order: popping with an ascending sweep of
    /// `pop_before` horizons yields the fully sorted `(time, seq)` order.
    #[test]
    fn prop_overflow_cascade_sorted(times in proptest::collection::vec(0u64..(1 << 52), 1..200)) {
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u32)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i as u32);
            expect.push((t, i as u32));
        }
        expect.sort_unstable();
        let mut got = Vec::new();
        // Sweep horizons through the level boundaries, then drain.
        for shift in [10u32, 16, 22, 28, 34, 40, 46, 52] {
            let horizon = SimTime::from_nanos(1 << shift);
            while let Some((at, idx)) = q.pop_before(horizon) {
                prop_assert!(at <= horizon);
                got.push((at.as_nanos(), idx));
            }
        }
        while let Some((at, idx)) = q.pop() {
            got.push((at.as_nanos(), idx));
        }
        prop_assert_eq!(got, expect);
    }
}
