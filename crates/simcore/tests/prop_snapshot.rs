//! Property tests for the `simcore` Snapshot capability: for any
//! interleaving of operations, snapshot → mutate → restore must leave a
//! component observationally identical to one that was never mutated.
//!
//! This is the foundational guarantee speculative cluster sync stands on —
//! a rolled-back box replays the exact event order and RNG stream of a
//! conservative run.

use proptest::prelude::*;
use simcore::{EventQueue, SimRng, SimTime, Snapshot};

/// One scripted queue operation. Pops use `pop_before` with a bounded
/// horizon so the due/not-due branch is exercised too.
#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    PopBefore(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..5_000_000).prop_map(Op::Push),
        (0u64..5_000_000).prop_map(Op::Push),
        (0u64..5_000_000).prop_map(Op::Push),
        (0u64..5_000_000).prop_map(Op::PopBefore),
        (0u64..5_000_000).prop_map(Op::PopBefore),
    ]
}

fn apply(q: &mut EventQueue<u64>, ops: &[Op], mut tag: u64) -> Vec<(SimTime, u64)> {
    let mut popped = Vec::new();
    for op in ops {
        match op {
            Op::Push(t) => {
                q.push(SimTime::from_nanos(*t), tag);
                tag += 1;
            }
            Op::PopBefore(t) => {
                if let Some(ev) = q.pop_before(SimTime::from_nanos(*t)) {
                    popped.push(ev);
                }
            }
        }
    }
    popped
}

fn drain(q: &mut EventQueue<u64>) -> Vec<(SimTime, u64)> {
    std::iter::from_fn(|| q.pop()).collect()
}

proptest! {
    /// snapshot → arbitrary mutation → restore ≡ never mutated: the
    /// restored queue's full pop order (and its tie-break behaviour for
    /// events pushed *after* the restore) matches a queue that stopped at
    /// the snapshot point.
    #[test]
    fn prop_queue_restore_equals_never_mutated(
        prefix in proptest::collection::vec(op_strategy(), 0..120),
        noise in proptest::collection::vec(op_strategy(), 1..120),
        suffix in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let mut live = EventQueue::new();
        let mut control = EventQueue::new();
        apply(&mut live, &prefix, 0);
        apply(&mut control, &prefix, 0);

        let snap = live.save();
        // Mutate past the snapshot, then roll back.
        apply(&mut live, &noise, 1_000_000);
        live.restore(&snap);

        // Post-restore operations must behave exactly like the control's.
        let a = apply(&mut live, &suffix, 2_000_000);
        let b = apply(&mut control, &suffix, 2_000_000);
        prop_assert_eq!(a, b);
        prop_assert_eq!(live.len(), control.len());
        prop_assert_eq!(drain(&mut live), drain(&mut control));
    }

    /// A single saved state supports repeated restores (rollback loops
    /// re-restore the same checkpoint), each yielding the same pop order.
    #[test]
    fn prop_queue_state_is_reusable(
        prefix in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let mut q = EventQueue::new();
        apply(&mut q, &prefix, 0);
        let snap = q.save();
        let first = drain(&mut q);
        for _ in 0..3 {
            q.restore(&snap);
            prop_assert_eq!(drain(&mut q), first.clone());
        }
    }

    /// Restoring into a *fresh* queue reproduces the source exactly —
    /// checkpoints are position-independent deep copies.
    #[test]
    fn prop_queue_restore_into_fresh(
        prefix in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let mut src = EventQueue::new();
        apply(&mut src, &prefix, 0);
        let snap = src.save();
        let mut fresh = EventQueue::new();
        fresh.restore(&snap);
        prop_assert_eq!(drain(&mut fresh), drain(&mut src));
    }

    /// RNG snapshot: the stream after a restore is the stream that would
    /// have followed the save, regardless of intervening draws.
    #[test]
    fn prop_rng_restore_replays_stream(seed in any::<u64>(), burn in 0usize..64, noise in 1usize..64) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..burn {
            rng.next_u64();
        }
        let snap = rng.save();
        let expect: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        for _ in 0..noise {
            rng.next_u64();
        }
        rng.restore(&snap);
        let replay: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        prop_assert_eq!(expect, replay);
    }
}
