//! CPU-time accounting: the Primary/Secondary/OS/Idle utilization split.
//!
//! Every CPU-utilization bar chart in the paper (Figs 4b, 5b, 6b, 7b, 8b)
//! breaks machine CPU time into four classes. The scheduler integrates
//! core-occupancy intervals into a [`CpuBreakdown`]; this module owns the
//! class enum and the arithmetic.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Who is occupying a core (or generating overhead) at a given instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TenantClass {
    /// The latency-sensitive service (unrestricted, revenue-generating).
    Primary,
    /// Best-effort batch work (restricted by PerfIso).
    Secondary,
    /// Operating-system overhead: dispatches, context switches, IPIs,
    /// interrupt handling.
    Os,
}

/// Accumulated core-time per class, plus idle time.
///
/// All values are in core-time (one core busy for one second = one
/// core-second), so on a 48-core machine one wall-second contributes
/// 48 core-seconds of capacity.
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
/// use telemetry::{CpuBreakdown, TenantClass};
///
/// let mut b = CpuBreakdown::default();
/// b.add(TenantClass::Primary, SimDuration::from_millis(20));
/// b.add_idle(SimDuration::from_millis(80));
/// assert!((b.fraction(TenantClass::Primary) - 0.2).abs() < 1e-9);
/// assert!((b.idle_fraction() - 0.8).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuBreakdown {
    /// Core-time consumed by the primary tenant.
    pub primary: SimDuration,
    /// Core-time consumed by secondary tenants.
    pub secondary: SimDuration,
    /// Core-time consumed by OS overhead.
    pub os: SimDuration,
    /// Core-time spent idle.
    pub idle: SimDuration,
}

impl CpuBreakdown {
    /// Adds busy core-time for `class`.
    pub fn add(&mut self, class: TenantClass, d: SimDuration) {
        match class {
            TenantClass::Primary => self.primary += d,
            TenantClass::Secondary => self.secondary += d,
            TenantClass::Os => self.os += d,
        }
    }

    /// Adds idle core-time.
    pub fn add_idle(&mut self, d: SimDuration) {
        self.idle += d;
    }

    /// Total accounted core-time (busy + idle).
    pub fn total(&self) -> SimDuration {
        self.primary + self.secondary + self.os + self.idle
    }

    /// Busy core-time (everything but idle).
    pub fn busy(&self) -> SimDuration {
        self.primary + self.secondary + self.os
    }

    /// Fraction of capacity consumed by `class`, in `[0, 1]`.
    pub fn fraction(&self, class: TenantClass) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            return 0.0;
        }
        let part = match class {
            TenantClass::Primary => self.primary,
            TenantClass::Secondary => self.secondary,
            TenantClass::Os => self.os,
        };
        part.as_nanos() as f64 / total as f64
    }

    /// Fraction of capacity left idle.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.total().as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.idle.as_nanos() as f64 / total as f64
    }

    /// Overall utilization (busy fraction).
    pub fn utilization(&self) -> f64 {
        1.0 - self.idle_fraction()
    }

    /// Element-wise sum, e.g. for aggregating across machines.
    pub fn merge(&mut self, other: &CpuBreakdown) {
        self.primary += other.primary;
        self.secondary += other.secondary;
        self.os += other.os;
        self.idle += other.idle;
    }

    /// Difference between two snapshots (for windowed measurement).
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has more accumulated time in any class.
    pub fn since(&self, earlier: &CpuBreakdown) -> CpuBreakdown {
        CpuBreakdown {
            primary: self.primary - earlier.primary,
            secondary: self.secondary - earlier.secondary,
            os: self.os - earlier.os,
            idle: self.idle - earlier.idle,
        }
    }

    /// Formats the split like the paper's figures: `P/S/OS/Idle` percentages.
    pub fn to_percent_string(&self) -> String {
        format!(
            "P {:4.1}% | S {:4.1}% | OS {:4.1}% | idle {:4.1}%",
            self.fraction(TenantClass::Primary) * 100.0,
            self.fraction(TenantClass::Secondary) * 100.0,
            self.fraction(TenantClass::Os) * 100.0,
            self.idle_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut b = CpuBreakdown::default();
        b.add(TenantClass::Primary, SimDuration::from_millis(10));
        b.add(TenantClass::Secondary, SimDuration::from_millis(30));
        b.add(TenantClass::Os, SimDuration::from_millis(5));
        b.add_idle(SimDuration::from_millis(55));
        let sum = b.fraction(TenantClass::Primary)
            + b.fraction(TenantClass::Secondary)
            + b.fraction(TenantClass::Os)
            + b.idle_fraction();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b.utilization() - 0.45).abs() < 1e-9);
    }

    #[test]
    fn empty_is_zero() {
        let b = CpuBreakdown::default();
        assert_eq!(b.utilization(), 1.0 - b.idle_fraction());
        assert_eq!(b.fraction(TenantClass::Primary), 0.0);
    }

    #[test]
    fn merge_and_since() {
        let mut a = CpuBreakdown::default();
        a.add(TenantClass::Primary, SimDuration::from_millis(10));
        let snapshot = a;
        a.add(TenantClass::Primary, SimDuration::from_millis(5));
        a.add_idle(SimDuration::from_millis(5));
        let window = a.since(&snapshot);
        assert_eq!(window.primary, SimDuration::from_millis(5));
        assert_eq!(window.idle, SimDuration::from_millis(5));

        let mut m = CpuBreakdown::default();
        m.merge(&a);
        m.merge(&a);
        assert_eq!(m.primary, SimDuration::from_millis(30));
    }

    #[test]
    fn percent_string_formats() {
        let mut b = CpuBreakdown::default();
        b.add(TenantClass::Primary, SimDuration::from_millis(25));
        b.add_idle(SimDuration::from_millis(75));
        let s = b.to_percent_string();
        assert!(s.contains("25.0%"), "{s}");
        assert!(s.contains("75.0%"), "{s}");
    }

    proptest! {
        /// Busy + idle always equals total; fractions always in [0,1].
        #[test]
        fn prop_accounting_invariants(p in 0u64..1_000_000, s in 0u64..1_000_000,
                                      o in 0u64..1_000_000, i in 0u64..1_000_000) {
            let mut b = CpuBreakdown::default();
            b.add(TenantClass::Primary, SimDuration::from_nanos(p));
            b.add(TenantClass::Secondary, SimDuration::from_nanos(s));
            b.add(TenantClass::Os, SimDuration::from_nanos(o));
            b.add_idle(SimDuration::from_nanos(i));
            prop_assert_eq!(b.busy() + b.idle, b.total());
            for c in [TenantClass::Primary, TenantClass::Secondary, TenantClass::Os] {
                let f = b.fraction(c);
                prop_assert!((0.0..=1.0).contains(&f));
            }
            prop_assert!((0.0..=1.0).contains(&b.utilization()));
        }
    }
}
