//! Statistics across repeated experiment runs.
//!
//! The paper's cluster experiments are run 8 times each; we report mean,
//! standard deviation, and a normal-approximation 95 % confidence interval.

use serde::{Deserialize, Serialize};

/// Accumulates scalar results across runs.
///
/// # Examples
///
/// ```
/// use telemetry::RunStats;
///
/// let mut s = RunStats::new();
/// for x in [10.0, 12.0, 11.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 10.5);
/// assert!(s.std() > 0.0);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunStats {
    values: Vec<f64>,
}

impl RunStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunStats { values: Vec::new() }
    }

    /// Adds one run's result.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite.
    pub fn add(&mut self, v: f64) {
        assert!(v.is_finite(), "run result must be finite: {v}");
        self.values.push(v);
    }

    /// Number of runs recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no runs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean across runs (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (0 with fewer than two runs).
    pub fn std(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let ss: f64 = self.values.iter().map(|v| (v - m) * (v - m)).sum();
        (ss / (n as f64 - 1.0)).sqrt()
    }

    /// Half-width of the 95 % confidence interval (normal approximation).
    pub fn ci95(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        1.96 * self.std() / (n as f64).sqrt()
    }

    /// Minimum recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// All recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `mean ± ci95` rendered for reports.
    pub fn to_ci_string(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean(), self.ci95())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let mut s = RunStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(v);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.std() - 2.138).abs() < 0.01);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn single_run_has_zero_spread() {
        let mut s = RunStats::new();
        s.add(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        let s = RunStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn max_tracks() {
        let mut s = RunStats::new();
        s.add(1.0);
        s.add(3.0);
        s.add(2.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let mut s = RunStats::new();
        s.add(f64::NAN);
    }
}
