//! Streaming, mergeable percentile sketch for fleet-scale telemetry.
//!
//! [`Sketch`] is a DDSketch-style log-bucketed quantile estimator built on
//! the same bucket geometry as [`crate::LogHistogram`] (64 sub-buckets per
//! octave), but it stores only the *occupied window* of buckets — a run
//! from the first to the last non-empty bucket — instead of the full
//! 2816-slot table. A production box whose latencies span one decade keeps
//! a few hundred `u64` counters no matter how many billions of samples it
//! records, and merging two sketches is pure counter addition, so
//! per-slice sketches reduce tree-wise across workers with results
//! independent of merge order.
//!
//! The estimator guarantee: any quantile estimate is within
//! [`Sketch::RELATIVE_ERROR`] (1/128 ≈ 0.78 %) of the exact nearest-rank
//! sample, because the exact sample lives in the chosen bucket and the
//! bucket's half-width never exceeds `base / 128`. Values below 64 ns sit
//! in unit-width buckets and are exact.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::histogram::{bucket_index, bucket_midpoint, NUM_BUCKETS};

/// A bounded-memory quantile sketch with a relative-error guarantee.
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
/// use telemetry::Sketch;
///
/// let mut s = Sketch::new();
/// for us in 1..=10_000u64 {
///     s.record(SimDuration::from_micros(us));
/// }
/// let p99 = s.percentile(0.99).as_micros() as f64;
/// assert!((p99 - 9_900.0).abs() / 9_900.0 <= Sketch::RELATIVE_ERROR);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sketch {
    /// Global bucket index of `counts[0]`.
    first: usize,
    /// The occupied bucket window (counts for `first .. first + len`).
    counts: Vec<u64>,
    /// Total recorded samples.
    total: u64,
    /// Dropped (timed-out) queries, excluded from the distribution.
    dropped: u64,
    /// Exact minimum sample (`u64::MAX` when empty).
    min_ns: u64,
    /// Exact maximum sample.
    max_ns: u64,
}

impl Default for Sketch {
    fn default() -> Self {
        Self::new()
    }
}

impl Sketch {
    /// Guaranteed relative quantile error: half a bucket width relative to
    /// the bucket base, maximized over all octaves (`(w/2) / (64 w) =
    /// 1/128`).
    pub const RELATIVE_ERROR: f64 = 1.0 / 128.0;

    /// Creates an empty sketch.
    pub fn new() -> Self {
        Sketch {
            first: 0,
            counts: Vec::new(),
            total: 0,
            dropped: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Grows the stored window (if needed) so it covers global bucket
    /// index `idx`, and returns a mutable reference to that bucket.
    fn slot(&mut self, idx: usize) -> &mut u64 {
        if self.counts.is_empty() {
            self.first = idx;
            self.counts.push(0);
        } else if idx < self.first {
            let grow = self.first - idx;
            self.counts.splice(0..0, std::iter::repeat_n(0, grow));
            self.first = idx;
        } else if idx >= self.first + self.counts.len() {
            self.counts.resize(idx - self.first + 1, 0);
        }
        &mut self.counts[idx - self.first]
    }

    /// Records one completed-query latency.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        *self.slot(bucket_index(ns)) += 1;
        self.total += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records a dropped (timed-out) query.
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Total recorded (completed) samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Dropped-query count.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of bucket counters currently stored — the sketch's memory
    /// footprint, bounded by the full table size regardless of sample
    /// count.
    pub fn stored_buckets(&self) -> usize {
        debug_assert!(self.counts.len() <= NUM_BUCKETS);
        self.counts.len()
    }

    /// Exact minimum recorded value (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Exact maximum recorded value (zero when empty).
    pub fn max(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// Mean of recorded values, from bucket midpoints (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let sum: u128 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                c as u128 * bucket_midpoint(self.first + i).clamp(self.min_ns, self.max_ns) as u128
            })
            .sum();
        SimDuration::from_nanos((sum / self.total as u128) as u64)
    }

    /// Estimated `q`-quantile, within [`Sketch::RELATIVE_ERROR`] of the
    /// exact nearest-rank sample (zero when empty).
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let mid = bucket_midpoint(self.first + i);
                return SimDuration::from_nanos(mid.clamp(self.min_ns, self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Merges `other` into `self`. Pure counter addition over the union
    /// window plus min/max reconciliation, so merging is associative and
    /// commutative: any merge tree over per-worker sketches equals
    /// recording every sample into one sketch.
    pub fn merge(&mut self, other: &Sketch) {
        for (i, &c) in other.counts.iter().enumerate() {
            if c > 0 {
                *self.slot(other.first + i) += c;
            }
        }
        self.total += other.total;
        self.dropped += other.dropped;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Reduces a batch of sketches tree-wise (pairwise rounds): the shape
    /// parallel reducers use so no single accumulator touches every
    /// partial. Returns `None` for an empty batch.
    pub fn merge_tree(mut parts: Vec<Sketch>) -> Option<Sketch> {
        if parts.is_empty() {
            return None;
        }
        while parts.len() > 1 {
            let mut next = Vec::with_capacity(parts.len().div_ceil(2));
            let mut it = parts.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge(&b);
                }
                next.push(a);
            }
            parts = next;
        }
        parts.pop()
    }

    /// Snapshot of the standard latency statistics plus the sketch's
    /// error bound.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            count: self.total,
            dropped: self.dropped,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
            relative_error: Self::RELATIVE_ERROR,
        }
    }
}

/// The report surface of a [`Sketch`]: the same statistics as a
/// [`crate::recorder::PercentileSummary`], tagged with the estimator's
/// guaranteed relative error so readers know the quantiles are estimates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Completed-query count (exact).
    pub count: u64,
    /// Dropped-query count (exact).
    pub dropped: u64,
    /// Mean latency (midpoint-weighted estimate).
    pub mean: SimDuration,
    /// Median estimate.
    pub p50: SimDuration,
    /// 95th-percentile estimate.
    pub p95: SimDuration,
    /// 99th-percentile estimate.
    pub p99: SimDuration,
    /// Maximum observed latency (exact).
    pub max: SimDuration,
    /// Guaranteed relative quantile error of the estimates.
    pub relative_error: f64,
}

impl SketchSummary {
    /// Exact bitwise equality (floats by `to_bits`), for determinism
    /// checks.
    pub fn bits_eq(&self, other: &SketchSummary) -> bool {
        self.count == other.count
            && self.dropped == other.dropped
            && self.mean == other.mean
            && self.p50 == other.p50
            && self.p95 == other.p95
            && self.p99 == other.p99
            && self.max == other.max
            && self.relative_error.to_bits() == other.relative_error.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyRecorder;
    use proptest::prelude::*;

    #[test]
    fn empty_sketch() {
        let s = Sketch::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.99), SimDuration::ZERO);
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.stored_buckets(), 0);
    }

    #[test]
    fn window_stays_small_for_narrow_distributions() {
        let mut s = Sketch::new();
        for i in 0..1_000_000u64 {
            // One decade: 1..10 ms.
            s.record(SimDuration::from_nanos(1_000_000 + (i * 9 + 7) % 9_000_000));
        }
        assert_eq!(s.count(), 1_000_000);
        // ~3.3 octaves of 64 sub-buckets, nowhere near the sample count.
        assert!(s.stored_buckets() <= 4 * 64, "{}", s.stored_buckets());
    }

    #[test]
    fn recording_out_of_order_grows_the_window_front() {
        let mut s = Sketch::new();
        s.record(SimDuration::from_millis(10));
        let high_only = s.stored_buckets();
        s.record(SimDuration::from_nanos(100));
        assert!(s.stored_buckets() > high_only);
        assert_eq!(s.min().as_nanos(), 100);
        assert_eq!(s.max().as_millis(), 10);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = Sketch::new();
        for ns in 1..=63u64 {
            s.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(s.percentile(0.5).as_nanos(), 32);
        assert_eq!(s.percentile(1.0).as_nanos(), 63);
    }

    #[test]
    fn summary_carries_error_bound() {
        let mut s = Sketch::new();
        s.record(SimDuration::from_micros(500));
        s.record_dropped();
        let sum = s.summary();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.dropped, 1);
        assert_eq!(sum.relative_error, Sketch::RELATIVE_ERROR);
        assert!(sum.bits_eq(&s.summary()));
    }

    #[test]
    fn merge_tree_equals_sequential_merge() {
        let mut parts = Vec::new();
        let mut whole = Sketch::new();
        for p in 0..7u64 {
            let mut s = Sketch::new();
            for i in 0..100u64 {
                let v = SimDuration::from_micros(1 + p * 1_000 + i * 37);
                s.record(v);
                whole.record(v);
            }
            parts.push(s);
        }
        let merged = Sketch::merge_tree(parts).expect("non-empty");
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(q), whole.percentile(q));
        }
        assert!(Sketch::merge_tree(Vec::new()).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Sketch::new();
        for i in 1..=500u64 {
            s.record(SimDuration::from_micros(i * 13));
        }
        s.record_dropped();
        let text = serde_json::to_string(&s).expect("serializes");
        let back: Sketch = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.count(), s.count());
        assert_eq!(back.dropped(), s.dropped());
        assert_eq!(back.stored_buckets(), s.stored_buckets());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(back.percentile(q), s.percentile(q));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The headline guarantee: under arbitrary record/merge
        /// interleavings the sketch quantiles stay within the guaranteed
        /// relative error of the exact recorder's nearest-rank
        /// percentiles, and the exact tallies (count/dropped/min/max)
        /// match to the nanosecond.
        #[test]
        fn prop_sketch_matches_exact_within_bound(
            vals in proptest::collection::vec(1u64..50_000_000_000u64, 1..400),
            pieces in 1usize..6,
            drops in 0u64..5,
        ) {
            let mut exact = LatencyRecorder::new();
            let mut parts: Vec<Sketch> = (0..pieces).map(|_| Sketch::new()).collect();
            for (i, &v) in vals.iter().enumerate() {
                exact.record(SimDuration::from_nanos(v));
                parts[i % pieces].record(SimDuration::from_nanos(v));
            }
            for d in 0..drops {
                parts[d as usize % pieces].record_dropped();
            }
            let merged = Sketch::merge_tree(parts).expect("non-empty");
            prop_assert_eq!(merged.count(), exact.len() as u64);
            prop_assert_eq!(merged.dropped(), drops);
            prop_assert_eq!(merged.min(), exact.percentile(0.0));
            prop_assert_eq!(merged.max(), exact.max());
            for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
                let e = exact.percentile(q).as_nanos() as f64;
                let s = merged.percentile(q).as_nanos() as f64;
                prop_assert!(
                    (s - e).abs() <= e * Sketch::RELATIVE_ERROR + 0.5,
                    "q={} exact={} sketch={}", q, e, s
                );
            }
        }

        /// Merge order is irrelevant: A∪B == B∪A bit for bit.
        #[test]
        fn prop_merge_commutes(
            a_vals in proptest::collection::vec(1u64..10_000_000_000u64, 0..200),
            b_vals in proptest::collection::vec(1u64..10_000_000_000u64, 0..200),
        ) {
            let mut a = Sketch::new();
            let mut b = Sketch::new();
            for &v in &a_vals { a.record(SimDuration::from_nanos(v)); }
            for &v in &b_vals { b.record(SimDuration::from_nanos(v)); }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
            for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                prop_assert_eq!(ab.percentile(q), ba.percentile(q));
            }
        }
    }
}
