//! Counters for the overload-resilience subsystem.
//!
//! Every resilience mechanism — admission shedding, retries, hedging,
//! circuit breakers, deadline propagation — increments a counter here so
//! reports can show *why* requests were dropped or duplicated, not just
//! that latency moved. The struct is all-`u64`, serde-defaulted, and
//! merges by addition so box-level stats reduce into cluster and fleet
//! reports the same way latency recorders do.

use serde::{Deserialize, Serialize};

/// Aggregate counters for one run's resilience mechanisms.
///
/// All fields default to zero and the whole struct is skipped from
/// serialized reports when [`ResilienceStats::is_empty`] — runs without a
/// resilience policy produce byte-identical JSON to before the subsystem
/// existed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Arrivals refused by admission control (concurrency + queue cap).
    #[serde(default)]
    pub sheds: u64,
    /// Retry attempts launched after a failed attempt.
    #[serde(default)]
    pub retries: u64,
    /// Hedge duplicates launched for straggling stages.
    #[serde(default)]
    pub hedges_launched: u64,
    /// Hedges that finished before the original attempt.
    #[serde(default)]
    pub hedges_won: u64,
    /// Hedges cancelled because the original finished first.
    #[serde(default)]
    pub hedges_lost: u64,
    /// Circuit-breaker transitions from closed to open.
    #[serde(default)]
    pub breaker_opens: u64,
    /// Stage activations fast-failed by an open breaker.
    #[serde(default)]
    pub breaker_fast_fails: u64,
    /// Stages cancelled because the propagated deadline already passed.
    #[serde(default)]
    pub deadline_cancels: u64,
}

impl ResilienceStats {
    /// True when every counter is zero (serde skip predicate).
    pub fn is_empty(&self) -> bool {
        *self == ResilienceStats::default()
    }

    /// Adds another stats block into this one (fleet/cluster reduction).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.sheds += other.sheds;
        self.retries += other.retries;
        self.hedges_launched += other.hedges_launched;
        self.hedges_won += other.hedges_won;
        self.hedges_lost += other.hedges_lost;
        self.breaker_opens += other.breaker_opens;
        self.breaker_fast_fails += other.breaker_fast_fails;
        self.deadline_cancels += other.deadline_cancels;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_merge_adds() {
        let mut a = ResilienceStats::default();
        assert!(a.is_empty());
        let b = ResilienceStats {
            sheds: 1,
            retries: 2,
            hedges_launched: 3,
            hedges_won: 2,
            hedges_lost: 1,
            breaker_opens: 4,
            breaker_fast_fails: 5,
            deadline_cancels: 6,
        };
        a.merge(&b);
        a.merge(&b);
        assert!(!a.is_empty());
        assert_eq!(a.sheds, 2);
        assert_eq!(a.retries, 4);
        assert_eq!(a.hedges_launched, 6);
        assert_eq!(a.breaker_fast_fails, 10);
        assert_eq!(a.deadline_cancels, 12);
    }

    #[test]
    fn serde_round_trip_and_defaults() {
        let s: ResilienceStats = serde_json::from_str("{}").unwrap();
        assert!(s.is_empty());
        let b = ResilienceStats {
            retries: 7,
            ..Default::default()
        };
        let j = serde_json::to_string(&b).unwrap();
        let back: ResilienceStats = serde_json::from_str(&j).unwrap();
        assert_eq!(back, b);
    }
}
