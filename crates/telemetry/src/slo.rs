//! The paper's service-level objective.
//!
//! IndexServe's SLO (§2.1): *"the 99th percentile must stay within a
//! 1-millisecond limit of its expected value (i.e., without colocation)"*.
//! PerfIso never sees this number — it is blind — but the evaluation grades
//! every isolation policy against it.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// The default SLO margin from the paper: 1 ms over standalone p99.
pub const DEFAULT_MARGIN: SimDuration = SimDuration::from_millis(1);

/// An SLO defined relative to a standalone (no-colocation) baseline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RelativeSlo {
    /// The standalone p99 this service exhibits without colocation.
    pub baseline_p99: SimDuration,
    /// Allowed degradation over the baseline.
    pub margin: SimDuration,
}

impl RelativeSlo {
    /// Creates the paper's SLO: baseline p99 + 1 ms.
    pub fn paper_default(baseline_p99: SimDuration) -> Self {
        RelativeSlo {
            baseline_p99,
            margin: DEFAULT_MARGIN,
        }
    }

    /// The absolute latency bound.
    pub fn bound(&self) -> SimDuration {
        self.baseline_p99 + self.margin
    }

    /// Checks a measured p99 against the SLO.
    pub fn check(&self, measured_p99: SimDuration) -> SloVerdict {
        let degradation = measured_p99.saturating_sub(self.baseline_p99);
        SloVerdict {
            measured_p99,
            degradation,
            met: measured_p99 <= self.bound(),
        }
    }
}

/// The outcome of an SLO check.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SloVerdict {
    /// The measured p99.
    pub measured_p99: SimDuration,
    /// Degradation over the baseline (saturating at zero).
    pub degradation: SimDuration,
    /// Whether the SLO was met.
    pub met: bool,
}

impl std::fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p99={} (+{}) SLO {}",
            self.measured_p99,
            self.degradation,
            if self.met { "MET" } else { "VIOLATED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn met_within_margin() {
        let slo = RelativeSlo::paper_default(SimDuration::from_millis(12));
        let v = slo.check(SimDuration::from_micros(12_800));
        assert!(v.met);
        assert_eq!(v.degradation, SimDuration::from_micros(800));
    }

    #[test]
    fn violated_beyond_margin() {
        let slo = RelativeSlo::paper_default(SimDuration::from_millis(12));
        let v = slo.check(SimDuration::from_millis(15));
        assert!(!v.met);
        assert_eq!(v.degradation, SimDuration::from_millis(3));
    }

    #[test]
    fn boundary_is_met() {
        let slo = RelativeSlo::paper_default(SimDuration::from_millis(12));
        assert!(slo.check(SimDuration::from_millis(13)).met);
        assert!(!slo.check(SimDuration::from_nanos(13_000_001)).met);
    }

    #[test]
    fn faster_than_baseline_is_zero_degradation() {
        let slo = RelativeSlo::paper_default(SimDuration::from_millis(12));
        let v = slo.check(SimDuration::from_millis(10));
        assert!(v.met);
        assert_eq!(v.degradation, SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        let slo = RelativeSlo::paper_default(SimDuration::from_millis(12));
        let s = format!("{}", slo.check(SimDuration::from_millis(20)));
        assert!(s.contains("VIOLATED"), "{s}");
    }
}
