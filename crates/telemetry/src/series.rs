//! Fixed-bucket time series, used for the Fig 10 production timeline
//! (QPS, p99 latency, and CPU utilization over one hour).

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// One bucket of an aggregated series.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Bucket {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Maximum sample (meaningless when `count == 0`).
    pub max: f64,
}

impl Bucket {
    /// Mean of the bucket, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A time series aggregated into fixed-width buckets.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime};
/// use telemetry::TimeSeries;
///
/// let mut s = TimeSeries::new(SimDuration::from_secs(60));
/// s.record(SimTime::from_secs(30), 10.0);
/// s.record(SimTime::from_secs(45), 20.0);
/// s.record(SimTime::from_secs(70), 5.0);
/// assert_eq!(s.bucket(0).unwrap().mean(), 15.0);
/// assert_eq!(s.bucket(1).unwrap().mean(), 5.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeSeries {
    width: SimDuration,
    buckets: Vec<Bucket>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        TimeSeries {
            width,
            buckets: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Records a sample at virtual time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_nanos() / self.width.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Bucket::default());
        }
        let b = &mut self.buckets[idx];
        b.count += 1;
        b.sum += value;
        b.max = if b.count == 1 {
            value
        } else {
            b.max.max(value)
        };
    }

    /// Number of buckets (up to the latest recorded sample).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Returns bucket `idx` if it exists.
    pub fn bucket(&self, idx: usize) -> Option<&Bucket> {
        self.buckets.get(idx)
    }

    /// Iterates `(bucket_start_time, bucket)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Bucket)> {
        let w = self.width;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, b)| (SimTime::from_nanos(i as u64 * w.as_nanos()), b))
    }

    /// Mean of all bucket means that contain data.
    pub fn overall_mean(&self) -> f64 {
        let (sum, n) = self
            .buckets
            .iter()
            .filter(|b| b.count > 0)
            .fold((0.0, 0u64), |(s, n), b| (s + b.mean(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Merges `other` into `self` bucket-by-bucket, summing counts and
    /// sums and keeping the larger maximum. Used by parallel reducers that
    /// record partial series per worker and combine them afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.width, other.width,
            "cannot merge series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), Bucket::default());
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            if b.count == 0 {
                continue;
            }
            a.max = if a.count == 0 {
                b.max
            } else {
                a.max.max(b.max)
            };
            a.count += b.count;
            a.sum += b.sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_assign_by_time() {
        let mut s = TimeSeries::new(SimDuration::from_millis(10));
        s.record(SimTime::from_millis(0), 1.0);
        s.record(SimTime::from_millis(9), 2.0);
        s.record(SimTime::from_millis(10), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bucket(0).unwrap().count, 2);
        assert_eq!(s.bucket(1).unwrap().count, 1);
    }

    #[test]
    fn bucket_stats() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(100), 5.0);
        s.record(SimTime::from_millis(200), 15.0);
        let b = s.bucket(0).unwrap();
        assert_eq!(b.mean(), 10.0);
        assert_eq!(b.max, 15.0);
    }

    #[test]
    fn gaps_are_empty_buckets() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_secs(5), 1.0);
        assert_eq!(s.len(), 6);
        assert_eq!(s.bucket(2).unwrap().count, 0);
        assert_eq!(s.bucket(2).unwrap().mean(), 0.0);
    }

    #[test]
    fn overall_mean_skips_empty() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_secs(0), 10.0);
        s.record(SimTime::from_secs(5), 20.0);
        assert_eq!(s.overall_mean(), 15.0);
    }

    #[test]
    fn merge_combines_buckets() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        let mut b = TimeSeries::new(SimDuration::from_secs(1));
        a.record(SimTime::from_millis(100), 10.0);
        b.record(SimTime::from_millis(200), 30.0);
        b.record(SimTime::from_secs(3), 7.0);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.bucket(0).unwrap().count, 2);
        assert_eq!(a.bucket(0).unwrap().mean(), 20.0);
        assert_eq!(a.bucket(0).unwrap().max, 30.0);
        assert_eq!(a.bucket(3).unwrap().mean(), 7.0);
    }

    #[test]
    fn merge_matches_direct_recording() {
        let samples: Vec<(u64, f64)> = (0..200)
            .map(|i| (i * 137 % 5_000, (i as f64) * 0.75 - 30.0))
            .collect();
        let mut whole = TimeSeries::new(SimDuration::from_millis(500));
        let mut left = TimeSeries::new(SimDuration::from_millis(500));
        let mut right = TimeSeries::new(SimDuration::from_millis(500));
        for (i, &(t, v)) in samples.iter().enumerate() {
            whole.record(SimTime::from_millis(t), v);
            if i % 2 == 0 {
                left.record(SimTime::from_millis(t), v);
            } else {
                right.record(SimTime::from_millis(t), v);
            }
        }
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        for i in 0..whole.len() {
            let (a, b) = (left.bucket(i).unwrap(), whole.bucket(i).unwrap());
            assert_eq!(a.count, b.count, "bucket {i} count");
            assert!((a.sum - b.sum).abs() < 1e-9, "bucket {i} sum");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "bucket {i} max");
        }
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        let b = TimeSeries::new(SimDuration::from_secs(2));
        a.merge(&b);
    }

    #[test]
    fn iter_yields_start_times() {
        let mut s = TimeSeries::new(SimDuration::from_secs(60));
        s.record(SimTime::from_secs(90), 1.0);
        let times: Vec<u64> = s.iter().map(|(t, _)| t.as_millis() / 1000).collect();
        assert_eq!(times, vec![0, 60]);
    }
}
