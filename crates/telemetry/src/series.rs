//! Fixed-bucket time series, used for the Fig 10 production timeline
//! (QPS, p99 latency, and CPU utilization over one hour).
//!
//! Storage is offset-based: only the window from the first recorded
//! bucket onward is materialized, so a series that first sees data at
//! simulated hour 23 with one-second buckets stores one bucket, not
//! ~86k empty ones. Leading gaps are still observable through
//! [`TimeSeries::bucket`]/[`TimeSeries::iter`] as empty buckets, and the
//! serialized form of a series that starts at t=0 (every series the
//! existing fixtures contain) is byte-identical to the old dense layout.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// One bucket of an aggregated series.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Bucket {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Maximum sample (meaningless when `count == 0`).
    pub max: f64,
}

impl Bucket {
    /// Mean of the bucket, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The bucket returned for indices inside a leading gap.
static EMPTY_BUCKET: Bucket = Bucket {
    count: 0,
    sum: 0.0,
    max: 0.0,
};

/// A time series aggregated into fixed-width buckets.
///
/// # Examples
///
/// ```
/// use simcore::{SimDuration, SimTime};
/// use telemetry::TimeSeries;
///
/// let mut s = TimeSeries::new(SimDuration::from_secs(60));
/// s.record(SimTime::from_secs(30), 10.0);
/// s.record(SimTime::from_secs(45), 20.0);
/// s.record(SimTime::from_secs(70), 5.0);
/// assert_eq!(s.bucket(0).unwrap().mean(), 15.0);
/// assert_eq!(s.bucket(1).unwrap().mean(), 5.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeSeries {
    width: SimDuration,
    /// Index of the first stored bucket. Omitted from (and defaulted in)
    /// JSON when zero, which keeps every series starting at t=0 — all
    /// existing fixtures — byte-identical to the old dense layout.
    #[serde(default, skip_serializing_if = "TimeSeries::index_is_zero")]
    first: usize,
    buckets: Vec<Bucket>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        TimeSeries {
            width,
            first: 0,
            buckets: Vec::new(),
        }
    }

    /// `skip_serializing_if` predicate for the `first` offset.
    fn index_is_zero(v: &usize) -> bool {
        *v == 0
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Records a sample at virtual time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_nanos() / self.width.as_nanos()) as usize;
        if self.buckets.is_empty() {
            self.first = idx;
            self.buckets.push(Bucket::default());
        } else if idx < self.first {
            let grow = self.first - idx;
            self.buckets
                .splice(0..0, std::iter::repeat_n(Bucket::default(), grow));
            self.first = idx;
        } else if idx >= self.first + self.buckets.len() {
            self.buckets.resize(idx - self.first + 1, Bucket::default());
        }
        let b = &mut self.buckets[idx - self.first];
        b.count += 1;
        b.sum += value;
        b.max = if b.count == 1 {
            value
        } else {
            b.max.max(value)
        };
    }

    /// Number of buckets (up to the latest recorded sample), counting
    /// any unmaterialized leading gap.
    pub fn len(&self) -> usize {
        if self.buckets.is_empty() {
            0
        } else {
            self.first + self.buckets.len()
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of buckets actually materialized in memory — the series'
    /// footprint, independent of how late its window starts.
    pub fn stored_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Index of the first stored bucket (0 when empty).
    pub fn first_index(&self) -> usize {
        if self.buckets.is_empty() {
            0
        } else {
            self.first
        }
    }

    /// Returns bucket `idx` if it exists. Indices inside the leading gap
    /// resolve to an empty bucket.
    pub fn bucket(&self, idx: usize) -> Option<&Bucket> {
        if idx >= self.len() {
            None
        } else if idx < self.first {
            Some(&EMPTY_BUCKET)
        } else {
            self.buckets.get(idx - self.first)
        }
    }

    /// Iterates `(bucket_start_time, bucket)` pairs, leading gap
    /// included.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &Bucket)> {
        let w = self.width;
        (0..self.len()).map(move |i| {
            (
                SimTime::from_nanos(i as u64 * w.as_nanos()),
                self.bucket(i).expect("index in range"),
            )
        })
    }

    /// Mean of all bucket means that contain data.
    pub fn overall_mean(&self) -> f64 {
        let (sum, n) = self
            .buckets
            .iter()
            .filter(|b| b.count > 0)
            .fold((0.0, 0u64), |(s, n), b| (s + b.mean(), n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Merges `other` into `self` bucket-by-bucket, summing counts and
    /// sums and keeping the larger maximum. Used by parallel reducers that
    /// record partial series per worker and combine them afterwards. The
    /// stored window grows only to the union of the two windows — merging
    /// a late-starting series never materializes the leading gap.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.width, other.width,
            "cannot merge series with different bucket widths"
        );
        if other.buckets.is_empty() {
            return;
        }
        if self.buckets.is_empty() {
            self.first = other.first;
            self.buckets = other.buckets.clone();
            return;
        }
        let new_first = self.first.min(other.first);
        let new_end = self.len().max(other.len());
        if new_first < self.first {
            let grow = self.first - new_first;
            self.buckets
                .splice(0..0, std::iter::repeat_n(Bucket::default(), grow));
            self.first = new_first;
        }
        if new_end - self.first > self.buckets.len() {
            self.buckets.resize(new_end - self.first, Bucket::default());
        }
        for (i, b) in other.buckets.iter().enumerate() {
            if b.count == 0 {
                continue;
            }
            let a = &mut self.buckets[other.first + i - self.first];
            a.max = if a.count == 0 {
                b.max
            } else {
                a.max.max(b.max)
            };
            a.count += b.count;
            a.sum += b.sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_assign_by_time() {
        let mut s = TimeSeries::new(SimDuration::from_millis(10));
        s.record(SimTime::from_millis(0), 1.0);
        s.record(SimTime::from_millis(9), 2.0);
        s.record(SimTime::from_millis(10), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.bucket(0).unwrap().count, 2);
        assert_eq!(s.bucket(1).unwrap().count, 1);
    }

    #[test]
    fn bucket_stats() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(100), 5.0);
        s.record(SimTime::from_millis(200), 15.0);
        let b = s.bucket(0).unwrap();
        assert_eq!(b.mean(), 10.0);
        assert_eq!(b.max, 15.0);
    }

    #[test]
    fn gaps_are_empty_buckets() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_secs(5), 1.0);
        assert_eq!(s.len(), 6);
        assert_eq!(s.bucket(2).unwrap().count, 0);
        assert_eq!(s.bucket(2).unwrap().mean(), 0.0);
    }

    #[test]
    fn late_first_sample_does_not_materialize_the_prefix() {
        // The motivating regression: one sample at simulated hour 23 with
        // 1 s buckets used to allocate ~86k empty buckets.
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_secs(23 * 3600), 42.0);
        assert_eq!(s.len(), 23 * 3600 + 1);
        assert_eq!(s.stored_buckets(), 1);
        assert_eq!(s.first_index(), 23 * 3600);
        assert_eq!(s.bucket(0).unwrap().count, 0);
        assert_eq!(s.bucket(23 * 3600).unwrap().max, 42.0);
        assert!(s.bucket(23 * 3600 + 1).is_none());
        // Filling backwards materializes only what the window needs.
        s.record(SimTime::from_secs(23 * 3600 - 2), 7.0);
        assert_eq!(s.stored_buckets(), 3);
        assert_eq!(s.bucket(23 * 3600 - 2).unwrap().max, 7.0);
    }

    #[test]
    fn overall_mean_skips_empty() {
        let mut s = TimeSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_secs(0), 10.0);
        s.record(SimTime::from_secs(5), 20.0);
        assert_eq!(s.overall_mean(), 15.0);
    }

    #[test]
    fn merge_combines_buckets() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        let mut b = TimeSeries::new(SimDuration::from_secs(1));
        a.record(SimTime::from_millis(100), 10.0);
        b.record(SimTime::from_millis(200), 30.0);
        b.record(SimTime::from_secs(3), 7.0);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.bucket(0).unwrap().count, 2);
        assert_eq!(a.bucket(0).unwrap().mean(), 20.0);
        assert_eq!(a.bucket(0).unwrap().max, 30.0);
        assert_eq!(a.bucket(3).unwrap().mean(), 7.0);
    }

    #[test]
    fn merge_matches_direct_recording() {
        let samples: Vec<(u64, f64)> = (0..200)
            .map(|i| (i * 137 % 5_000, (i as f64) * 0.75 - 30.0))
            .collect();
        let mut whole = TimeSeries::new(SimDuration::from_millis(500));
        let mut left = TimeSeries::new(SimDuration::from_millis(500));
        let mut right = TimeSeries::new(SimDuration::from_millis(500));
        for (i, &(t, v)) in samples.iter().enumerate() {
            whole.record(SimTime::from_millis(t), v);
            if i % 2 == 0 {
                left.record(SimTime::from_millis(t), v);
            } else {
                right.record(SimTime::from_millis(t), v);
            }
        }
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        for i in 0..whole.len() {
            let (a, b) = (left.bucket(i).unwrap(), whole.bucket(i).unwrap());
            assert_eq!(a.count, b.count, "bucket {i} count");
            assert!((a.sum - b.sum).abs() < 1e-9, "bucket {i} sum");
            assert_eq!(a.max.to_bits(), b.max.to_bits(), "bucket {i} max");
        }
    }

    #[test]
    fn merging_late_series_into_empty_keeps_the_window() {
        // The satellite regression: merge used to resize the target to the
        // source's *dense* length, materializing the whole prefix.
        let mut late = TimeSeries::new(SimDuration::from_secs(1));
        late.record(SimTime::from_secs(80_000), 1.5);
        late.record(SimTime::from_secs(80_003), 2.5);
        let mut acc = TimeSeries::new(SimDuration::from_secs(1));
        acc.merge(&late);
        assert_eq!(acc.len(), 80_004);
        assert_eq!(acc.stored_buckets(), 4);
        assert_eq!(acc.first_index(), 80_000);
        assert_eq!(acc.bucket(80_003).unwrap().max, 2.5);

        // Merging two disjoint late windows stores only their union.
        let mut other = TimeSeries::new(SimDuration::from_secs(1));
        other.record(SimTime::from_secs(79_990), 9.0);
        acc.merge(&other);
        assert_eq!(acc.first_index(), 79_990);
        assert_eq!(acc.stored_buckets(), 14);
        assert_eq!(acc.len(), 80_004);
        assert_eq!(acc.bucket(79_990).unwrap().max, 9.0);
        assert_eq!(acc.bucket(80_000).unwrap().max, 1.5);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = TimeSeries::new(SimDuration::from_secs(1));
        let b = TimeSeries::new(SimDuration::from_secs(2));
        a.merge(&b);
    }

    #[test]
    fn iter_yields_start_times() {
        let mut s = TimeSeries::new(SimDuration::from_secs(60));
        s.record(SimTime::from_secs(90), 1.0);
        let times: Vec<u64> = s.iter().map(|(t, _)| t.as_millis() / 1000).collect();
        assert_eq!(times, vec![0, 60]);
    }

    #[test]
    fn serde_shape_is_stable() {
        // A series starting at t=0 serializes without a `first` key —
        // byte-identical to the pre-offset layout the fixtures pin.
        let mut s = TimeSeries::new(SimDuration::from_secs(60));
        s.record(SimTime::from_secs(30), 1.0);
        let text = serde_json::to_string(&s).expect("serializes");
        assert!(!text.contains("first"), "{text}");

        // A late-starting series round-trips with its offset intact.
        let mut late = TimeSeries::new(SimDuration::from_secs(1));
        late.record(SimTime::from_secs(5_000), 3.0);
        let text = serde_json::to_string(&late).expect("serializes");
        assert!(text.contains("first"), "{text}");
        let back: TimeSeries = serde_json::from_str(&text).expect("parses");
        assert_eq!(back.len(), late.len());
        assert_eq!(back.stored_buckets(), 1);
        assert_eq!(back.bucket(5_000).unwrap().max, 3.0);
    }
}
