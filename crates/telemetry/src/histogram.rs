//! HDR-style log-bucketed histogram.
//!
//! For streaming contexts (long fleet runs) where keeping every sample is
//! wasteful, [`LogHistogram`] buckets values logarithmically: 64 sub-buckets
//! per power of two, bounding relative quantile error to about 1.6 %.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 64
const OCTAVES: usize = 44; // covers 1ns .. ~4.8 hours
pub(crate) const NUM_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A fixed-memory histogram with ~1.6 % relative error on quantiles.
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
/// use telemetry::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for ms in 1..=1000u64 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let p50 = h.percentile(0.5).as_millis() as f64;
/// assert!((p50 - 500.0).abs() / 500.0 < 0.02);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    max_ns: u64,
    min_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .field("min_ns", &self.min_ns)
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

pub(crate) fn bucket_index(value_ns: u64) -> usize {
    let v = value_ns.max(1);
    let msb = 63 - v.leading_zeros();
    if msb < SUB_BUCKET_BITS {
        // Small values map directly into the first octave's sub-buckets.
        return v as usize;
    }
    let octave = (msb - SUB_BUCKET_BITS + 1) as usize;
    let sub = (v >> (octave as u32 - 1)) as usize & (SUB_BUCKETS - 1);
    let idx = octave * SUB_BUCKETS + sub;
    idx.min(NUM_BUCKETS - 1)
}

pub(crate) fn bucket_midpoint(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let octave = idx / SUB_BUCKETS;
    let sub = idx % SUB_BUCKETS;
    let base = (SUB_BUCKETS as u64 + sub as u64) << (octave as u32 - 1);
    let width = 1u64 << (octave as u32 - 1);
    base + width / 2
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Total recorded count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Estimated `q`-quantile; zero when empty.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let mid = bucket_midpoint(idx);
                return SimDuration::from_nanos(mid.clamp(self.min_ns, self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// The exact maximum recorded value (zero when empty).
    pub fn max(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// The exact minimum recorded value (zero when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Merges `other` into `self`: bucket counts and totals sum, and
    /// `min`/`max` reconcile to the extremes of both sides. Merging
    /// per-worker histograms is exactly equivalent to having recorded all
    /// samples into one histogram (see the merge property tests), which is
    /// what lets parallel reducers combine results order-independently.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn single_value() {
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_micros(123));
        assert_eq!(h.count(), 1);
        let p = h.percentile(0.5).as_nanos() as f64;
        assert!((p - 123_000.0).abs() / 123_000.0 < 0.02, "p {p}");
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = LogHistogram::new();
        for i in 1..=100_000u64 {
            h.record(SimDuration::from_micros(i));
        }
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = (q * 100_000.0) * 1_000.0;
            let est = h.percentile(q).as_nanos() as f64;
            let err = (est - exact).abs() / exact;
            assert!(err < 0.02, "q={q} exact={exact} est={est} err={err}");
        }
    }

    #[test]
    fn min_max_exact() {
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_nanos(17));
        h.record(SimDuration::from_millis(250));
        assert_eq!(h.min().as_nanos(), 17);
        assert_eq!(h.max().as_millis(), 250);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 1..=1000u64 {
            a.record(SimDuration::from_micros(i));
            b.record(SimDuration::from_micros(i + 1000));
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        let p50 = a.percentile(0.5).as_micros() as f64;
        assert!((p50 - 1000.0).abs() / 1000.0 < 0.03, "p50 {p50}");
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_secs(10_000));
        assert!(h.percentile(1.0).as_secs_f64() > 0.0);
    }

    proptest! {
        /// Bucket index is monotone non-decreasing in the value.
        #[test]
        fn prop_bucket_monotone(a in 1u64..u64::MAX / 2) {
            prop_assert!(bucket_index(a) <= bucket_index(a + 1));
        }

        /// A bucket's midpoint maps back into the same bucket.
        #[test]
        fn prop_midpoint_roundtrip(v in 1u64..1_000_000_000_000u64) {
            let idx = bucket_index(v);
            let mid = bucket_midpoint(idx);
            prop_assert_eq!(bucket_index(mid.max(1)), idx);
        }

        /// Merging split halves is indistinguishable from recording every
        /// sample into one histogram: identical buckets, totals, min/max,
        /// and therefore identical percentiles. This is the property the
        /// parallel fleet reducer relies on.
        #[test]
        fn prop_merge_equals_single_recording(
            vals in proptest::collection::vec(1u64..100_000_000_000u64, 1..400),
            split in 0usize..400,
        ) {
            let split = split.min(vals.len());
            let mut whole = LogHistogram::new();
            let mut left = LogHistogram::new();
            let mut right = LogHistogram::new();
            for (i, &v) in vals.iter().enumerate() {
                whole.record(SimDuration::from_nanos(v));
                if i < split {
                    left.record(SimDuration::from_nanos(v));
                } else {
                    right.record(SimDuration::from_nanos(v));
                }
            }
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert_eq!(left.min(), whole.min());
            prop_assert_eq!(left.max(), whole.max());
            prop_assert_eq!(left.counts, whole.counts);
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(left.percentile(q), whole.percentile(q));
            }
        }

        /// Merge is order-independent: A∪B == B∪A.
        #[test]
        fn prop_merge_commutes(
            a_vals in proptest::collection::vec(1u64..10_000_000_000u64, 0..200),
            b_vals in proptest::collection::vec(1u64..10_000_000_000u64, 0..200),
        ) {
            let mut a = LogHistogram::new();
            let mut b = LogHistogram::new();
            for &v in &a_vals { a.record(SimDuration::from_nanos(v)); }
            for &v in &b_vals { b.record(SimDuration::from_nanos(v)); }
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.counts, ba.counts);
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
        }

        /// Quantile relative error stays within 2% for wide-ranging data.
        #[test]
        fn prop_quantile_error(vals in proptest::collection::vec(1_000u64..10_000_000_000u64, 10..500)) {
            let mut h = LogHistogram::new();
            let mut sorted = vals.clone();
            for &v in &vals {
                h.record(SimDuration::from_nanos(v));
            }
            sorted.sort_unstable();
            let q = 0.9;
            let n = sorted.len();
            let rank = (((q * n as f64).ceil() as usize).clamp(1, n)) - 1;
            let exact = sorted[rank] as f64;
            let est = h.percentile(q).as_nanos() as f64;
            prop_assert!((est - exact).abs() / exact < 0.02, "exact {} est {}", exact, est);
        }
    }
}
