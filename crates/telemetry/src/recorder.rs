//! Exact latency percentile recording.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Collects latency samples and reports exact percentiles.
///
/// Samples are kept in full (the experiments record at most a few hundred
/// thousand queries), so percentiles are exact order statistics rather than
/// histogram estimates. Dropped (timed-out) queries are counted separately
/// and excluded from the latency distribution, matching the paper's
/// methodology (completed-query percentiles plus a dropped-query ratio).
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
/// use telemetry::LatencyRecorder;
///
/// let mut r = LatencyRecorder::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     r.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(r.percentile(0.5).as_millis(), 3);
/// assert_eq!(r.max().as_millis(), 100);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
    dropped: u64,
    #[serde(skip)]
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            samples_ns: Vec::new(),
            dropped: 0,
            sorted: true,
        }
    }

    /// Records a completed-query latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.samples_ns.push(latency.as_nanos());
        self.sorted = false;
    }

    /// Records a dropped (timed-out) query.
    pub fn record_dropped(&mut self) {
        self.dropped += 1;
    }

    /// Number of completed samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Number of dropped queries.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Fraction of queries dropped, in `[0, 1]`.
    pub fn drop_ratio(&self) -> f64 {
        let total = self.samples_ns.len() as u64 + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
    }

    /// The exact `q`-quantile (`0 <= q <= 1`) of completed latencies.
    ///
    /// Returns [`SimDuration::ZERO`] when empty. Uses the nearest-rank
    /// method: `ceil(q * n)`-th smallest sample.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let n = self.samples_ns.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        SimDuration::from_nanos(self.samples_ns[rank - 1])
    }

    /// Mean of completed latencies (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples_ns.iter().map(|&x| x as u128).sum();
        SimDuration::from_nanos((sum / self.samples_ns.len() as u128) as u64)
    }

    /// Largest completed latency (zero when empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples_ns.iter().copied().max().unwrap_or(0))
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.dropped += other.dropped;
        self.sorted = false;
    }

    /// Convenience: (p50, p95, p99) in one call.
    pub fn summary(&mut self) -> PercentileSummary {
        PercentileSummary {
            count: self.len() as u64,
            dropped: self.dropped,
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
        }
    }
}

/// A snapshot of the standard latency statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// Completed-query count.
    pub count: u64,
    /// Dropped-query count.
    pub dropped: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile latency.
    pub p95: SimDuration,
    /// 99th percentile latency — the paper's headline metric.
    pub p99: SimDuration,
    /// Maximum observed latency.
    pub max: SimDuration,
}

impl PercentileSummary {
    /// Fraction of queries dropped.
    pub fn drop_ratio(&self) -> f64 {
        let total = self.count + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.percentile(0.99), SimDuration::ZERO);
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert_eq!(r.drop_ratio(), 0.0);
    }

    #[test]
    fn exact_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_millis(i));
        }
        assert_eq!(r.percentile(0.50).as_millis(), 50);
        assert_eq!(r.percentile(0.95).as_millis(), 95);
        assert_eq!(r.percentile(0.99).as_millis(), 99);
        assert_eq!(r.percentile(1.0).as_millis(), 100);
        assert_eq!(r.percentile(0.0).as_millis(), 1);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut r = LatencyRecorder::new();
        for i in (1..=10u64).rev() {
            r.record(SimDuration::from_millis(i));
        }
        assert_eq!(r.percentile(0.5).as_millis(), 5);
        r.record(SimDuration::from_millis(100));
        assert_eq!(r.max().as_millis(), 100);
    }

    #[test]
    fn drop_ratio_counts() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_millis(1));
        r.record_dropped();
        r.record_dropped();
        r.record_dropped();
        assert!((r.drop_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        b.record_dropped();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.percentile(1.0).as_millis(), 3);
    }

    #[test]
    fn summary_is_consistent() {
        let mut r = LatencyRecorder::new();
        for i in 1..=1000u64 {
            r.record(SimDuration::from_micros(i));
        }
        let s = r.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50.as_micros(), 500);
        assert_eq!(s.p99.as_micros(), 990);
        assert_eq!(s.max.as_micros(), 1000);
    }

    proptest! {
        /// Percentiles are monotone in q and bounded by min/max.
        #[test]
        fn prop_percentile_monotone(mut xs in proptest::collection::vec(1u64..1_000_000, 1..300)) {
            let mut r = LatencyRecorder::new();
            for &x in &xs {
                r.record(SimDuration::from_nanos(x));
            }
            xs.sort_unstable();
            let mut last = SimDuration::ZERO;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let p = r.percentile(q);
                prop_assert!(p >= last);
                prop_assert!(p.as_nanos() <= *xs.last().unwrap());
                last = p;
            }
            prop_assert_eq!(r.percentile(1.0).as_nanos(), *xs.last().unwrap());
        }
    }
}
