//! Latency percentile recording: exact by default, sketch-backed at scale.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::sketch::{Sketch, SketchSummary};

/// Which recording backend a simulation's latency recorders use.
///
/// `Exact` keeps every sample and reports exact order statistics — the
/// default, and what every golden fixture was blessed with. `Sketch`
/// switches to the bounded-memory [`Sketch`] estimator for
/// production-scale runs where per-sample storage is unaffordable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Keep all samples; percentiles are exact order statistics.
    #[default]
    Exact,
    /// Log-bucketed sketch with a guaranteed relative error
    /// ([`Sketch::RELATIVE_ERROR`]).
    Sketch,
}

impl TelemetryMode {
    /// Creates a recorder using this backend.
    pub fn recorder(self) -> LatencyRecorder {
        match self {
            TelemetryMode::Exact => LatencyRecorder::new(),
            TelemetryMode::Sketch => LatencyRecorder::sketch(),
        }
    }
}

/// The exact backend: every sample kept, percentiles by nearest rank.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct ExactRecorder {
    samples_ns: Vec<u64>,
    dropped: u64,
    #[serde(skip)]
    sorted: bool,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Backend {
    Exact(ExactRecorder),
    Sketch(Sketch),
}

/// Collects latency samples and reports percentiles.
///
/// The default backend keeps samples in full (the paper-scale experiments
/// record at most a few hundred thousand queries), so percentiles are
/// exact order statistics rather than histogram estimates. Production-
/// scale runs construct the recorder via [`TelemetryMode::Sketch`] /
/// [`LatencyRecorder::sketch`], which stores a bounded bucket window
/// instead of samples and estimates quantiles within
/// [`Sketch::RELATIVE_ERROR`]. Dropped (timed-out) queries are counted
/// separately and excluded from the latency distribution in both modes,
/// matching the paper's methodology (completed-query percentiles plus a
/// dropped-query ratio).
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
/// use telemetry::LatencyRecorder;
///
/// let mut r = LatencyRecorder::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     r.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(r.percentile(0.5).as_millis(), 3);
/// assert_eq!(r.max().as_millis(), 100);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyRecorder {
    backend: Backend,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty exact recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            backend: Backend::Exact(ExactRecorder {
                samples_ns: Vec::new(),
                dropped: 0,
                sorted: true,
            }),
        }
    }

    /// Creates an empty sketch-backed recorder (bounded memory,
    /// [`Sketch::RELATIVE_ERROR`] quantile estimates).
    pub fn sketch() -> Self {
        LatencyRecorder {
            backend: Backend::Sketch(Sketch::new()),
        }
    }

    /// True when this recorder uses the sketch backend.
    pub fn is_sketch(&self) -> bool {
        matches!(self.backend, Backend::Sketch(_))
    }

    /// Records a completed-query latency.
    pub fn record(&mut self, latency: SimDuration) {
        match &mut self.backend {
            Backend::Exact(e) => {
                e.samples_ns.push(latency.as_nanos());
                e.sorted = false;
            }
            Backend::Sketch(s) => s.record(latency),
        }
    }

    /// Records a dropped (timed-out) query.
    pub fn record_dropped(&mut self) {
        match &mut self.backend {
            Backend::Exact(e) => e.dropped += 1,
            Backend::Sketch(s) => s.record_dropped(),
        }
    }

    /// Number of completed samples.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Exact(e) => e.samples_ns.len(),
            Backend::Sketch(s) => s.count() as usize,
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dropped queries.
    pub fn dropped(&self) -> u64 {
        match &self.backend {
            Backend::Exact(e) => e.dropped,
            Backend::Sketch(s) => s.dropped(),
        }
    }

    /// Fraction of queries dropped, in `[0, 1]`.
    pub fn drop_ratio(&self) -> f64 {
        let total = self.len() as u64 + self.dropped();
        if total == 0 {
            0.0
        } else {
            self.dropped() as f64 / total as f64
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`) of completed latencies.
    ///
    /// Returns [`SimDuration::ZERO`] when empty. The exact backend uses
    /// the nearest-rank method (`ceil(q * n)`-th smallest sample); the
    /// sketch backend estimates within [`Sketch::RELATIVE_ERROR`].
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        match &mut self.backend {
            Backend::Exact(e) => {
                if e.samples_ns.is_empty() {
                    return SimDuration::ZERO;
                }
                if !e.sorted {
                    e.samples_ns.sort_unstable();
                    e.sorted = true;
                }
                let q = q.clamp(0.0, 1.0);
                let n = e.samples_ns.len();
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                SimDuration::from_nanos(e.samples_ns[rank - 1])
            }
            Backend::Sketch(s) => s.percentile(q),
        }
    }

    /// Mean of completed latencies (zero when empty).
    pub fn mean(&self) -> SimDuration {
        match &self.backend {
            Backend::Exact(e) => {
                if e.samples_ns.is_empty() {
                    return SimDuration::ZERO;
                }
                let sum: u128 = e.samples_ns.iter().map(|&x| x as u128).sum();
                SimDuration::from_nanos((sum / e.samples_ns.len() as u128) as u64)
            }
            Backend::Sketch(s) => s.mean(),
        }
    }

    /// Largest completed latency (zero when empty).
    pub fn max(&self) -> SimDuration {
        match &self.backend {
            Backend::Exact(e) => {
                SimDuration::from_nanos(e.samples_ns.iter().copied().max().unwrap_or(0))
            }
            Backend::Sketch(s) => s.max(),
        }
    }

    /// Merges another recorder into this one. Exact merges into exact,
    /// sketch merges into sketch, and an exact recorder's samples replay
    /// into a sketch.
    ///
    /// # Panics
    ///
    /// Panics when merging a sketch into an exact recorder — the samples
    /// behind the sketch's counters are gone, so no exact merge exists.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        match (&mut self.backend, &other.backend) {
            (Backend::Exact(a), Backend::Exact(b)) => {
                a.samples_ns.extend_from_slice(&b.samples_ns);
                a.dropped += b.dropped;
                a.sorted = false;
            }
            (Backend::Sketch(a), Backend::Sketch(b)) => a.merge(b),
            (Backend::Sketch(a), Backend::Exact(b)) => {
                for &ns in &b.samples_ns {
                    a.record(SimDuration::from_nanos(ns));
                }
                for _ in 0..b.dropped {
                    a.record_dropped();
                }
            }
            (Backend::Exact(_), Backend::Sketch(_)) => {
                panic!("cannot merge a sketch-backed recorder into an exact one")
            }
        }
    }

    /// Convenience: (p50, p95, p99) in one call.
    pub fn summary(&mut self) -> PercentileSummary {
        PercentileSummary {
            count: self.len() as u64,
            dropped: self.dropped(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
        }
    }

    /// The sketch summary (statistics plus error bound) when this
    /// recorder is sketch-backed; `None` on the exact backend.
    pub fn sketch_summary(&self) -> Option<SketchSummary> {
        match &self.backend {
            Backend::Exact(_) => None,
            Backend::Sketch(s) => Some(s.summary()),
        }
    }

    /// Consumes the recorder and returns its sketch, if sketch-backed.
    pub fn take_sketch(self) -> Option<Sketch> {
        match self.backend {
            Backend::Exact(_) => None,
            Backend::Sketch(s) => Some(s),
        }
    }
}

/// A snapshot of the standard latency statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// Completed-query count.
    pub count: u64,
    /// Dropped-query count.
    pub dropped: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile latency.
    pub p95: SimDuration,
    /// 99th percentile latency — the paper's headline metric.
    pub p99: SimDuration,
    /// Maximum observed latency.
    pub max: SimDuration,
}

impl PercentileSummary {
    /// Fraction of queries dropped.
    pub fn drop_ratio(&self) -> f64 {
        let total = self.count + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sketch;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.percentile(0.99), SimDuration::ZERO);
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert_eq!(r.drop_ratio(), 0.0);
    }

    #[test]
    fn exact_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_millis(i));
        }
        assert_eq!(r.percentile(0.50).as_millis(), 50);
        assert_eq!(r.percentile(0.95).as_millis(), 95);
        assert_eq!(r.percentile(0.99).as_millis(), 99);
        assert_eq!(r.percentile(1.0).as_millis(), 100);
        assert_eq!(r.percentile(0.0).as_millis(), 1);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut r = LatencyRecorder::new();
        for i in (1..=10u64).rev() {
            r.record(SimDuration::from_millis(i));
        }
        assert_eq!(r.percentile(0.5).as_millis(), 5);
        r.record(SimDuration::from_millis(100));
        assert_eq!(r.max().as_millis(), 100);
    }

    #[test]
    fn drop_ratio_counts() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_millis(1));
        r.record_dropped();
        r.record_dropped();
        r.record_dropped();
        assert!((r.drop_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        b.record_dropped();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 1);
        assert_eq!(a.percentile(1.0).as_millis(), 3);
    }

    #[test]
    fn summary_is_consistent() {
        let mut r = LatencyRecorder::new();
        for i in 1..=1000u64 {
            r.record(SimDuration::from_micros(i));
        }
        let s = r.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50.as_micros(), 500);
        assert_eq!(s.p99.as_micros(), 990);
        assert_eq!(s.max.as_micros(), 1000);
    }

    #[test]
    fn sketch_backend_tracks_exact_within_bound() {
        let mut exact = LatencyRecorder::new();
        let mut sk = LatencyRecorder::sketch();
        assert!(sk.is_sketch() && !exact.is_sketch());
        for i in 1..=5_000u64 {
            let v = SimDuration::from_micros(i * 7 % 4_000 + 1);
            exact.record(v);
            sk.record(v);
        }
        sk.record_dropped();
        assert_eq!(sk.len(), exact.len());
        assert_eq!(sk.dropped(), 1);
        for q in [0.5, 0.95, 0.99] {
            let e = exact.percentile(q).as_nanos() as f64;
            let s = sk.percentile(q).as_nanos() as f64;
            assert!(
                (s - e).abs() <= e * Sketch::RELATIVE_ERROR + 0.5,
                "q={q} exact={e} sketch={s}"
            );
        }
        let summary = sk.sketch_summary().expect("sketch backend");
        assert_eq!(summary.count, 5_000);
        assert_eq!(summary.relative_error, Sketch::RELATIVE_ERROR);
        assert!(exact.sketch_summary().is_none());
    }

    #[test]
    fn exact_samples_replay_into_sketch_merge() {
        let mut sk = LatencyRecorder::sketch();
        let mut exact = LatencyRecorder::new();
        exact.record(SimDuration::from_millis(2));
        exact.record_dropped();
        sk.record(SimDuration::from_millis(8));
        sk.merge(&exact);
        assert_eq!(sk.len(), 2);
        assert_eq!(sk.dropped(), 1);
        assert_eq!(sk.max().as_millis(), 8);
        let sketch = sk.take_sketch().expect("sketch backend");
        assert_eq!(sketch.count(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot merge a sketch")]
    fn sketch_into_exact_panics() {
        let mut exact = LatencyRecorder::new();
        let sk = LatencyRecorder::sketch();
        exact.merge(&sk);
    }

    #[test]
    fn mode_selects_backend() {
        assert!(!TelemetryMode::Exact.recorder().is_sketch());
        assert!(TelemetryMode::Sketch.recorder().is_sketch());
        assert_eq!(TelemetryMode::default(), TelemetryMode::Exact);
    }

    proptest! {
        /// Percentiles are monotone in q and bounded by min/max.
        #[test]
        fn prop_percentile_monotone(mut xs in proptest::collection::vec(1u64..1_000_000, 1..300)) {
            let mut r = LatencyRecorder::new();
            for &x in &xs {
                r.record(SimDuration::from_nanos(x));
            }
            xs.sort_unstable();
            let mut last = SimDuration::ZERO;
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                let p = r.percentile(q);
                prop_assert!(p >= last);
                prop_assert!(p.as_nanos() <= *xs.last().unwrap());
                last = p;
            }
            prop_assert_eq!(r.percentile(1.0).as_nanos(), *xs.last().unwrap());
        }
    }
}
