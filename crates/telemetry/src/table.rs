//! Plain-text tables for the benchmark harness output.
//!
//! Each bench target prints its figure's data as an aligned table so that
//! `cargo bench` output can be compared side-by-side with the paper.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use telemetry::table::Table;
///
/// let mut t = Table::new(&["policy", "p99 (ms)"]);
/// t.row(&["blind", "12.4"]);
/// t.row(&["none", "349.0"]);
/// let s = t.render();
/// assert!(s.contains("blind"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| s.to_string())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row from owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.truncate(self.headers.len());
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header separator.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a millisecond quantity with two decimals.
pub fn ms(d: simcore::SimDuration) -> String {
    format!("{:.2}", d.as_millis_f64())
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('3'));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(ms(SimDuration::from_micros(12_345)), "12.35");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(&[]);
    }
}
