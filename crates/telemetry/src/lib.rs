//! Measurement and reporting toolkit for the PerfIso reproduction.
//!
//! Everything the paper's evaluation reports flows through this crate:
//!
//! - [`LatencyRecorder`] — query-latency percentiles (p50/p95/p99), exact
//!   by default or sketch-backed via [`TelemetryMode`].
//! - [`LogHistogram`] — HDR-style log-bucketed histogram for streaming use.
//! - [`Sketch`] — mergeable bounded-memory quantile sketch with a
//!   guaranteed relative error, for production-scale fleets.
//! - [`CpuBreakdown`] — the Primary/Secondary/OS/Idle utilization split shown
//!   in every CPU-utilization bar chart (Figs 4b–8b).
//! - [`TimeSeries`] — bucketed series for the Fig 10 production timeline.
//! - [`RunStats`] — mean/std/CI across repeated runs (the paper runs each
//!   cluster experiment 8 times).
//! - [`table::Table`] — plain-text tables for the bench harness output.
//! - [`slo`] — the paper's SLO definition: p99 within 1 ms of standalone.

pub mod accounting;
pub mod histogram;
pub mod recorder;
pub mod resilience;
pub mod runstats;
pub mod series;
pub mod sketch;
pub mod slo;
pub mod table;

pub use accounting::{CpuBreakdown, TenantClass};
pub use histogram::LogHistogram;
pub use recorder::{LatencyRecorder, TelemetryMode};
pub use resilience::ResilienceStats;
pub use runstats::RunStats;
pub use series::TimeSeries;
pub use sketch::{Sketch, SketchSummary};
