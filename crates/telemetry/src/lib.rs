//! Measurement and reporting toolkit for the PerfIso reproduction.
//!
//! Everything the paper's evaluation reports flows through this crate:
//!
//! - [`LatencyRecorder`] — exact query-latency percentiles (p50/p95/p99).
//! - [`LogHistogram`] — HDR-style log-bucketed histogram for streaming use.
//! - [`CpuBreakdown`] — the Primary/Secondary/OS/Idle utilization split shown
//!   in every CPU-utilization bar chart (Figs 4b–8b).
//! - [`TimeSeries`] — bucketed series for the Fig 10 production timeline.
//! - [`RunStats`] — mean/std/CI across repeated runs (the paper runs each
//!   cluster experiment 8 times).
//! - [`table::Table`] — plain-text tables for the bench harness output.
//! - [`slo`] — the paper's SLO definition: p99 within 1 ms of standalone.

pub mod accounting;
pub mod histogram;
pub mod recorder;
pub mod runstats;
pub mod series;
pub mod slo;
pub mod table;

pub use accounting::{CpuBreakdown, TenantClass};
pub use histogram::LogHistogram;
pub use recorder::LatencyRecorder;
pub use runstats::RunStats;
pub use series::TimeSeries;
