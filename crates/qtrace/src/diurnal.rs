//! Diurnal load curves for fleet-scale experiments (Fig 10).
//!
//! The production run in the paper shows live QPS varying over an hour
//! while CPU utilization averages ~70 %. We model the load as a smooth
//! base + sinusoid with optional surge windows, sampled per minute.

use serde::{Deserialize, Serialize};

/// A deterministic per-minute load curve.
///
/// # Examples
///
/// ```
/// use qtrace::DiurnalCurve;
///
/// let c = DiurnalCurve::paper_hour();
/// let qps: Vec<f64> = (0..60).map(|m| c.qps_at_minute(m)).collect();
/// assert!(qps.iter().all(|&q| q > 0.0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Baseline QPS per machine.
    pub base_qps: f64,
    /// Sinusoidal amplitude (fraction of base).
    pub amplitude: f64,
    /// Sinusoid period in minutes.
    pub period_min: f64,
    /// Surge windows: `(start_minute, end_minute, multiplier)`.
    pub surges: Vec<(u32, u32, f64)>,
}

impl DiurnalCurve {
    /// A one-hour curve resembling the paper's Fig 10 window: load drifting
    /// between ~1 500 and ~2 900 QPS per machine with a mid-hour surge.
    pub fn paper_hour() -> Self {
        DiurnalCurve {
            base_qps: 2_200.0,
            amplitude: 0.25,
            period_min: 45.0,
            surges: vec![(28, 36, 1.18)],
        }
    }

    /// A full 24-hour production day: a slow diurnal swing (period 1 440
    /// minutes) around the paper's per-machine baseline, with a morning
    /// ramp surge and a broad evening peak. Minute 0 is midnight; the
    /// negative amplitude inverts the sinusoid's phase so the trough
    /// lands in the early morning (~06:00) and the crest in the evening
    /// (~18:00), where the surge windows stack on top.
    pub fn production_day() -> Self {
        DiurnalCurve {
            base_qps: 2_200.0,
            amplitude: -0.45,
            period_min: 1_440.0,
            surges: vec![(480, 540, 1.10), (1_140, 1_260, 1.22)],
        }
    }

    /// A flat curve (useful as a control).
    pub fn flat(qps: f64) -> Self {
        DiurnalCurve {
            base_qps: qps,
            amplitude: 0.0,
            period_min: 60.0,
            surges: Vec::new(),
        }
    }

    /// QPS at the given minute.
    pub fn qps_at_minute(&self, minute: u32) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * minute as f64 / self.period_min;
        let mut qps = self.base_qps * (1.0 + self.amplitude * phase.sin());
        for &(start, end, mult) in &self.surges {
            if (start..end).contains(&minute) {
                qps *= mult;
            }
        }
        qps.max(0.0)
    }

    /// Mean QPS over `[0, minutes)`.
    pub fn mean_qps(&self, minutes: u32) -> f64 {
        if minutes == 0 {
            return 0.0;
        }
        (0..minutes).map(|m| self.qps_at_minute(m)).sum::<f64>() / minutes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_flat() {
        let c = DiurnalCurve::flat(1_000.0);
        for m in 0..120 {
            assert_eq!(c.qps_at_minute(m), 1_000.0);
        }
    }

    #[test]
    fn paper_hour_varies_within_bounds() {
        let c = DiurnalCurve::paper_hour();
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for m in 0..60 {
            let q = c.qps_at_minute(m);
            lo = lo.min(q);
            hi = hi.max(q);
        }
        assert!(lo > 1_200.0 && lo < 2_000.0, "lo {lo}");
        assert!(hi > 2_600.0 && hi < 3_400.0, "hi {hi}");
    }

    #[test]
    fn surge_applies_only_in_window() {
        let c = DiurnalCurve {
            base_qps: 100.0,
            amplitude: 0.0,
            period_min: 60.0,
            surges: vec![(10, 20, 2.0)],
        };
        assert_eq!(c.qps_at_minute(9), 100.0);
        assert_eq!(c.qps_at_minute(10), 200.0);
        assert_eq!(c.qps_at_minute(19), 200.0);
        assert_eq!(c.qps_at_minute(20), 100.0);
    }

    #[test]
    fn production_day_has_morning_trough_and_evening_crest() {
        let c = DiurnalCurve::production_day();
        let day: Vec<f64> = (0..1_440).map(|m| c.qps_at_minute(m)).collect();
        let (lo_min, _) = day
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let (hi_min, _) = day
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        // Trough in the early morning, crest inside the evening peak.
        assert!((300..480).contains(&lo_min), "trough at minute {lo_min}");
        assert!((1_140..1_260).contains(&hi_min), "crest at minute {hi_min}");
        assert!(day.iter().all(|&q| q > 1_000.0), "load never collapses");
        // Peak-to-trough swing is production-like (~3x).
        assert!(day[hi_min] / day[lo_min] > 2.5);
        // The morning ramp surge is visible against its neighborhood.
        assert!(c.qps_at_minute(500) > c.qps_at_minute(470) * 1.05);
    }

    #[test]
    fn mean_reflects_surges() {
        let c = DiurnalCurve {
            base_qps: 100.0,
            amplitude: 0.0,
            period_min: 60.0,
            surges: vec![(0, 30, 2.0)],
        };
        assert!((c.mean_qps(60) - 150.0).abs() < 1e-9);
        assert_eq!(c.mean_qps(0), 0.0);
    }
}
