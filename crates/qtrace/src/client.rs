//! Open-loop Poisson replay.

use std::sync::Arc;

use simcore::dist::PoissonProcess;
use simcore::{SimRng, SimTime};

use crate::gen::QuerySpec;

/// Replays a trace in an open loop: arrival times follow a Poisson process
/// at the configured rate, independent of server progress (§5.3).
///
/// # Examples
///
/// ```
/// use qtrace::{OpenLoopClient, TraceConfig, TraceGenerator};
/// use simcore::SimTime;
///
/// let trace = TraceGenerator::new(TraceConfig { queries: 10, ..Default::default() }).generate(1);
/// let mut client = OpenLoopClient::new(trace, 2_000.0, 5);
/// let mut n = 0;
/// while client.next_arrival_time().is_some() {
///     let (_at, _q) = client.pop().unwrap();
///     n += 1;
/// }
/// assert_eq!(n, 10);
/// ```
#[derive(Clone, Debug)]
pub struct OpenLoopClient {
    trace: Arc<Vec<QuerySpec>>,
    next_idx: usize,
    next_at: SimTime,
    process: PoissonProcess,
    rng: SimRng,
}

impl OpenLoopClient {
    /// Creates a client replaying `trace` at `qps` queries/second.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not finite and positive.
    pub fn new(trace: Vec<QuerySpec>, qps: f64, seed: u64) -> Self {
        Self::replay_shared(Arc::new(trace), qps, seed)
    }

    /// Like [`OpenLoopClient::new`] but replaying a shared trace.
    ///
    /// Arrival times come from this client's seed, so many clients (e.g.
    /// the sampled machines of one fleet minute) can replay one trace
    /// template under independent arrival processes without cloning the
    /// query specs.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is not finite and positive.
    pub fn replay_shared(trace: Arc<Vec<QuerySpec>>, qps: f64, seed: u64) -> Self {
        let process = PoissonProcess::new(qps);
        let mut rng = SimRng::seed_from_u64(seed ^ 0x00C1_1E17);
        let first_gap = process.next_gap(&mut rng);
        OpenLoopClient {
            trace,
            next_idx: 0,
            next_at: SimTime::ZERO + first_gap,
            process,
            rng,
        }
    }

    /// Arrival time of the next query, or `None` when the trace is drained.
    pub fn next_arrival_time(&self) -> Option<SimTime> {
        (self.next_idx < self.trace.len()).then_some(self.next_at)
    }

    /// Takes the next `(arrival, query)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, QuerySpec)> {
        if self.next_idx >= self.trace.len() {
            return None;
        }
        let at = self.next_at;
        let q = self.trace[self.next_idx].clone();
        self.next_idx += 1;
        self.next_at = at + self.process.next_gap(&mut self.rng);
        Some((at, q))
    }

    /// Queries remaining.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TraceConfig, TraceGenerator};

    fn trace(n: usize) -> Vec<QuerySpec> {
        TraceGenerator::new(TraceConfig {
            queries: n,
            ..Default::default()
        })
        .generate(1)
    }

    #[test]
    fn arrival_rate_matches_qps() {
        let mut c = OpenLoopClient::new(trace(20_000), 4_000.0, 2);
        let mut last = SimTime::ZERO;
        let mut n = 0u64;
        while let Some((at, _)) = c.pop() {
            assert!(at >= last, "arrivals are monotone");
            last = at;
            n += 1;
        }
        let rate = n as f64 / last.as_secs_f64();
        assert!((rate - 4_000.0).abs() < 120.0, "rate {rate}");
    }

    #[test]
    fn arrivals_are_poisson_bursty() {
        // Coefficient of variation of exponential gaps is 1.
        let mut c = OpenLoopClient::new(trace(10_000), 1_000.0, 3);
        let mut gaps = Vec::new();
        let mut prev = SimTime::ZERO;
        while let Some((at, _)) = c.pop() {
            gaps.push(at.since(prev).as_secs_f64());
            prev = at;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn preserves_trace_order() {
        let mut c = OpenLoopClient::new(trace(100), 1_000.0, 4);
        let mut ids = Vec::new();
        while let Some((_, q)) = c.pop() {
            ids.push(q.id);
        }
        assert_eq!(ids, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = OpenLoopClient::new(trace(50), 500.0, 9);
        let mut b = OpenLoopClient::new(trace(50), 500.0, 9);
        while let (Some((ta, _)), Some((tb, _))) = (a.pop(), b.pop()) {
            assert_eq!(ta, tb);
        }
    }
}
