//! Synthetic query-trace generation.

use serde::{Deserialize, Serialize};
use simcore::dist::{LogNormal, Sample, ZipfTable};
use simcore::SimRng;

/// The work profile of one query, fixed at trace-generation time so every
/// replay (and every isolation policy) sees identical offered work.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Trace-unique query id.
    pub id: u64,
    /// Number of parallel worker threads the query wakes (8–15; the paper
    /// measured up to 15 threads ready within 5 µs).
    pub fanout: u8,
    /// CPU+I/O rounds per worker.
    pub rounds: u8,
    /// Per-round CPU burst in nanoseconds for each worker round,
    /// pre-sampled (lognormal).
    pub burst_ns: u32,
    /// Zipf rank of the hottest document touched (drives cache hits).
    pub doc_rank: u32,
    /// Whether this is a heavy query (~3× the rounds).
    pub heavy: bool,
}

/// Trace-generation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of queries.
    pub queries: usize,
    /// Minimum fan-out (inclusive).
    pub fanout_min: u8,
    /// Maximum fan-out (inclusive).
    pub fanout_max: u8,
    /// Base CPU+I/O rounds per worker.
    pub rounds: u8,
    /// Median per-round CPU burst in microseconds.
    pub burst_median_us: f64,
    /// Lognormal sigma of the burst distribution.
    pub burst_sigma: f64,
    /// Fraction of heavy queries (3× rounds).
    pub heavy_fraction: f64,
    /// Number of distinct documents (Zipf universe).
    pub documents: usize,
    /// Zipf exponent for document popularity.
    pub zipf_s: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // Calibrated so IndexServe standalone hits the paper's profile
        // (p50 ≈ 4 ms, p99 ≈ 12 ms, CPU ≈ 20 % at 2 000 QPS on 48 cores).
        TraceConfig {
            queries: 10_000,
            fanout_min: 8,
            fanout_max: 15,
            rounds: 4,
            burst_median_us: 62.0,
            burst_sigma: 0.55,
            heavy_fraction: 0.03,
            documents: 200_000,
            zipf_s: 0.9,
        }
    }
}

/// Generates reproducible synthetic traces.
///
/// Construction precomputes the burst distribution and the Zipf popularity
/// table (`O(documents)` work), so a generator built once can stamp out
/// many traces cheaply — the fleet experiment reuses one generator for
/// hundreds of machine-minute slices instead of rebuilding the 200k-entry
/// Zipf table per slice.
///
/// # Examples
///
/// ```
/// use qtrace::{TraceConfig, TraceGenerator};
///
/// let trace = TraceGenerator::new(TraceConfig { queries: 100, ..Default::default() })
///     .generate(42);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.iter().all(|q| (8..=15).contains(&q.fanout)));
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    burst: LogNormal,
    zipf: ZipfTable,
}

impl TraceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.queries > 0, "empty trace");
        assert!(
            cfg.fanout_min >= 1 && cfg.fanout_min <= cfg.fanout_max,
            "bad fanout range"
        );
        assert!(cfg.rounds >= 1, "need at least one round");
        assert!(cfg.documents > 0, "need documents");
        assert!(
            (0.0..=1.0).contains(&cfg.heavy_fraction),
            "bad heavy fraction"
        );
        let burst = LogNormal::from_median(cfg.burst_median_us * 1_000.0, cfg.burst_sigma);
        let zipf = ZipfTable::new(cfg.documents, cfg.zipf_s);
        TraceGenerator { cfg, burst, zipf }
    }

    /// The configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Generates the trace for a seed. Identical seeds yield identical
    /// traces.
    pub fn generate(&self, seed: u64) -> Vec<QuerySpec> {
        self.generate_n(seed, self.cfg.queries)
    }

    /// Generates a trace of exactly `queries` queries, overriding the
    /// configured count. Used by drivers whose trace length depends on the
    /// offered load (e.g. one trace per fleet minute).
    pub fn generate_n(&self, seed: u64, queries: usize) -> Vec<QuerySpec> {
        let mut rng = SimRng::seed_from_u64(seed);
        let burst = &self.burst;
        let zipf = &self.zipf;
        (0..queries as u64)
            .map(|id| {
                let heavy = rng.bernoulli(self.cfg.heavy_fraction);
                let rounds = if heavy {
                    self.cfg.rounds.saturating_mul(3)
                } else {
                    self.cfg.rounds
                };
                QuerySpec {
                    id,
                    fanout: rng
                        .range_inclusive(self.cfg.fanout_min as u64, self.cfg.fanout_max as u64)
                        as u8,
                    rounds,
                    burst_ns: burst.sample(&mut rng).clamp(1_000.0, 4.0e6) as u32,
                    doc_rank: zipf.sample_rank(&mut rng) as u32,
                    heavy,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let g = TraceGenerator::new(TraceConfig {
            queries: 500,
            ..Default::default()
        });
        let a = g.generate(7);
        let b = g.generate(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.fanout, y.fanout);
            assert_eq!(x.burst_ns, y.burst_ns);
            assert_eq!(x.doc_rank, y.doc_rank);
        }
        let c = g.generate(8);
        assert!(a
            .iter()
            .zip(c.iter())
            .any(|(x, y)| x.burst_ns != y.burst_ns));
    }

    #[test]
    fn heavy_fraction_approximate() {
        let g = TraceGenerator::new(TraceConfig {
            queries: 20_000,
            heavy_fraction: 0.03,
            ..Default::default()
        });
        let t = g.generate(1);
        let heavy = t.iter().filter(|q| q.heavy).count() as f64 / t.len() as f64;
        assert!((heavy - 0.03).abs() < 0.005, "heavy {heavy}");
        // Heavy queries have triple the rounds.
        let hq = t.iter().find(|q| q.heavy).unwrap();
        let lq = t.iter().find(|q| !q.heavy).unwrap();
        assert_eq!(hq.rounds, lq.rounds * 3);
    }

    #[test]
    fn burst_median_close_to_config() {
        let g = TraceGenerator::new(TraceConfig {
            queries: 20_000,
            ..Default::default()
        });
        let mut bursts: Vec<u32> = g.generate(2).iter().map(|q| q.burst_ns).collect();
        bursts.sort_unstable();
        let median = bursts[bursts.len() / 2] as f64 / 1_000.0;
        assert!((median - 62.0).abs() < 5.0, "median {median}us");
    }

    #[test]
    fn popular_docs_dominate() {
        let g = TraceGenerator::new(TraceConfig {
            queries: 50_000,
            ..Default::default()
        });
        let t = g.generate(3);
        let top_decile = (g.config().documents / 10) as u32;
        let hot = t.iter().filter(|q| q.doc_rank <= top_decile).count() as f64 / t.len() as f64;
        assert!(
            hot > 0.5,
            "Zipf 0.9: top 10% of docs should get >50% of hits, got {hot}"
        );
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn zero_queries_rejected() {
        let _ = TraceGenerator::new(TraceConfig {
            queries: 0,
            ..Default::default()
        });
    }
}
