//! Query traces and load generation.
//!
//! The paper replays "a trace of 500k real-world queries from early 2017"
//! in an open loop, "according to a Poisson process distribution" (§5.3),
//! after a 100k-query warm-up at 300 QPS. Real Bing traces are proprietary,
//! so [`TraceGenerator`] synthesises traces whose *work profile* matches the
//! published latency distribution: per-query fan-out, per-worker rounds, a
//! heavy-query mixture for the p99/p50 ≈ 3 ratio, and Zipf-popular document
//! targets driving the cache model.
//!
//! [`OpenLoopClient`] replays any trace at a configurable rate — open loop,
//! so a struggling server keeps receiving queries and the backlog grows,
//! which is exactly how production overload behaves. [`diurnal`] provides
//! the hour-scale load curve for the Fig 10 fleet experiment.

pub mod client;
pub mod diurnal;
pub mod gen;

pub use client::OpenLoopClient;
pub use diurnal::DiurnalCurve;
pub use gen::{QuerySpec, TraceConfig, TraceGenerator};
