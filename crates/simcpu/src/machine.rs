//! The machine: cores, threads, jobs, and the scheduler.
//!
//! # Scheduling model
//!
//! - Work-conserving, per-core quantum, one ready queue.
//! - A *freshly spawned* thread dispatches immediately onto an idle core
//!   inside its effective affinity mask; otherwise it queues FIFO behind
//!   everything else — fan-out worker bursts arriving while secondary
//!   threads hold all cores wait for quantum expiries. This is the
//!   "short-lived worker threads end up queued for execution instead of
//!   being launched right away" cascade of the paper's §6.1.4.
//! - A thread *woken* from a blocking operation or sleep carries a wake
//!   boost (Windows grants woken threads a temporary priority boost): if no
//!   allowed core is idle it enters the ready queue at the *front*, so it is
//!   served by the next core that frees up, ahead of every queued spawn.
//!   The boost never preempts a running thread — that conservative softening
//!   of the Windows boost keeps mid-sized colocation mild (matching Fig 4's
//!   mid bars) while fan-out spawns still starve under a full bully.
//! - Quantum expiry preempts only if another eligible thread is waiting
//!   (round-robin); otherwise the quantum is renewed free of charge. The
//!   quantum is therefore how long a CPU-bound secondary holds a core
//!   against queued primary spawns — the calibrated stand-in for Windows
//!   Server's long quanta.
//! - Affinity revocation and quota exhaustion preempt immediately (resched
//!   IPI), which is what makes blind isolation's *shrink* operation fast.
//! - Dispatch / context-switch / IPI costs occupy the core as OS time before
//!   the incoming thread starts, so overhead is visible in the utilization
//!   breakdown exactly like the "OS" bars in the paper's figures.
//!
//! # Time discipline
//!
//! All mutators take the current virtual time and internally process every
//! internal timer due up to that instant, so callers can never observe a
//! machine that is behind its own timers.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use simcore::{EventQueue, EventQueueState, SimDuration, SimRng, SimTime, Snapshot};
use telemetry::{CpuBreakdown, TenantClass};

use crate::arena::{ArenaStats, Program, StepArena, StepArenaState};
use crate::config::MachineConfig;
use crate::program::{Step, ThreadProgram};
use crate::quota::{CpuRateQuota, QuotaState};
use simcore::ids::{CoreId, JobId, ThreadId};
use simcore::mask::CoreMask;

/// Events the machine reports to its driver.
#[derive(Clone, Debug)]
pub enum MachineOutput {
    /// A thread issued a blocking operation and left its core.
    ThreadBlocked {
        /// The blocked thread.
        tid: ThreadId,
        /// The thread's user tag.
        tag: u64,
        /// The opaque token from [`Step::Block`].
        token: u64,
    },
    /// A thread exited (voluntarily or killed).
    ThreadExited {
        /// The exited thread.
        tid: ThreadId,
        /// The thread's user tag.
        tag: u64,
        /// True when the exit came from [`Machine::kill_thread`].
        killed: bool,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Ready,
    Running(CoreId),
    Blocked,
    Sleeping,
}

struct ThreadBody {
    job: JobId,
    tag: u64,
    state: ThreadState,
    program: Program,
    seg_remaining: SimDuration,
    quantum_left: SimDuration,
    affinity: CoreMask,
    cpu_time: SimDuration,
}

struct ThreadSlot {
    gen: u32,
    body: Option<ThreadBody>,
}

#[derive(Clone)]
struct CoreState {
    running: Option<ThreadId>,
    slice_start: SimTime,
    slice_os_cost: SimDuration,
    slice_gen: u64,
    idle_since: SimTime,
}

#[derive(Clone)]
struct JobBody {
    class: TenantClass,
    affinity: CoreMask,
    quota: Option<QuotaState>,
    cpu_time: SimDuration,
    memory_bytes: u64,
}

#[derive(Clone, Debug)]
enum Timer {
    SliceEnd { core: CoreId, gen: u64 },
    ThreadWake { tid: ThreadId },
    QuotaExhaust { job: JobId, gen: u64 },
    QuotaRefill { job: JobId },
}

/// Aggregate scheduler activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MachineStats {
    /// Threads dispatched onto idle cores.
    pub dispatches: u64,
    /// Involuntary context switches at quantum expiry.
    pub ctx_switches: u64,
    /// Immediate preemptions (affinity revocation, throttling, kill).
    pub ipis: u64,
    /// Threads spawned.
    pub spawns: u64,
    /// Threads exited.
    pub exits: u64,
}

/// A simulated multicore machine.
///
/// See the [crate docs](crate) for the model and an example.
pub struct Machine {
    cfg: MachineConfig,
    now: SimTime,
    cores: Vec<CoreState>,
    threads: Vec<ThreadSlot>,
    free_slots: Vec<u32>,
    jobs: Vec<JobBody>,
    ready: VecDeque<ThreadId>,
    /// Count of entries in `ready` whose thread has since exited; drives
    /// amortized pruning.
    ready_stale: usize,
    timers: EventQueue<Timer>,
    outputs: Vec<MachineOutput>,
    breakdown: CpuBreakdown,
    rng: SimRng,
    stats: MachineStats,
    /// Reusable buffer for preemption sweeps (affinity revocation, quota
    /// throttling); avoids a fresh `Vec` per controller action on the hot
    /// path.
    victims_scratch: Vec<CoreId>,
    /// Scripted-program storage: one slab shared by every scripted thread,
    /// ranges recycled on exit/kill.
    arena: StepArena,
    /// Staging buffer for [`Machine::spawn_scripted`]: steps are streamed
    /// here, then copied into the arena in one shot at `finish`.
    script_staging: Vec<Step>,
}

const MAX_ZERO_STEPS: u32 = 64;

impl Machine {
    /// Creates a machine with a default RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine::with_seed(cfg, 0x5EED)
    }

    /// Creates a machine with an explicit RNG seed (used by thread programs).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_seed(cfg: MachineConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid machine config");
        let cores = (0..cfg.cores)
            .map(|_| CoreState {
                running: None,
                slice_start: SimTime::ZERO,
                slice_os_cost: SimDuration::ZERO,
                slice_gen: 0,
                idle_since: SimTime::ZERO,
            })
            .collect();
        // Pre-size everything the spawn path touches: with recycled thread
        // slots and arena ranges, steady-state spawning then never grows a
        // container.
        let cores_hint = cfg.cores as usize;
        Machine {
            cfg,
            now: SimTime::ZERO,
            cores,
            threads: Vec::with_capacity(4 * cores_hint),
            free_slots: Vec::with_capacity(4 * cores_hint),
            jobs: Vec::new(),
            ready: VecDeque::with_capacity(4 * cores_hint),
            ready_stale: 0,
            timers: EventQueue::with_capacity(1024),
            outputs: Vec::with_capacity(64),
            breakdown: CpuBreakdown::default(),
            rng: SimRng::seed_from_u64(seed),
            stats: MachineStats::default(),
            victims_scratch: Vec::with_capacity(cores_hint),
            arena: StepArena::with_capacity(16 * cores_hint),
            script_staging: Vec::with_capacity(64),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Scheduler activity counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Creates a job (process group) of the given tenant class, restricted
    /// to `affinity`.
    pub fn create_job(&mut self, class: TenantClass, affinity: CoreMask) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(JobBody {
            class,
            affinity,
            quota: None,
            cpu_time: SimDuration::ZERO,
            memory_bytes: 0,
        });
        id
    }

    /// The job's current affinity mask.
    pub fn job_affinity(&self, job: JobId) -> CoreMask {
        self.jobs[job.0 as usize].affinity
    }

    /// Accumulated CPU time of a job (its "progress" for CPU-bound jobs).
    pub fn job_cpu_time(&self, job: JobId) -> SimDuration {
        self.jobs[job.0 as usize].cpu_time
    }

    /// Sets the declared memory footprint of a job.
    pub fn set_job_memory(&mut self, job: JobId, bytes: u64) {
        self.jobs[job.0 as usize].memory_bytes = bytes;
    }

    /// The declared memory footprint of a job.
    pub fn job_memory(&self, job: JobId) -> u64 {
        self.jobs[job.0 as usize].memory_bytes
    }

    /// Sum of declared memory footprints.
    pub fn memory_used(&self) -> u64 {
        self.jobs.iter().map(|j| j.memory_bytes).sum()
    }

    /// Total machine memory.
    pub fn memory_total(&self) -> u64 {
        self.cfg.memory_bytes
    }

    /// The idle-core bitmask: the system call blind isolation polls.
    ///
    /// A core is idle when no thread occupies it (the "idle thread" runs
    /// there, in the paper's terms).
    pub fn idle_core_mask(&self) -> CoreMask {
        let mut m = CoreMask::EMPTY;
        for (i, c) in self.cores.iter().enumerate() {
            if c.running.is_none() {
                m = m.with(CoreId(i as u16));
            }
        }
        m
    }

    /// Number of live (not exited) threads.
    pub fn live_thread_count(&self) -> usize {
        self.threads.iter().filter(|s| s.body.is_some()).count()
    }

    /// Number of threads waiting in the ready queue (may include stale
    /// entries that are skipped on dispatch).
    pub fn ready_queue_len(&self) -> usize {
        self.ready.len()
    }

    /// Time of the next internal timer, if any.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        self.timers.peek_time()
    }

    /// Takes all pending outputs.
    ///
    /// Allocation-free callers should prefer [`Machine::drain_outputs_into`].
    pub fn drain_outputs(&mut self) -> Vec<MachineOutput> {
        std::mem::take(&mut self.outputs)
    }

    /// Moves all pending outputs into `buf` (appending), leaving the
    /// internal buffer empty but with its capacity intact. This is the
    /// hot-path variant: drivers keep one scratch `Vec` alive across the
    /// whole run instead of allocating per step.
    pub fn drain_outputs_into(&mut self, buf: &mut Vec<MachineOutput>) {
        buf.append(&mut self.outputs);
    }

    /// True when outputs are pending (cheaper than draining to check).
    pub fn has_outputs(&self) -> bool {
        !self.outputs.is_empty()
    }

    /// The CPU-time breakdown up to the current instant, including partial
    /// in-flight slices and idle intervals.
    pub fn breakdown(&self) -> CpuBreakdown {
        let mut b = self.breakdown;
        for core in &self.cores {
            match core.running {
                Some(tid) => {
                    let elapsed = self.now.since(core.slice_start);
                    let os_part = core.slice_os_cost.min(elapsed);
                    let busy = elapsed - os_part;
                    b.add(TenantClass::Os, os_part);
                    let job = self.thread(tid).map(|t| t.job);
                    if let Some(job) = job {
                        b.add(self.jobs[job.0 as usize].class, busy);
                    }
                }
                None => b.add_idle(self.now.since(core.idle_since)),
            }
        }
        b
    }

    // ------------------------------------------------------------------
    // Thread lifecycle
    // ------------------------------------------------------------------

    /// Spawns a thread in `job` with the given boxed program and user tag.
    ///
    /// Returns a handle that may already be stale if the program exited
    /// immediately. Hot spawn paths should prefer [`Machine::spawn_program`]
    /// (inline program variants) or [`Machine::spawn_scripted`] (arena
    /// scripts), which skip the per-spawn `Box`.
    pub fn spawn_thread(
        &mut self,
        now: SimTime,
        job: JobId,
        program: Box<dyn ThreadProgram>,
        tag: u64,
    ) -> ThreadId {
        self.spawn_program_with(now, job, Program::Dyn(program), tag, false)
    }

    /// Spawns a boxed program, optionally carrying the wake boost.
    ///
    /// A boosted spawn models a *continuation*: a pool thread woken by a
    /// completion port to carry on work already in flight. It enters the
    /// ready queue at the front like any other wake. A plain spawn models
    /// fresh work and queues at the back.
    pub fn spawn_thread_with(
        &mut self,
        now: SimTime,
        job: JobId,
        program: Box<dyn ThreadProgram>,
        tag: u64,
        boosted: bool,
    ) -> ThreadId {
        self.spawn_program_with(now, job, Program::Dyn(program), tag, boosted)
    }

    /// Spawns a thread from an internal [`Program`] representation: the
    /// allocation-free spawn path for the inline variants.
    pub fn spawn_program(
        &mut self,
        now: SimTime,
        job: JobId,
        program: Program,
        tag: u64,
    ) -> ThreadId {
        self.spawn_program_with(now, job, program, tag, false)
    }

    /// Spawns a [`Program`], optionally carrying the wake boost (see
    /// [`Machine::spawn_thread_with`]).
    pub fn spawn_program_with(
        &mut self,
        now: SimTime,
        job: JobId,
        program: Program,
        tag: u64,
        boosted: bool,
    ) -> ThreadId {
        self.advance_to(now);
        let idx = match self.free_slots.pop() {
            Some(i) => i,
            None => {
                self.threads.push(ThreadSlot { gen: 0, body: None });
                (self.threads.len() - 1) as u32
            }
        };
        let gen = self.threads[idx as usize].gen;
        let tid = ThreadId { index: idx, gen };
        let affinity = CoreMask::all(self.cfg.cores);
        self.threads[idx as usize].body = Some(ThreadBody {
            job,
            tag,
            state: ThreadState::Ready,
            program,
            seg_remaining: SimDuration::ZERO,
            quantum_left: SimDuration::ZERO,
            affinity,
            cpu_time: SimDuration::ZERO,
        });
        self.stats.spawns += 1;
        // Fresh spawns carry no wake boost: a fan-out burst finding every
        // core busy queues FIFO, which is the paper's degradation cascade.
        // Continuations (boosted) jump the queue like wakes.
        self.advance_program(tid, SimDuration::ZERO, boosted);
        tid
    }

    /// Starts an arena-backed scripted spawn: stream steps into the returned
    /// writer, then call [`ScriptWriter::finish`] to launch the thread.
    ///
    /// The steps land directly in recycled arena memory, so in steady state
    /// the whole spawn touches the allocator not at all — this is the spawn
    /// path for IndexServe's parse/fan-out/rank/aggregate stages.
    pub fn spawn_scripted(&mut self, now: SimTime, job: JobId, tag: u64) -> ScriptWriter<'_> {
        self.script_staging.clear();
        ScriptWriter {
            machine: self,
            now,
            job,
            tag,
            boosted: false,
        }
    }

    /// Arena occupancy and range-recycling counters.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    // ------------------------------------------------------------------
    // Checkpoint / rollback
    // ------------------------------------------------------------------

    /// Captures the machine's complete dynamic state for later
    /// [`Machine::restore`], or `None` if any live thread runs a program
    /// that cannot be cloned (a boxed closure — see
    /// [`ThreadProgram::clone_box`]).
    ///
    /// The capture is a flat deep copy: the thread table, core slices, job
    /// table, ready queue, timer wheel, arena slab high-water, RNG state,
    /// and accounting. Programs publishing a shared progress counter also
    /// record its value, so a restore rolls the counter back for external
    /// observers (the `Arc` identity is preserved).
    pub fn snapshot(&self) -> Option<MachineState> {
        let mut threads = Vec::with_capacity(self.threads.len());
        for slot in &self.threads {
            let body = match &slot.body {
                Some(b) => {
                    let program = b.program.try_clone()?;
                    let progress_value = b
                        .program
                        .shared_progress()
                        .map(|p| p.load(Ordering::Relaxed));
                    Some(ThreadBodyState {
                        job: b.job,
                        tag: b.tag,
                        state: b.state,
                        program,
                        progress_value,
                        seg_remaining: b.seg_remaining,
                        quantum_left: b.quantum_left,
                        affinity: b.affinity,
                        cpu_time: b.cpu_time,
                    })
                }
                None => None,
            };
            threads.push(ThreadSlotState {
                gen: slot.gen,
                body,
            });
        }
        Some(MachineState {
            now: self.now,
            cores: self.cores.clone(),
            threads,
            free_slots: self.free_slots.clone(),
            jobs: self.jobs.clone(),
            ready: self.ready.clone(),
            ready_stale: self.ready_stale,
            timers: self.timers.save(),
            outputs: self.outputs.clone(),
            breakdown: self.breakdown,
            rng: self.rng.clone(),
            stats: self.stats,
            arena: self.arena.save(),
        })
    }

    /// Rewinds the machine to a previously [`Machine::snapshot`]ted state.
    ///
    /// After the restore the machine is observationally identical to the
    /// snapshot instant: every subsequent timer, dispatch, RNG draw, and
    /// breakdown figure matches a run that never diverged. Shared progress
    /// counters are written back through their original `Arc`s. The same
    /// state may be restored from repeatedly (rollback loops).
    pub fn restore(&mut self, state: &MachineState) {
        debug_assert_eq!(self.cores.len(), state.cores.len());
        self.now = state.now;
        self.cores.clone_from(&state.cores);
        self.threads.clear();
        for slot in &state.threads {
            let body = slot.body.as_ref().map(|b| {
                let program = b
                    .program
                    .try_clone()
                    .expect("snapshotted programs are clonable by construction");
                if let (Some(p), Some(v)) = (program.shared_progress(), b.progress_value) {
                    p.store(v, Ordering::Relaxed);
                }
                ThreadBody {
                    job: b.job,
                    tag: b.tag,
                    state: b.state,
                    program,
                    seg_remaining: b.seg_remaining,
                    quantum_left: b.quantum_left,
                    affinity: b.affinity,
                    cpu_time: b.cpu_time,
                }
            });
            self.threads.push(ThreadSlot {
                gen: slot.gen,
                body,
            });
        }
        self.free_slots.clone_from(&state.free_slots);
        self.jobs.clone_from(&state.jobs);
        self.ready.clone_from(&state.ready);
        self.ready_stale = state.ready_stale;
        self.timers.restore(&state.timers);
        self.outputs.clone_from(&state.outputs);
        self.breakdown = state.breakdown;
        self.rng = state.rng.clone();
        self.stats = state.stats;
        self.arena.restore(&state.arena);
    }

    /// Sets a per-thread affinity override (e.g. the primary affinitising
    /// its own threads, which PerfIso must respect).
    ///
    /// Returns false on a stale handle.
    pub fn set_thread_affinity(&mut self, now: SimTime, tid: ThreadId, mask: CoreMask) -> bool {
        self.advance_to(now);
        if self.thread(tid).is_none() {
            return false;
        }
        self.thread_mut(tid).expect("checked").affinity = mask;
        let state = self.thread(tid).expect("checked").state;
        if let ThreadState::Running(core) = state {
            if !self.effective_affinity(tid).contains(core) {
                self.preempt_core(core);
                self.stats.ipis += 1;
                self.fill_core(core, self.cfg.ipi_cost);
            }
        }
        self.dispatch_sweep();
        true
    }

    /// Wakes a blocked thread (I/O completion). Returns false on a stale
    /// handle or a thread that is not blocked/sleeping.
    ///
    /// The woken thread carries a wake boost: if every allowed core is
    /// busy, it preempts a running thread of a strictly lower tenant class
    /// rather than queueing (see the crate docs).
    pub fn wake(&mut self, now: SimTime, tid: ThreadId) -> bool {
        self.advance_to(now);
        let Some(t) = self.thread(tid) else {
            return false;
        };
        if t.state != ThreadState::Blocked && t.state != ThreadState::Sleeping {
            return false;
        }
        let cost = self.cfg.io_interrupt_cost;
        self.advance_program(tid, cost, true);
        true
    }

    /// Kills a thread. Returns false on a stale handle.
    pub fn kill_thread(&mut self, now: SimTime, tid: ThreadId) -> bool {
        self.advance_to(now);
        let Some(t) = self.thread(tid) else {
            return false;
        };
        let state = t.state;
        match state {
            ThreadState::Running(core) => {
                self.preempt_core_no_requeue(core);
                self.stats.ipis += 1;
                self.finish_thread(tid, true);
                self.fill_core(core, self.cfg.ctx_switch_cost);
            }
            _ => {
                // Ready-queue entries and wake timers become stale once the
                // slot generation is bumped.
                self.finish_thread(tid, true);
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Job controls (the PerfIso actuators)
    // ------------------------------------------------------------------

    /// Restricts a job to `mask`. Running threads outside the mask are
    /// preempted immediately (resched IPI); a widened mask is exploited
    /// immediately by dispatching queued threads.
    pub fn set_job_affinity(&mut self, now: SimTime, job: JobId, mask: CoreMask) {
        self.advance_to(now);
        self.jobs[job.0 as usize].affinity = mask;
        let mut victims = std::mem::take(&mut self.victims_scratch);
        victims.clear();
        victims.extend(self.cores.iter().enumerate().filter_map(|(i, c)| {
            let core = CoreId(i as u16);
            let tid = c.running?;
            let t = self.thread(tid)?;
            (t.job == job && !self.effective_affinity(tid).contains(core)).then_some(core)
        }));
        for &core in &victims {
            self.preempt_core(core);
            self.stats.ipis += 1;
            self.fill_core(core, self.cfg.ipi_cost);
        }
        self.victims_scratch = victims;
        self.dispatch_sweep();
    }

    /// Installs or removes a CPU-rate quota on a job.
    pub fn set_job_quota(&mut self, now: SimTime, job: JobId, quota: Option<CpuRateQuota>) {
        self.advance_to(now);
        match quota {
            Some(q) => {
                let mut state = QuotaState::new(q, self.cfg.cores, self.now);
                state.running = self.count_running_threads_of(job);
                self.jobs[job.0 as usize].quota = Some(state);
                self.timers
                    .push(self.now + q.period, Timer::QuotaRefill { job });
                self.reschedule_exhaust(job);
            }
            None => {
                self.jobs[job.0 as usize].quota = None;
                self.dispatch_sweep();
            }
        }
    }

    // ------------------------------------------------------------------
    // Time advancement
    // ------------------------------------------------------------------

    /// Advances virtual time to `t`, processing all internal timers due at
    /// or before `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "time went backwards: {:?} -> {:?}",
            self.now,
            t
        );
        while let Some((at, timer)) = self.timers.pop_before(t) {
            debug_assert!(at >= self.now);
            self.now = at;
            self.handle_timer(timer);
        }
        self.now = t;
    }

    fn handle_timer(&mut self, timer: Timer) {
        match timer {
            Timer::SliceEnd { core, gen } => {
                if self.cores[core.0 as usize].slice_gen != gen {
                    return;
                }
                self.on_slice_end(core);
            }
            Timer::ThreadWake { tid } => {
                let Some(t) = self.thread(tid) else { return };
                if t.state != ThreadState::Sleeping {
                    return;
                }
                // Timer-wait satisfaction boosts like an I/O completion.
                self.advance_program(tid, SimDuration::ZERO, true);
            }
            Timer::QuotaExhaust { job, gen } => self.on_quota_exhaust(job, gen),
            Timer::QuotaRefill { job } => self.on_quota_refill(job),
        }
    }

    // ------------------------------------------------------------------
    // Internals: thread table helpers
    // ------------------------------------------------------------------

    fn thread(&self, tid: ThreadId) -> Option<&ThreadBody> {
        let slot = self.threads.get(tid.index as usize)?;
        if slot.gen != tid.gen {
            return None;
        }
        slot.body.as_ref()
    }

    fn thread_mut(&mut self, tid: ThreadId) -> Option<&mut ThreadBody> {
        let slot = self.threads.get_mut(tid.index as usize)?;
        if slot.gen != tid.gen {
            return None;
        }
        slot.body.as_mut()
    }

    fn effective_affinity(&self, tid: ThreadId) -> CoreMask {
        let t = self.thread(tid).expect("live thread");
        self.jobs[t.job.0 as usize]
            .affinity
            .intersection(t.affinity)
    }

    fn count_running_threads_of(&self, job: JobId) -> u32 {
        self.cores
            .iter()
            .filter_map(|c| {
                let t = self.thread(c.running?)?;
                (t.job == job).then_some(())
            })
            .count() as u32
    }

    /// Removes the thread's body, bumps the slot generation, and emits the
    /// exit output.
    fn finish_thread(&mut self, tid: ThreadId, killed: bool) {
        let slot = &mut self.threads[tid.index as usize];
        let body = slot.body.take().expect("finishing a live thread");
        if let Some(range) = body.program.owned_range() {
            self.arena.free(range);
        }
        if body.state == ThreadState::Ready {
            // Its ready-queue entry is now stale; it is skipped on dispatch
            // and physically removed by the amortized prune.
            self.ready_stale += 1;
        }
        slot.gen = slot.gen.wrapping_add(1);
        self.free_slots.push(tid.index);
        self.stats.exits += 1;
        self.outputs.push(MachineOutput::ThreadExited {
            tid,
            tag: body.tag,
            killed,
        });
    }

    // ------------------------------------------------------------------
    // Internals: program driving
    // ------------------------------------------------------------------

    /// Pulls the thread's next program step in place. The program lives in
    /// the thread table and resolves against the arena and RNG — three
    /// disjoint machine fields, so no temporary move is needed.
    fn pull_step(&mut self, tid: ThreadId) -> Step {
        let Machine {
            threads,
            arena,
            rng,
            ..
        } = self;
        let body = threads[tid.index as usize]
            .body
            .as_mut()
            .expect("live thread");
        body.program.next_step(arena, rng)
    }

    /// Pulls the program's next step after the previous one completed, and
    /// acts on it. `extra_os_cost` is charged at the next dispatch (e.g. the
    /// I/O interrupt that woke the thread). `boosted` marks a wake-boosted
    /// transition (I/O completion or timer satisfaction).
    fn advance_program(&mut self, tid: ThreadId, extra_os_cost: SimDuration, boosted: bool) {
        for _guard in 0..MAX_ZERO_STEPS {
            if self.thread(tid).is_none() {
                return;
            }
            let step = self.pull_step(tid);
            match step {
                Step::Compute(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    let t = self.thread_mut(tid).expect("live");
                    t.seg_remaining = d;
                    self.make_ready(tid, extra_os_cost, boosted);
                    return;
                }
                Step::Block { token } => {
                    let t = self.thread_mut(tid).expect("live");
                    t.state = ThreadState::Blocked;
                    let tag = t.tag;
                    self.outputs
                        .push(MachineOutput::ThreadBlocked { tid, tag, token });
                    return;
                }
                Step::Sleep(d) => {
                    let t = self.thread_mut(tid).expect("live");
                    t.state = ThreadState::Sleeping;
                    let wake_at = self.now + d.max(SimDuration::from_nanos(1));
                    self.timers.push(wake_at, Timer::ThreadWake { tid });
                    return;
                }
                Step::Exit => {
                    self.finish_thread(tid, false);
                    return;
                }
            }
        }
        // A program that yields zero-length computes forever is broken; kill
        // it rather than hang the simulation.
        self.finish_thread(tid, true);
    }

    /// Marks a thread ready: dispatches onto an idle allowed core if
    /// possible; otherwise queues — at the front with the wake boost, at
    /// the back without.
    fn make_ready(&mut self, tid: ThreadId, extra_os_cost: SimDuration, boosted: bool) {
        self.thread_mut(tid).expect("live").state = ThreadState::Ready;
        if !self.job_throttled(tid) {
            let allowed = self.effective_affinity(tid);
            let idle = self.idle_core_mask().intersection(allowed);
            if let Some(core) = idle.lowest() {
                self.dispatch(core, tid, self.cfg.dispatch_cost + extra_os_cost);
                return;
            }
        }
        if boosted {
            self.ready.push_front(tid);
        } else {
            self.ready.push_back(tid);
        }
    }

    fn job_throttled(&self, tid: ThreadId) -> bool {
        let t = self.thread(tid).expect("live");
        self.jobs[t.job.0 as usize]
            .quota
            .as_ref()
            .is_some_and(|q| q.throttled)
    }

    // ------------------------------------------------------------------
    // Internals: core slices
    // ------------------------------------------------------------------

    /// Puts `tid` on `core`, charging `os_cost` ahead of the thread's
    /// compute. The thread must be Ready and eligible.
    fn dispatch(&mut self, core: CoreId, tid: ThreadId, os_cost: SimDuration) {
        debug_assert!(self.cores[core.0 as usize].running.is_none());
        // Close the idle interval.
        let idle_since = self.cores[core.0 as usize].idle_since;
        self.breakdown.add_idle(self.now.since(idle_since));
        let quantum = self.cfg.quantum;
        {
            let t = self.thread_mut(tid).expect("live");
            t.quantum_left = quantum;
        }
        self.stats.dispatches += 1;
        self.quota_running_changed(tid, 1);
        self.start_slice(core, tid, os_cost);
    }

    /// Begins (or continues) a slice for a thread already accounted as
    /// running on this core.
    fn start_slice(&mut self, core: CoreId, tid: ThreadId, os_cost: SimDuration) {
        let (seg, quantum_left) = {
            let t = self.thread_mut(tid).expect("live");
            t.state = ThreadState::Running(core);
            (t.seg_remaining, t.quantum_left)
        };
        let run = seg.min(quantum_left).max(SimDuration::from_nanos(1));
        let c = &mut self.cores[core.0 as usize];
        c.running = Some(tid);
        c.slice_start = self.now;
        c.slice_os_cost = os_cost;
        c.slice_gen += 1;
        let gen = c.slice_gen;
        self.timers
            .push(self.now + os_cost + run, Timer::SliceEnd { core, gen });
    }

    /// Settles accounting for the current (possibly partial) slice on
    /// `core`. Leaves the core empty and the thread's state unspecified —
    /// callers decide what happens to the thread.
    fn settle_slice(&mut self, core: CoreId) -> ThreadId {
        let c = &mut self.cores[core.0 as usize];
        let tid = c.running.take().expect("settling an occupied core");
        let elapsed = self.now.since(c.slice_start);
        let os_part = c.slice_os_cost.min(elapsed);
        let busy = elapsed - os_part;
        c.slice_gen += 1;
        c.idle_since = self.now;
        self.breakdown.add(TenantClass::Os, os_part);
        let job = self.thread(tid).expect("live").job;
        let class = self.jobs[job.0 as usize].class;
        self.breakdown.add(class, busy);
        self.jobs[job.0 as usize].cpu_time += busy;
        {
            let t = self.thread_mut(tid).expect("live");
            t.cpu_time += busy;
            t.seg_remaining = t.seg_remaining.saturating_sub(busy);
            t.quantum_left = t.quantum_left.saturating_sub(busy);
        }
        self.quota_running_changed(tid, -1);
        tid
    }

    /// Quantum/segment timer fired: the slice ran to its planned end.
    fn on_slice_end(&mut self, core: CoreId) {
        let tid = self.settle_slice(core);
        let (seg_remaining, quantum_left) = {
            let t = self.thread(tid).expect("live");
            (t.seg_remaining, t.quantum_left)
        };
        if seg_remaining.is_zero() {
            // Segment complete: pull the next step.
            // Keep the core warm for this thread if its quantum allows and
            // the next step is compute; otherwise the core is refilled.
            self.continue_or_release(core, tid, quantum_left);
        } else {
            // Quantum expired mid-segment: round-robin if anyone waits.
            if let Some(next) = self.first_eligible_ready(core) {
                let t = self.thread_mut(tid).expect("live");
                t.state = ThreadState::Ready;
                self.ready.push_back(tid);
                self.stats.ctx_switches += 1;
                self.remove_from_ready(next);
                self.dispatch(core, next, self.cfg.ctx_switch_cost);
            } else {
                // Nobody waits: renew the quantum in place.
                let quantum = self.cfg.quantum;
                let t = self.thread_mut(tid).expect("live");
                t.quantum_left = quantum;
                self.quota_running_changed(tid, 1);
                self.start_slice(core, tid, SimDuration::ZERO);
            }
        }
    }

    /// After a completed segment: continue the same thread on this core when
    /// its next step is compute and quantum remains; otherwise release.
    fn continue_or_release(&mut self, core: CoreId, tid: ThreadId, quantum_left: SimDuration) {
        for _guard in 0..MAX_ZERO_STEPS {
            if self.thread(tid).is_none() {
                self.fill_core(core, self.cfg.ctx_switch_cost);
                return;
            }
            let step = self.pull_step(tid);
            match step {
                Step::Compute(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    let waiter = self.first_eligible_ready(core);
                    let t = self.thread_mut(tid).expect("live");
                    t.seg_remaining = d;
                    if !quantum_left.is_zero() && waiter.is_none() {
                        // Keep running: no dispatch cost, same quantum.
                        self.quota_running_changed(tid, 1);
                        self.start_slice(core, tid, SimDuration::ZERO);
                    } else if let Some(next) = waiter {
                        // Quantum exhausted or someone waits: round-robin.
                        let t = self.thread_mut(tid).expect("live");
                        t.state = ThreadState::Ready;
                        self.ready.push_back(tid);
                        self.stats.ctx_switches += 1;
                        self.remove_from_ready(next);
                        self.dispatch(core, next, self.cfg.ctx_switch_cost);
                    } else {
                        // Quantum exhausted but nobody waits: renew in place.
                        let quantum = self.cfg.quantum;
                        let t = self.thread_mut(tid).expect("live");
                        t.quantum_left = quantum;
                        self.quota_running_changed(tid, 1);
                        self.start_slice(core, tid, SimDuration::ZERO);
                    }
                    return;
                }
                Step::Block { token } => {
                    let t = self.thread_mut(tid).expect("live");
                    t.state = ThreadState::Blocked;
                    let tag = t.tag;
                    self.outputs
                        .push(MachineOutput::ThreadBlocked { tid, tag, token });
                    self.fill_core(core, self.cfg.ctx_switch_cost);
                    return;
                }
                Step::Sleep(d) => {
                    let t = self.thread_mut(tid).expect("live");
                    t.state = ThreadState::Sleeping;
                    let wake_at = self.now + d.max(SimDuration::from_nanos(1));
                    self.timers.push(wake_at, Timer::ThreadWake { tid });
                    self.fill_core(core, self.cfg.ctx_switch_cost);
                    return;
                }
                Step::Exit => {
                    self.finish_thread(tid, false);
                    self.fill_core(core, self.cfg.ctx_switch_cost);
                    return;
                }
            }
        }
        self.finish_thread(tid, true);
        self.fill_core(core, self.cfg.ctx_switch_cost);
    }

    /// Preempts the thread on `core` (resched IPI) and requeues it.
    fn preempt_core(&mut self, core: CoreId) {
        let tid = self.settle_slice(core);
        let t = self.thread_mut(tid).expect("live");
        t.state = ThreadState::Ready;
        self.ready.push_back(tid);
    }

    /// Preempts the thread on `core` without requeueing (it is about to be
    /// killed).
    fn preempt_core_no_requeue(&mut self, core: CoreId) {
        let _ = self.settle_slice(core);
    }

    /// First ready-queue thread eligible to run on `core`, skipping stale
    /// entries.
    fn first_eligible_ready(&self, core: CoreId) -> Option<ThreadId> {
        self.ready
            .iter()
            .copied()
            .find(|&tid| self.is_dispatchable(tid, core))
    }

    fn is_dispatchable(&self, tid: ThreadId, core: CoreId) -> bool {
        match self.thread(tid) {
            Some(t) if t.state == ThreadState::Ready => {
                !self.job_throttled(tid) && self.effective_affinity(tid).contains(core)
            }
            _ => false,
        }
    }

    fn remove_from_ready(&mut self, tid: ThreadId) {
        if let Some(pos) = self.ready.iter().position(|&x| x == tid) {
            self.ready.remove(pos);
        }
    }

    /// Compacts stale entries out of the ready queue once enough have
    /// accumulated, so the cost is amortized O(1) per exit rather than
    /// O(queue) per dispatch.
    fn prune_ready(&mut self) {
        if self.ready_stale > 64 {
            let threads = &self.threads;
            self.ready.retain(|tid| {
                threads
                    .get(tid.index as usize)
                    .is_some_and(|s| s.gen == tid.gen && s.body.is_some())
            });
            self.ready_stale = 0;
        }
    }

    /// Fills an empty core from the ready queue, charging `os_cost` ahead of
    /// the incoming thread. If nobody is eligible the core goes idle and the
    /// cost is not charged (an idle core absorbs it).
    fn fill_core(&mut self, core: CoreId, os_cost: SimDuration) {
        debug_assert!(self.cores[core.0 as usize].running.is_none());
        if let Some(next) = self.first_eligible_ready(core) {
            self.remove_from_ready(next);
            self.dispatch(core, next, os_cost);
        }
        self.prune_ready();
    }

    /// Tries to place queued threads on every idle core (after a mask widen,
    /// quota refill, etc.).
    fn dispatch_sweep(&mut self) {
        for i in 0..self.cores.len() {
            let core = CoreId(i as u16);
            if self.cores[i].running.is_none() {
                self.fill_core(core, self.cfg.dispatch_cost);
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals: quota enforcement
    // ------------------------------------------------------------------

    /// Settles quota consumption and adjusts the running-thread count of the
    /// thread's job by `delta`, rescheduling the exhaustion timer.
    fn quota_running_changed(&mut self, tid: ThreadId, delta: i32) {
        let job = self.thread(tid).expect("live").job;
        let now = self.now;
        let Some(q) = self.jobs[job.0 as usize].quota.as_mut() else {
            return;
        };
        q.settle(now);
        q.running = (q.running as i64 + delta as i64).max(0) as u32;
        self.reschedule_exhaust(job);
    }

    fn reschedule_exhaust(&mut self, job: JobId) {
        let now = self.now;
        let Some(q) = self.jobs[job.0 as usize].quota.as_mut() else {
            return;
        };
        q.exhaust_gen += 1;
        let gen = q.exhaust_gen;
        if let Some(at) = q.projected_exhaustion(now) {
            self.timers
                .push(at.max(now), Timer::QuotaExhaust { job, gen });
        }
    }

    fn on_quota_exhaust(&mut self, job: JobId, gen: u64) {
        let now = self.now;
        enum Decision {
            Stale,
            Reproject,
            Throttle,
        }
        let decision = match self.jobs[job.0 as usize].quota.as_mut() {
            None => Decision::Stale,
            Some(q) if q.exhaust_gen != gen || q.throttled => Decision::Stale,
            Some(q) => {
                q.settle(now);
                if !q.effectively_exhausted() {
                    // Parallelism dropped since the projection; re-project.
                    Decision::Reproject
                } else {
                    q.throttled = true;
                    Decision::Throttle
                }
            }
        };
        match decision {
            Decision::Stale => {}
            Decision::Reproject => self.reschedule_exhaust(job),
            Decision::Throttle => {
                // Deschedule every running thread of the job.
                let mut victims = std::mem::take(&mut self.victims_scratch);
                victims.clear();
                victims.extend(self.cores.iter().enumerate().filter_map(|(i, c)| {
                    let t = self.thread(c.running?)?;
                    (t.job == job).then_some(CoreId(i as u16))
                }));
                for &core in &victims {
                    self.preempt_core(core);
                    self.stats.ipis += 1;
                    self.fill_core(core, self.cfg.ipi_cost);
                }
                self.victims_scratch = victims;
            }
        }
    }

    fn on_quota_refill(&mut self, job: JobId) {
        let now = self.now;
        let cores = self.cfg.cores;
        let period = {
            let Some(q) = self.jobs[job.0 as usize].quota.as_mut() else {
                return;
            };
            q.settle(now);
            q.refill(cores, now);
            q.quota.period
        };
        self.timers.push(now + period, Timer::QuotaRefill { job });
        self.reschedule_exhaust(job);
        self.dispatch_sweep();
    }
}

/// A [`Machine::snapshot`]ted deep copy of a machine's dynamic state.
///
/// Opaque to callers; held by box-level checkpoints and handed back to
/// [`Machine::restore`]. The configuration is *not* captured — a state may
/// only be restored into the machine (or an identically configured one)
/// that produced it.
pub struct MachineState {
    now: SimTime,
    cores: Vec<CoreState>,
    threads: Vec<ThreadSlotState>,
    free_slots: Vec<u32>,
    jobs: Vec<JobBody>,
    ready: VecDeque<ThreadId>,
    ready_stale: usize,
    timers: EventQueueState<Timer>,
    outputs: Vec<MachineOutput>,
    breakdown: CpuBreakdown,
    rng: SimRng,
    stats: MachineStats,
    arena: StepArenaState,
}

struct ThreadSlotState {
    gen: u32,
    body: Option<ThreadBodyState>,
}

struct ThreadBodyState {
    job: JobId,
    tag: u64,
    state: ThreadState,
    program: Program,
    /// The shared progress counter's value at snapshot time, if the
    /// program publishes one (rolled back through the same `Arc` on
    /// restore).
    progress_value: Option<u64>,
    seg_remaining: SimDuration,
    quantum_left: SimDuration,
    affinity: CoreMask,
    cpu_time: SimDuration,
}

/// An in-flight scripted spawn: streams steps straight into the machine's
/// staging buffer, then copies them into recycled arena memory and launches
/// the thread on [`ScriptWriter::finish`].
///
/// Dropping the writer without calling `finish` abandons the spawn (the
/// staging buffer is simply cleared by the next scripted spawn).
pub struct ScriptWriter<'m> {
    machine: &'m mut Machine,
    now: SimTime,
    job: JobId,
    tag: u64,
    boosted: bool,
}

impl ScriptWriter<'_> {
    /// Marks the spawn as a wake-boosted continuation (see
    /// [`Machine::spawn_thread_with`]).
    pub fn boosted(mut self, boosted: bool) -> Self {
        self.boosted = boosted;
        self
    }

    /// Appends one step to the script.
    pub fn push(&mut self, step: Step) {
        self.machine.script_staging.push(step);
    }

    /// Appends a compute segment.
    pub fn compute(&mut self, d: SimDuration) {
        self.push(Step::Compute(d));
    }

    /// Appends a blocking operation carrying `token`.
    pub fn block(&mut self, token: u64) {
        self.push(Step::Block { token });
    }

    /// Appends a sleep.
    pub fn sleep(&mut self, d: SimDuration) {
        self.push(Step::Sleep(d));
    }

    /// Steps written so far.
    pub fn len(&self) -> usize {
        self.machine.script_staging.len()
    }

    /// True when no steps were written yet.
    pub fn is_empty(&self) -> bool {
        self.machine.script_staging.is_empty()
    }

    /// Allocates the script in the arena and spawns the thread, replaying
    /// the written steps in order and exiting at the end — exactly a
    /// [`crate::programs::Script`], minus the per-spawn `Box` and `Vec`.
    pub fn finish(self) -> ThreadId {
        let ScriptWriter {
            machine,
            now,
            job,
            tag,
            boosted,
        } = self;
        let range = machine.arena.alloc(&machine.script_staging);
        machine.spawn_program_with(now, job, Program::Scripted { range, at: 0 }, tag, boosted)
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("cores", &self.cfg.cores)
            .field("live_threads", &self.live_thread_count())
            .field("ready", &self.ready.len())
            .finish()
    }
}
