//! Reusable [`ThreadProgram`] building blocks.

use simcore::{SimDuration, SimRng};

use crate::program::{Step, ThreadProgram};

/// Computes once for a fixed duration, then exits.
#[derive(Clone, Debug)]
pub struct ComputeOnce {
    duration: SimDuration,
    done: bool,
}

impl ComputeOnce {
    /// Creates a one-shot compute program.
    pub fn new(duration: SimDuration) -> Self {
        ComputeOnce {
            duration,
            done: false,
        }
    }
}

impl ThreadProgram for ComputeOnce {
    fn next_step(&mut self, _rng: &mut SimRng) -> Step {
        if self.done {
            Step::Exit
        } else {
            self.done = true;
            Step::Compute(self.duration)
        }
    }

    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }
}

/// Computes in fixed-size chunks forever (or until killed).
///
/// This is the heart of the CPU bully: each completed chunk is one unit of
/// "progress". The owner reads progress through the shared counter.
#[derive(Clone, Debug)]
pub struct ComputeLoop {
    chunk: SimDuration,
    progress: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ComputeLoop {
    /// Creates an infinite compute loop with the given chunk size; each
    /// completed chunk increments `progress`.
    pub fn new(chunk: SimDuration, progress: std::sync::Arc<std::sync::atomic::AtomicU64>) -> Self {
        ComputeLoop { chunk, progress }
    }
}

impl ThreadProgram for ComputeLoop {
    fn next_step(&mut self, _rng: &mut SimRng) -> Step {
        // The first call starts the first chunk; every subsequent call means
        // the previous chunk finished.
        self.progress
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Step::Compute(self.chunk)
    }

    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn shared_progress(&self) -> Option<&std::sync::atomic::AtomicU64> {
        Some(&self.progress)
    }
}

/// Runs a fixed sequence of steps, then exits.
#[derive(Clone, Debug)]
pub struct Script {
    steps: Vec<Step>,
    at: usize,
}

impl Script {
    /// Creates a program that replays `steps` in order and then exits.
    pub fn new(steps: Vec<Step>) -> Self {
        Script { steps, at: 0 }
    }
}

impl ThreadProgram for Script {
    fn next_step(&mut self, _rng: &mut SimRng) -> Step {
        let s = self.steps.get(self.at).copied().unwrap_or(Step::Exit);
        self.at += 1;
        s
    }

    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn compute_once_exits() {
        let mut p = ComputeOnce::new(SimDuration::from_micros(5));
        let mut rng = SimRng::seed_from_u64(1);
        assert!(matches!(p.next_step(&mut rng), Step::Compute(_)));
        assert_eq!(p.next_step(&mut rng), Step::Exit);
        assert_eq!(p.next_step(&mut rng), Step::Exit);
    }

    #[test]
    fn compute_loop_counts_progress() {
        let progress = Arc::new(AtomicU64::new(0));
        let mut p = ComputeLoop::new(SimDuration::from_millis(1), progress.clone());
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..5 {
            assert!(matches!(p.next_step(&mut rng), Step::Compute(_)));
        }
        // First call starts chunk 1; 5 calls = 5 chunk starts, 4 completions
        // plus the initial one counted on start. The counter increments per
        // call by design; the owner interprets it as completed chunks.
        assert_eq!(progress.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn script_replays_then_exits() {
        let mut p = Script::new(vec![
            Step::Compute(SimDuration::from_micros(1)),
            Step::Block { token: 9 },
            Step::Sleep(SimDuration::from_micros(2)),
        ]);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(matches!(p.next_step(&mut rng), Step::Compute(_)));
        assert_eq!(p.next_step(&mut rng), Step::Block { token: 9 });
        assert!(matches!(p.next_step(&mut rng), Step::Sleep(_)));
        assert_eq!(p.next_step(&mut rng), Step::Exit);
    }
}
