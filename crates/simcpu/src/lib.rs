//! Multicore machine simulator.
//!
//! This crate models the only part of the OS that PerfIso's *CPU blind
//! isolation* interacts with: a multicore, work-conserving, quantum-based
//! thread scheduler with
//!
//! - per-job **affinity masks** (the Windows Job Object / Linux cpuset
//!   mechanism PerfIso uses to restrict secondary tenants),
//! - per-job **CPU-rate quotas** (the Job Object CPU rate control / cgroups
//!   `cpu.cfs_quota_us` mechanism evaluated as a failing alternative in
//!   §6.1.4 of the paper),
//! - an **idle-core bitmask** query (the low-latency system call that blind
//!   isolation polls, §3.1.1), and
//! - full CPU-time accounting into Primary/Secondary/OS/Idle buckets.
//!
//! Both tenants run at the same priority: the paper treats the primary as a
//! black box and never touches scheduling policy, so a woken thread that
//! finds no idle core in its affinity mask must *wait for a quantum to end*.
//! That waiting is the entire phenomenon the paper is about.
//!
//! The simulator is deterministic: all randomness comes from an explicit
//! [`simcore::SimRng`], and simultaneous events are processed in a fixed
//! order.
//!
//! # Examples
//!
//! ```
//! use simcore::{SimDuration, SimTime};
//! use simcpu::{programs::ComputeOnce, CoreMask, Machine, MachineConfig};
//! use telemetry::TenantClass;
//!
//! let mut m = Machine::new(MachineConfig::small(4));
//! let job = m.create_job(TenantClass::Primary, CoreMask::all(4));
//! m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(SimDuration::from_millis(1))), 7);
//! m.advance_to(SimTime::from_millis(2));
//! let out = m.drain_outputs();
//! assert!(out.iter().any(|o| matches!(o, simcpu::MachineOutput::ThreadExited { tag: 7, .. })));
//! ```

pub mod arena;
pub mod config;
pub mod machine;
pub mod program;
pub mod programs;
pub mod quota;

pub use arena::{ArenaStats, Program, StepArena, StepArenaState, StepRange};
pub use config::MachineConfig;
pub use machine::{Machine, MachineOutput, MachineState, ScriptWriter};
pub use program::{Step, ThreadProgram};
pub use quota::CpuRateQuota;
pub use simcore::ids::{CoreId, JobId, ThreadId};
pub use simcore::mask::CoreMask;
