//! Per-job CPU-rate quotas (Job Object CPU rate control / cgroups quota).
//!
//! This is the "restricting CPU cycles" alternative the paper evaluates in
//! §6.1.4 and finds harmful: the job may consume at most
//! `rate × period × cores` of core-time per period; once the budget is
//! exhausted, *every* thread of the job is descheduled until the next period
//! boundary. The duty-cycle bursts this creates — the job monopolising all
//! allowed cores early in each period — are exactly the cascade that delays
//! the primary's worker threads.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimTime};

/// A CPU-rate cap: fraction of total machine CPU time per period.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuRateQuota {
    /// Allowed fraction of total machine CPU time, in `(0, 1]`.
    pub rate: f64,
    /// Enforcement period (cgroups defaults to 100 ms).
    pub period: SimDuration,
}

impl CpuRateQuota {
    /// Creates a quota.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate <= 1` and `period > 0`.
    pub fn new(rate: f64, period: SimDuration) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0,1]: {rate}");
        assert!(!period.is_zero(), "period must be positive");
        CpuRateQuota { rate, period }
    }

    /// The classic cgroups-style default: the given rate over 100 ms periods.
    pub fn percent(pct: f64) -> Self {
        CpuRateQuota::new(pct / 100.0, SimDuration::from_millis(100))
    }

    /// Core-time budget per period on a machine with `cores` cores.
    pub fn budget(&self, cores: u32) -> SimDuration {
        self.period.mul_f64(self.rate * cores as f64)
    }
}

/// Runtime state of quota enforcement for one job.
#[derive(Clone, Debug)]
pub(crate) struct QuotaState {
    pub quota: CpuRateQuota,
    /// Core-time remaining in the current period.
    pub remaining: SimDuration,
    /// Whether the job is currently descheduled.
    pub throttled: bool,
    /// Time of the last consumption settlement.
    pub last_settle: SimTime,
    /// Number of threads of this job currently on cores.
    pub running: u32,
    /// Generation for invalidating stale exhaustion timers.
    pub exhaust_gen: u64,
}

impl QuotaState {
    pub fn new(quota: CpuRateQuota, cores: u32, now: SimTime) -> Self {
        QuotaState {
            quota,
            remaining: quota.budget(cores),
            throttled: false,
            last_settle: now,
            running: 0,
            exhaust_gen: 0,
        }
    }

    /// Charges consumption since the last settlement at the current
    /// parallelism, and updates the settlement point.
    pub fn settle(&mut self, now: SimTime) {
        if self.running > 0 {
            let elapsed = now.since(self.last_settle);
            let consumed =
                SimDuration::from_nanos(elapsed.as_nanos().saturating_mul(self.running as u64));
            self.remaining = self.remaining.saturating_sub(consumed);
        }
        self.last_settle = now;
    }

    /// When the budget will run out at current parallelism (`None` if it
    /// will not, i.e. nothing is running or budget is infinite for now).
    pub fn projected_exhaustion(&self, now: SimTime) -> Option<SimTime> {
        if self.running == 0 || self.throttled {
            return None;
        }
        if self.effectively_exhausted() {
            return Some(now);
        }
        // Ceiling division: the projection must land strictly in the future
        // whenever usable budget remains, or the exhaustion timer would
        // re-fire at `now` forever (settle charges zero elapsed time, the
        // budget never drains, and the simulation livelocks).
        Some(now + self.remaining.div_ceil(self.running as u64))
    }

    /// True when the remaining budget is too small to cover even one
    /// nanosecond of each running thread, i.e. it can never be charged off
    /// by a future settlement at the current parallelism.
    pub fn effectively_exhausted(&self) -> bool {
        self.remaining.as_nanos() < self.running.max(1) as u64
    }

    /// Refills the budget at a period boundary.
    pub fn refill(&mut self, cores: u32, now: SimTime) {
        self.remaining = self.quota.budget(cores);
        self.throttled = false;
        self.last_settle = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_scales_with_cores_and_rate() {
        let q = CpuRateQuota::percent(5.0);
        assert_eq!(q.budget(48), SimDuration::from_millis(240));
        let q = CpuRateQuota::percent(45.0);
        assert_eq!(q.budget(48), SimDuration::from_millis(2_160));
    }

    #[test]
    fn settle_charges_parallelism() {
        let mut s = QuotaState::new(CpuRateQuota::percent(50.0), 4, SimTime::ZERO);
        // Budget: 0.5 * 100ms * 4 = 200ms of core-time.
        s.running = 4;
        s.settle(SimTime::from_millis(10));
        assert_eq!(s.remaining, SimDuration::from_millis(160));
        s.running = 2;
        s.settle(SimTime::from_millis(20));
        assert_eq!(s.remaining, SimDuration::from_millis(140));
    }

    #[test]
    fn exhaustion_projection() {
        let mut s = QuotaState::new(CpuRateQuota::percent(10.0), 10, SimTime::ZERO);
        // Budget 100ms core-time; 5 threads burn it in 20ms wall.
        s.running = 5;
        assert_eq!(
            s.projected_exhaustion(SimTime::ZERO),
            Some(SimTime::from_millis(20))
        );
        s.running = 0;
        assert_eq!(s.projected_exhaustion(SimTime::ZERO), None);
    }

    #[test]
    fn refill_restores() {
        let mut s = QuotaState::new(CpuRateQuota::percent(10.0), 10, SimTime::ZERO);
        s.running = 5;
        s.settle(SimTime::from_millis(20));
        assert_eq!(s.remaining, SimDuration::ZERO);
        s.throttled = true;
        s.refill(10, SimTime::from_millis(100));
        assert!(!s.throttled);
        assert_eq!(s.remaining, SimDuration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bad_rate_rejected() {
        let _ = CpuRateQuota::new(1.5, SimDuration::from_millis(100));
    }

    #[test]
    fn projection_always_lands_strictly_in_the_future() {
        // Regression: when `remaining < running` nanos, truncating division
        // projected exhaustion at `now`, the settle there charged zero, and
        // the timer re-fired at `now` forever.
        let mut s = QuotaState::new(CpuRateQuota::percent(10.0), 10, SimTime::ZERO);
        s.remaining = SimDuration::from_nanos(3);
        s.running = 5;
        assert!(
            s.effectively_exhausted(),
            "3ns over 5 threads is unusable budget"
        );
        assert_eq!(s.projected_exhaustion(SimTime::ZERO), Some(SimTime::ZERO));

        // 7ns over 2 threads is usable; the projection must round up.
        s.remaining = SimDuration::from_nanos(7);
        s.running = 2;
        assert!(!s.effectively_exhausted());
        assert_eq!(
            s.projected_exhaustion(SimTime::ZERO),
            Some(SimTime::from_nanos(4))
        );
    }
}
