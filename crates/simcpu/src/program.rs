//! Thread programs: how workload models describe thread behaviour.
//!
//! A [`ThreadProgram`] is a pull-based state machine. The machine asks for
//! the next [`Step`] whenever the previous one finishes: after a compute
//! segment completes, after a blocking operation is woken, or after a sleep
//! expires. This keeps the CPU simulator decoupled from disks, networks, and
//! application logic — a blocked thread is woken by whoever owns the token.

use simcore::{SimDuration, SimRng};

/// The next action a thread wants to take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Run on a CPU for the given duration of pure compute.
    Compute(SimDuration),
    /// Block until the embedding simulation calls `Machine::wake`.
    ///
    /// The token is opaque user data (e.g. an I/O request id) echoed in the
    /// [`crate::MachineOutput::ThreadBlocked`] output so the driver can route
    /// the operation.
    Block {
        /// Opaque request identifier, echoed to the driver.
        token: u64,
    },
    /// Leave the CPU voluntarily for the given time, then continue.
    Sleep(SimDuration),
    /// Terminate the thread.
    Exit,
}

/// A pull-based description of a thread's lifetime.
///
/// Programs must be [`Send`]: whole machines (and the boxes embedding
/// them) migrate across worker threads when the cluster and fleet drivers
/// fan simulation slices out in parallel.
pub trait ThreadProgram: Send {
    /// Returns the next step. Called once at spawn and again after each step
    /// completes (compute finished, block woken, sleep expired).
    fn next_step(&mut self, rng: &mut SimRng) -> Step;

    /// Clones the program for machine checkpointing, or `None` when its
    /// state cannot be duplicated (the default).
    ///
    /// Speculative cluster sync snapshots whole machines; a boxed program
    /// that returns `None` makes its thread's machine unsnapshotable, and
    /// the cluster driver falls back to conservative advance for that box.
    /// Stateful workload programs should implement this as
    /// `Some(Box::new(self.clone()))`; programs sharing state with an
    /// external handle (e.g. a progress counter behind an `Arc`) must clone
    /// the *handle*, keeping identity — see [`ThreadProgram::shared_progress`]
    /// for how the counter value itself is rolled back.
    fn clone_box(&self) -> Option<Box<dyn ThreadProgram>> {
        None
    }

    /// The shared progress counter the program bumps, if it publishes one.
    ///
    /// Snapshots record the counter's value and restores write it back into
    /// the *same* atomic (the `Arc` identity survives [`clone_box`]), so an
    /// external handle polling the counter never observes speculative
    /// progress that was rolled back.
    ///
    /// [`clone_box`]: ThreadProgram::clone_box
    fn shared_progress(&self) -> Option<&std::sync::atomic::AtomicU64> {
        None
    }
}

impl<F> ThreadProgram for F
where
    F: FnMut(&mut SimRng) -> Step + Send,
{
    fn next_step(&mut self, rng: &mut SimRng) -> Step {
        self(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_programs() {
        let mut calls = 0;
        let mut p = move |_rng: &mut SimRng| {
            calls += 1;
            if calls == 1 {
                Step::Compute(SimDuration::from_micros(10))
            } else {
                Step::Exit
            }
        };
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            p.next_step(&mut rng),
            Step::Compute(SimDuration::from_micros(10))
        );
        assert_eq!(p.next_step(&mut rng), Step::Exit);
    }
}
