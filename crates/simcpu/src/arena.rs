//! Arena-backed thread programs: the allocation-free spawn path.
//!
//! The evaluation workloads spawn millions of short-lived scripted threads
//! (~13 per IndexServe query). Boxing a fresh [`ThreadProgram`] plus a step
//! `Vec` per spawn made the spawn path the dominant allocation cost of the
//! whole simulation. This module replaces it:
//!
//! - [`StepArena`] — one contiguous [`Step`] slab shared by every scripted
//!   thread on a machine. Scripts live in power-of-two-capacity ranges that
//!   are recycled through per-class free lists on thread exit/kill, so in
//!   steady state spawning allocates nothing.
//! - [`Program`] — the machine's internal program representation: scripted
//!   ranges and the two ubiquitous compute shapes are stored inline in the
//!   thread table; `Dyn` keeps the boxed [`ThreadProgram`] escape hatch for
//!   custom stateful workloads (disk-bully workers, HDFS duty cycles, ML
//!   trainers, test closures).
//!
//! Determinism is unaffected: none of the inline variants draw from the
//! machine RNG (exactly like the `Script`/`ComputeOnce`/`ComputeLoop`
//! trait programs they replace), and range recycling is plain LIFO.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simcore::{SimDuration, SimRng};

use crate::program::{Step, ThreadProgram};

/// A script's slice of the arena slab.
///
/// The allocated capacity is `len.next_power_of_two()`; it is recomputed
/// from `len` on free, so the handle stays two words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepRange {
    start: u32,
    len: u32,
}

impl StepRange {
    /// An empty range (a script that exits immediately).
    pub const EMPTY: StepRange = StepRange { start: 0, len: 0 };

    /// Number of steps in the script.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for a zero-step script.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The allocated capacity class (log2 of the power-of-two capacity).
    fn class(&self) -> usize {
        debug_assert!(self.len > 0);
        self.len.next_power_of_two().trailing_zeros() as usize
    }
}

/// Arena occupancy and recycling counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ArenaStats {
    /// Slab length in steps — the high-water mark of arena memory (the slab
    /// never shrinks; freed ranges are recycled in place).
    pub slab_steps: u64,
    /// Slab high-water in bytes.
    pub slab_bytes: u64,
    /// Ranges currently live (scripted threads that have not exited).
    pub live_ranges: u64,
    /// Peak concurrent live ranges — what bounds the slab high-water.
    pub peak_live_ranges: u64,
    /// Total ranges handed out over the arena's lifetime.
    pub ranges_allocated: u64,
    /// Allocations served from a free list instead of growing the slab.
    pub ranges_reused: u64,
}

impl ArenaStats {
    /// Fraction of allocations served by recycling a freed range.
    pub fn reuse_rate(&self) -> f64 {
        if self.ranges_allocated == 0 {
            0.0
        } else {
            self.ranges_reused as f64 / self.ranges_allocated as f64
        }
    }
}

/// One `Step` slab with per-size-class range free lists.
///
/// Capacities are rounded up to powers of two and never split or merged, so
/// a freed range is always reusable for any later script of its class —
/// fragmentation cannot accumulate, and the slab high-water is bounded by
/// the peak concurrent script footprint (within the 2× rounding).
#[derive(Debug, Default)]
pub struct StepArena {
    slab: Vec<Step>,
    /// Free range start offsets, indexed by capacity class (log2).
    free: Vec<Vec<u32>>,
    live_ranges: u64,
    peak_live_ranges: u64,
    ranges_allocated: u64,
    ranges_reused: u64,
}

impl StepArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        StepArena::default()
    }

    /// Creates an arena with pre-allocated slab capacity.
    pub fn with_capacity(steps: usize) -> Self {
        StepArena {
            slab: Vec::with_capacity(steps),
            ..StepArena::default()
        }
    }

    /// Copies `steps` into the arena and returns the owning range.
    ///
    /// Reuses a freed range of the same capacity class when one exists;
    /// otherwise grows the slab at the tail.
    pub fn alloc(&mut self, steps: &[Step]) -> StepRange {
        let len = u32::try_from(steps.len()).expect("script longer than u32::MAX steps");
        if len == 0 {
            return StepRange::EMPTY;
        }
        let range = StepRange { start: 0, len };
        let class = range.class();
        let cap = 1usize << class;
        self.ranges_allocated += 1;
        self.live_ranges += 1;
        self.peak_live_ranges = self.peak_live_ranges.max(self.live_ranges);
        let start = match self.free.get_mut(class).and_then(|f| f.pop()) {
            Some(start) => {
                self.ranges_reused += 1;
                self.slab[start as usize..start as usize + steps.len()].copy_from_slice(steps);
                start
            }
            None => {
                let start = self.slab.len() as u32;
                self.slab.extend_from_slice(steps);
                // Pad to the class capacity so the whole range is reusable.
                self.slab.resize(start as usize + cap, Step::Exit);
                start
            }
        };
        StepRange { start, len }
    }

    /// Returns a range's capacity to its free list.
    ///
    /// Must be called exactly once per allocated range; the machine does so
    /// when the owning thread exits or is killed.
    pub fn free(&mut self, range: StepRange) {
        if range.is_empty() {
            return;
        }
        let class = range.class();
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        self.free[class].push(range.start);
        self.live_ranges -= 1;
    }

    /// The step at position `at` within `range`, or `None` past the end.
    pub fn get(&self, range: StepRange, at: u32) -> Option<Step> {
        if at < range.len {
            Some(self.slab[(range.start + at) as usize])
        } else {
            None
        }
    }

    /// Captures the arena for machine checkpointing: a high-water copy of
    /// the slab (one memcpy — `Step` is `Copy`) plus the per-class free
    /// lists and counters. Restoring reproduces the exact range-recycling
    /// sequence, so post-rollback spawns land in the same slab offsets a
    /// never-rolled-back run would use.
    pub fn save(&self) -> StepArenaState {
        StepArenaState {
            slab: self.slab.clone(),
            free: self.free.clone(),
            live_ranges: self.live_ranges,
            peak_live_ranges: self.peak_live_ranges,
            ranges_allocated: self.ranges_allocated,
            ranges_reused: self.ranges_reused,
        }
    }

    /// Rewinds the arena to a previously [`StepArena::save`]d state,
    /// reusing the live slab's capacity.
    pub fn restore(&mut self, state: &StepArenaState) {
        self.slab.clone_from(&state.slab);
        self.free.clone_from(&state.free);
        self.live_ranges = state.live_ranges;
        self.peak_live_ranges = state.peak_live_ranges;
        self.ranges_allocated = state.ranges_allocated;
        self.ranges_reused = state.ranges_reused;
    }

    /// Occupancy and recycling counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            slab_steps: self.slab.len() as u64,
            slab_bytes: std::mem::size_of_val(self.slab.as_slice()) as u64,
            live_ranges: self.live_ranges,
            peak_live_ranges: self.peak_live_ranges,
            ranges_allocated: self.ranges_allocated,
            ranges_reused: self.ranges_reused,
        }
    }
}

/// A [`StepArena::save`]d deep copy: the slab high-water plus the free
/// lists and counters, sufficient to replay range recycling exactly.
#[derive(Clone, Debug)]
pub struct StepArenaState {
    slab: Vec<Step>,
    free: Vec<Vec<u32>>,
    live_ranges: u64,
    peak_live_ranges: u64,
    ranges_allocated: u64,
    ranges_reused: u64,
}

/// The machine's internal program representation.
///
/// The inline variants cover every hot spawn site without touching the
/// global allocator; [`Program::Dyn`] carries arbitrary [`ThreadProgram`]s
/// for everything else.
pub enum Program {
    /// A step sequence stored in the machine's [`StepArena`]; replays in
    /// order, then exits.
    Scripted {
        /// The owning arena range (freed by the machine on thread exit).
        range: StepRange,
        /// Replay cursor.
        at: u32,
    },
    /// Computes once for a fixed duration, then exits (the inline
    /// [`crate::programs::ComputeOnce`]).
    ComputeOnce {
        /// Compute duration.
        duration: SimDuration,
        /// Whether the compute segment was already issued.
        done: bool,
    },
    /// Computes in fixed chunks forever, bumping a shared progress counter
    /// per chunk start (the inline [`crate::programs::ComputeLoop`]).
    ComputeLoop {
        /// Compute chunk per progress increment.
        chunk: SimDuration,
        /// Shared progress counter.
        progress: Arc<AtomicU64>,
    },
    /// A boxed custom program: the escape hatch for stateful workloads.
    Dyn(Box<dyn ThreadProgram>),
}

impl Program {
    /// A one-shot compute program (no allocation).
    pub fn compute_once(duration: SimDuration) -> Program {
        Program::ComputeOnce {
            duration,
            done: false,
        }
    }

    /// An infinite compute loop with a shared progress counter (no
    /// allocation beyond the `Arc` clone).
    pub fn compute_loop(chunk: SimDuration, progress: Arc<AtomicU64>) -> Program {
        Program::ComputeLoop { chunk, progress }
    }

    /// Pulls the next step. `arena` resolves scripted ranges; `rng` feeds
    /// `Dyn` programs exactly as the trait contract specifies.
    pub(crate) fn next_step(&mut self, arena: &StepArena, rng: &mut SimRng) -> Step {
        match self {
            Program::Scripted { range, at } => {
                let step = arena.get(*range, *at).unwrap_or(Step::Exit);
                *at += 1;
                step
            }
            Program::ComputeOnce { duration, done } => {
                if *done {
                    Step::Exit
                } else {
                    *done = true;
                    Step::Compute(*duration)
                }
            }
            Program::ComputeLoop { chunk, progress } => {
                progress.fetch_add(1, Ordering::Relaxed);
                Step::Compute(*chunk)
            }
            Program::Dyn(p) => p.next_step(rng),
        }
    }

    /// The scripted range to recycle when the thread finishes, if any.
    pub(crate) fn owned_range(&self) -> Option<StepRange> {
        match self {
            Program::Scripted { range, .. } => Some(*range),
            _ => None,
        }
    }

    /// Clones the program for machine checkpointing, or `None` when it
    /// cannot be duplicated (a [`Program::Dyn`] whose
    /// [`ThreadProgram::clone_box`] declines — e.g. a closure program).
    ///
    /// Scripted ranges clone as handles only: the referenced steps live in
    /// the arena slab, which is snapshotted separately. `ComputeLoop` (and
    /// any `Dyn` program sharing a counter) clones the `Arc` handle, so the
    /// external observer's identity survives a rollback.
    pub(crate) fn try_clone(&self) -> Option<Program> {
        match self {
            Program::Scripted { range, at } => Some(Program::Scripted {
                range: *range,
                at: *at,
            }),
            Program::ComputeOnce { duration, done } => Some(Program::ComputeOnce {
                duration: *duration,
                done: *done,
            }),
            Program::ComputeLoop { chunk, progress } => Some(Program::ComputeLoop {
                chunk: *chunk,
                progress: Arc::clone(progress),
            }),
            Program::Dyn(p) => p.clone_box().map(Program::Dyn),
        }
    }

    /// The shared progress counter the program bumps, if any (see
    /// [`ThreadProgram::shared_progress`]).
    pub(crate) fn shared_progress(&self) -> Option<&AtomicU64> {
        match self {
            Program::ComputeLoop { progress, .. } => Some(progress),
            Program::Dyn(p) => p.shared_progress(),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Program::Scripted { range, at } => f
                .debug_struct("Scripted")
                .field("range", range)
                .field("at", at)
                .finish(),
            Program::ComputeOnce { duration, done } => f
                .debug_struct("ComputeOnce")
                .field("duration", duration)
                .field("done", done)
                .finish(),
            Program::ComputeLoop { chunk, .. } => f
                .debug_struct("ComputeLoop")
                .field("chunk", chunk)
                .finish_non_exhaustive(),
            Program::Dyn(_) => f.write_str("Dyn(..)"),
        }
    }
}

impl From<Box<dyn ThreadProgram>> for Program {
    fn from(p: Box<dyn ThreadProgram>) -> Self {
        Program::Dyn(p)
    }
}

impl<P: ThreadProgram + 'static> From<P> for Program {
    fn from(p: P) -> Self {
        Program::Dyn(Box::new(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(us: u64) -> Step {
        Step::Compute(SimDuration::from_micros(us))
    }

    #[test]
    fn alloc_reads_back_and_exits_past_end() {
        let mut a = StepArena::new();
        let steps = [compute(1), Step::Block { token: 7 }, compute(2)];
        let r = a.alloc(&steps);
        assert_eq!(r.len(), 3);
        for (i, &s) in steps.iter().enumerate() {
            assert_eq!(a.get(r, i as u32), Some(s));
        }
        assert_eq!(a.get(r, 3), None);
        // Capacity rounds to 4.
        assert_eq!(a.stats().slab_steps, 4);
    }

    #[test]
    fn free_recycles_same_class() {
        let mut a = StepArena::new();
        let r1 = a.alloc(&[compute(1), compute(2), compute(3)]); // class 4
        a.free(r1);
        let r2 = a.alloc(&[compute(9), compute(8), compute(7), compute(6)]); // class 4
        assert_eq!(r2.start, r1.start, "same-class alloc reuses the range");
        assert_eq!(a.stats().slab_steps, 4, "slab did not grow");
        assert_eq!(a.stats().ranges_reused, 1);
        assert_eq!(a.get(r2, 0), Some(compute(9)));
        assert_eq!(a.get(r2, 3), Some(compute(6)));
    }

    #[test]
    fn distinct_classes_do_not_alias() {
        let mut a = StepArena::new();
        let small = a.alloc(&[compute(1)]);
        a.free(small);
        let big = a.alloc(&[compute(2), compute(3)]); // class 2: fresh slab
        assert_ne!(big.start, small.start);
        let small2 = a.alloc(&[compute(4)]); // recycles the class-1 range
        assert_eq!(small2.start, small.start);
        assert_eq!(a.get(big, 0), Some(compute(2)));
        assert_eq!(a.get(small2, 0), Some(compute(4)));
    }

    #[test]
    fn empty_script_needs_no_memory() {
        let mut a = StepArena::new();
        let r = a.alloc(&[]);
        assert!(r.is_empty());
        assert_eq!(a.get(r, 0), None);
        a.free(r);
        assert_eq!(a.stats().slab_steps, 0);
        assert_eq!(a.stats().live_ranges, 0);
    }

    #[test]
    fn steady_state_recycling_bounds_the_slab() {
        let mut a = StepArena::new();
        for round in 0..1_000u64 {
            let steps = [compute(round), Step::Block { token: round }, compute(1)];
            let r = a.alloc(&steps);
            assert_eq!(a.get(r, 1), Some(Step::Block { token: round }));
            a.free(r);
        }
        let s = a.stats();
        assert_eq!(s.slab_steps, 4, "one recycled range serves every round");
        assert_eq!(s.ranges_allocated, 1_000);
        assert_eq!(s.ranges_reused, 999);
        assert!(s.reuse_rate() > 0.99);
    }

    #[test]
    fn inline_variants_match_trait_programs() {
        let arena = StepArena::new();
        let mut rng = SimRng::seed_from_u64(1);
        let mut once = Program::compute_once(SimDuration::from_micros(5));
        assert_eq!(once.next_step(&arena, &mut rng), compute(5));
        assert_eq!(once.next_step(&arena, &mut rng), Step::Exit);
        assert_eq!(once.next_step(&arena, &mut rng), Step::Exit);

        let progress = Arc::new(AtomicU64::new(0));
        let mut lp = Program::compute_loop(SimDuration::from_micros(2), progress.clone());
        for _ in 0..3 {
            assert_eq!(lp.next_step(&arena, &mut rng), compute(2));
        }
        assert_eq!(progress.load(Ordering::Relaxed), 3);
    }
}
