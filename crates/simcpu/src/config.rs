//! Machine configuration.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Static parameters of a simulated machine.
///
/// Defaults model the paper's production servers: two Xeon E5-2673 v3
/// sockets, 48 logical cores total, Windows-Server-class long scheduling
/// quanta, and microsecond-scale kernel overheads.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of logical cores (at most 64).
    pub cores: u32,
    /// Scheduler quantum: how long a thread may hold a core while others
    /// wait at the same priority.
    pub quantum: SimDuration,
    /// Cost of dispatching a ready thread onto an idle core.
    pub dispatch_cost: SimDuration,
    /// Cost of an involuntary context switch (quantum-expiry preemption).
    pub ctx_switch_cost: SimDuration,
    /// Cost of preempting a thread via resched IPI (affinity revocation,
    /// quota exhaustion).
    pub ipi_cost: SimDuration,
    /// Per-wake interrupt cost charged when an I/O completion wakes a thread.
    pub io_interrupt_cost: SimDuration,
    /// Machine memory in bytes (for the memory watchdog experiments).
    pub memory_bytes: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 48,
            // Windows Server grants long quanta (12 clock ticks ≈ 187 ms),
            // softened in practice by priority boosts and decay. The
            // effective hold-a-core-against-waiters granularity is
            // calibrated so an unrestricted 48-thread CPU bully reproduces
            // the paper's ~29× p99 collapse with its 11–32 % timeout band,
            // while a 24-thread bully only adds a few milliseconds (Fig 4).
            quantum: SimDuration::from_millis(40),
            dispatch_cost: SimDuration::from_micros(2),
            ctx_switch_cost: SimDuration::from_micros(5),
            ipi_cost: SimDuration::from_micros(3),
            io_interrupt_cost: SimDuration::from_micros(4),
            memory_bytes: 128 * (1 << 30),
        }
    }
}

impl MachineConfig {
    /// The paper's production machine: 48 logical cores, 128 GB.
    pub fn paper_server() -> Self {
        MachineConfig::default()
    }

    /// A small machine for unit tests.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or above 64.
    pub fn small(cores: u32) -> Self {
        assert!(
            (1..=64).contains(&cores),
            "cores must be in 1..=64: {cores}"
        );
        MachineConfig {
            cores,
            ..MachineConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 || self.cores > 64 {
            return Err(format!("cores must be in 1..=64, got {}", self.cores));
        }
        if self.quantum.is_zero() {
            return Err("quantum must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_hardware() {
        let c = MachineConfig::paper_server();
        assert_eq!(c.cores, 48);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_machines() {
        assert_eq!(MachineConfig::small(4).cores, 4);
    }

    #[test]
    #[should_panic(expected = "cores must be in 1..=64")]
    fn zero_cores_rejected() {
        let _ = MachineConfig::small(0);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = MachineConfig {
            cores: 65,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = MachineConfig::default();
        c.quantum = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }
}
