//! Behavioural tests for the machine scheduler.
//!
//! These pin the exact semantics PerfIso's CPU blind isolation relies on:
//! immediate dispatch onto idle cores, FIFO waiting when none are allowed,
//! resched-IPI preemption on affinity revocation, duty-cycle quota
//! throttling, and exact CPU-time accounting.

use simcore::{SimDuration, SimTime};
use simcpu::programs::{ComputeLoop, ComputeOnce, Script};
use simcpu::{CoreId, CoreMask, CpuRateQuota, Machine, MachineConfig, MachineOutput, Step};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use telemetry::TenantClass;

fn ms(x: u64) -> SimDuration {
    SimDuration::from_millis(x)
}

fn us(x: u64) -> SimDuration {
    SimDuration::from_micros(x)
}

fn zero_cost_config(cores: u32) -> MachineConfig {
    MachineConfig {
        cores,
        quantum: ms(20),
        dispatch_cost: SimDuration::ZERO,
        ctx_switch_cost: SimDuration::ZERO,
        ipi_cost: SimDuration::ZERO,
        io_interrupt_cost: SimDuration::ZERO,
        memory_bytes: 1 << 30,
    }
}

#[test]
fn single_thread_computes_and_exits() {
    let mut m = Machine::new(zero_cost_config(2));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(2));
    let tid = m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(5))), 1);
    assert_eq!(
        m.idle_core_mask().count(),
        1,
        "one core busy right after spawn"
    );
    m.advance_to(SimTime::from_millis(10));
    let out = m.drain_outputs();
    assert!(matches!(
        out.as_slice(),
        [MachineOutput::ThreadExited {
            tag: 1,
            killed: false,
            ..
        }]
    ));
    assert_eq!(m.idle_core_mask().count(), 2);
    assert_eq!(m.job_cpu_time(job), ms(5));
    let _ = tid;
}

#[test]
fn threads_fill_idle_cores_first() {
    let mut m = Machine::new(zero_cost_config(4));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(4));
    for i in 0..4 {
        m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(1))), i);
    }
    assert_eq!(m.idle_core_mask().count(), 0);
    m.advance_to(SimTime::from_millis(2));
    assert_eq!(m.drain_outputs().len(), 4);
    assert_eq!(m.idle_core_mask().count(), 4);
}

#[test]
fn excess_threads_wait_fifo() {
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(1));
    // Three 1ms jobs on one core: they must serialize in spawn order.
    for i in 0..3 {
        m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(1))), i);
    }
    m.advance_to(SimTime::from_millis(10));
    let exits: Vec<u64> = m
        .drain_outputs()
        .iter()
        .filter_map(|o| match o {
            MachineOutput::ThreadExited { tag, .. } => Some(*tag),
            _ => None,
        })
        .collect();
    assert_eq!(exits, vec![0, 1, 2]);
    // Total busy time 3ms on 1 core.
    assert_eq!(m.job_cpu_time(job), ms(3));
}

#[test]
fn no_preemption_on_wake_same_priority() {
    // A long-running thread holds the only core; a newly spawned thread
    // must wait for the quantum to expire, not preempt.
    let mut cfg = zero_cost_config(1);
    cfg.quantum = ms(20);
    let mut m = Machine::new(cfg);
    let job = m.create_job(TenantClass::Secondary, CoreMask::all(1));
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(100))), 0);
    // At t=1ms a second thread arrives.
    let pjob = m.create_job(TenantClass::Primary, CoreMask::all(1));
    m.spawn_thread(
        SimTime::from_millis(1),
        pjob,
        Box::new(ComputeOnce::new(ms(1))),
        1,
    );
    // It cannot run before the bully's quantum expires at t=20ms.
    m.advance_to(SimTime::from_millis(19));
    assert!(m.drain_outputs().is_empty(), "primary must still be queued");
    m.advance_to(SimTime::from_millis(25));
    let out = m.drain_outputs();
    assert!(
        out.iter()
            .any(|o| matches!(o, MachineOutput::ThreadExited { tag: 1, .. })),
        "primary runs after quantum expiry"
    );
}

#[test]
fn wake_boost_jumps_the_queue() {
    // One core held by a bully, with a primary spawn already queued. A
    // primary thread that wakes from I/O afterwards must still run FIRST at
    // the next quantum expiry: the wake boost puts it at the queue front.
    let mut cfg = zero_cost_config(1);
    cfg.quantum = ms(20);
    let mut m = Machine::new(cfg);
    let sec = m.create_job(TenantClass::Secondary, CoreMask::all(1));
    let pri = m.create_job(TenantClass::Primary, CoreMask::all(1));
    let tid = m.spawn_thread(
        SimTime::ZERO,
        pri,
        Box::new(Script::new(vec![
            Step::Compute(ms(1)),
            Step::Block { token: 1 },
            Step::Compute(ms(1)),
        ])),
        7,
    );
    m.advance_to(SimTime::from_millis(1));
    assert!(matches!(
        m.drain_outputs().as_slice(),
        [MachineOutput::ThreadBlocked { .. }]
    ));
    // The bully takes the core while the primary thread is blocked.
    m.spawn_thread(
        SimTime::from_millis(1),
        sec,
        Box::new(ComputeOnce::new(ms(100))),
        0,
    );
    assert_eq!(m.idle_core_mask().count(), 0);
    // A fresh primary spawn queues at the back...
    m.spawn_thread(
        SimTime::from_millis(2),
        pri,
        Box::new(ComputeOnce::new(ms(1))),
        8,
    );
    // ...then the blocked thread wakes and queues at the front.
    assert!(m.wake(SimTime::from_millis(3), tid));
    // No preemption: nothing primary runs before the quantum expires.
    m.advance_to(SimTime::from_millis(20));
    assert!(
        m.drain_outputs().is_empty(),
        "boost must not preempt the running bully"
    );
    // Quantum expiry at t=21ms: the woken thread (front) runs before the
    // earlier spawn.
    m.advance_to(SimTime::from_millis(22));
    let first: Vec<u64> = m
        .drain_outputs()
        .iter()
        .filter_map(|o| match o {
            MachineOutput::ThreadExited { tag, .. } => Some(*tag),
            _ => None,
        })
        .collect();
    assert_eq!(
        first,
        vec![7],
        "woken thread finishes before the queued spawn"
    );
}

#[test]
fn spawns_queue_fifo_behind_bully_until_quantum_expiry() {
    // The degradation mechanism of Fig 4: fresh fan-out spawns find every
    // core bully-held and wait a full quantum for the first slot.
    let mut cfg = zero_cost_config(2);
    cfg.quantum = ms(40);
    let mut m = Machine::new(cfg);
    let sec = m.create_job(TenantClass::Secondary, CoreMask::all(2));
    let pri = m.create_job(TenantClass::Primary, CoreMask::all(2));
    for i in 0..2 {
        m.spawn_thread(SimTime::ZERO, sec, Box::new(ComputeOnce::new(ms(500))), i);
    }
    m.spawn_thread(
        SimTime::from_millis(5),
        pri,
        Box::new(ComputeOnce::new(ms(1))),
        10,
    );
    // Nothing until the first quantum expires at t=40ms.
    m.advance_to(SimTime::from_millis(39));
    assert!(m.drain_outputs().is_empty());
    m.advance_to(SimTime::from_millis(45));
    assert!(m
        .drain_outputs()
        .iter()
        .any(|o| matches!(o, MachineOutput::ThreadExited { tag: 10, .. })));
}

#[test]
fn wake_boost_prefers_idle_core() {
    // With an idle core available the boost must not preempt anyone.
    let mut m = Machine::new(zero_cost_config(2));
    let sec = m.create_job(TenantClass::Secondary, CoreMask::all(2));
    let pri = m.create_job(TenantClass::Primary, CoreMask::all(2));
    let tid = m.spawn_thread(
        SimTime::ZERO,
        pri,
        Box::new(Script::new(vec![
            Step::Compute(ms(1)),
            Step::Block { token: 1 },
            Step::Compute(ms(1)),
        ])),
        7,
    );
    m.advance_to(SimTime::from_millis(1));
    m.drain_outputs();
    m.spawn_thread(
        SimTime::from_millis(1),
        sec,
        Box::new(ComputeOnce::new(ms(50))),
        0,
    );
    let ipis_before = m.stats().ipis;
    assert!(m.wake(SimTime::from_millis(2), tid));
    assert_eq!(
        m.idle_core_mask().count(),
        0,
        "woken thread took the idle core"
    );
    assert_eq!(m.stats().ipis, ipis_before, "no preemption needed");
    m.advance_to(SimTime::from_millis(5));
    assert!(m
        .drain_outputs()
        .iter()
        .any(|o| matches!(o, MachineOutput::ThreadExited { tag: 7, .. })));
}

#[test]
fn round_robin_shares_the_core() {
    let mut cfg = zero_cost_config(1);
    cfg.quantum = ms(10);
    let mut m = Machine::new(cfg);
    let job = m.create_job(TenantClass::Primary, CoreMask::all(1));
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(30))), 0);
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(30))), 1);
    m.advance_to(SimTime::from_millis(70));
    let exits: Vec<u64> = m
        .drain_outputs()
        .iter()
        .filter_map(|o| match o {
            MachineOutput::ThreadExited { tag, .. } => Some(*tag),
            _ => None,
        })
        .collect();
    assert_eq!(exits.len(), 2);
    // Thread 0 finishes its last 10ms chunk at t=50, thread 1 at t=60.
    assert_eq!(exits, vec![0, 1]);
    assert_eq!(m.job_cpu_time(job), ms(60));
}

#[test]
fn affinity_restricts_dispatch() {
    let mut m = Machine::new(zero_cost_config(4));
    let job = m.create_job(TenantClass::Secondary, CoreMask::range(0, 2));
    for i in 0..4 {
        m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(1))), i);
    }
    // Only cores 0 and 1 may be used.
    let idle = m.idle_core_mask();
    assert!(idle.contains(CoreId(2)) && idle.contains(CoreId(3)));
    m.advance_to(SimTime::from_millis(5));
    assert_eq!(m.drain_outputs().len(), 4);
    // 4 x 1ms on 2 cores takes 2ms, not 1ms.
    let b = m.breakdown();
    assert_eq!(b.secondary, ms(4));
}

#[test]
fn affinity_revocation_preempts_immediately() {
    let mut m = Machine::new(zero_cost_config(2));
    let job = m.create_job(TenantClass::Secondary, CoreMask::all(2));
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(100))), 0);
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(100))), 1);
    assert_eq!(m.idle_core_mask().count(), 0);
    // Revoke core 1 at t=5ms: the thread there must stop instantly.
    m.set_job_affinity(SimTime::from_millis(5), job, CoreMask::range(0, 1));
    assert_eq!(m.idle_core_mask().count(), 1);
    assert!(m.idle_core_mask().contains(CoreId(1)));
    let stats = m.stats();
    assert!(stats.ipis >= 1, "preemption must be an IPI");
    // The preempted thread continues on core 0 round-robin; both finish.
    m.advance_to(SimTime::from_secs(1));
    assert_eq!(m.drain_outputs().len(), 2);
}

#[test]
fn widening_affinity_dispatches_queued_threads() {
    let mut m = Machine::new(zero_cost_config(4));
    let job = m.create_job(TenantClass::Secondary, CoreMask::range(0, 1));
    for i in 0..3 {
        m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(50))), i);
    }
    assert_eq!(m.idle_core_mask().count(), 3);
    m.set_job_affinity(SimTime::from_millis(1), job, CoreMask::all(4));
    // The two queued threads should now be running.
    assert_eq!(m.idle_core_mask().count(), 1);
}

#[test]
fn per_thread_affinity_is_respected() {
    let mut m = Machine::new(zero_cost_config(2));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(2));
    let tid = m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(10))), 0);
    // Pin the running thread to core 1 only: it is on core 0, so it must move.
    assert!(m.set_thread_affinity(SimTime::from_millis(1), tid, CoreMask::single(CoreId(1))));
    m.advance_to(SimTime::from_millis(1));
    assert!(m.idle_core_mask().contains(CoreId(0)));
    assert!(!m.idle_core_mask().contains(CoreId(1)));
    m.advance_to(SimTime::from_millis(20));
    assert_eq!(m.drain_outputs().len(), 1);
}

#[test]
fn block_and_wake_roundtrip() {
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(1));
    let tid = m.spawn_thread(
        SimTime::ZERO,
        job,
        Box::new(Script::new(vec![
            Step::Compute(ms(1)),
            Step::Block { token: 42 },
            Step::Compute(ms(1)),
        ])),
        7,
    );
    m.advance_to(SimTime::from_millis(1));
    let out = m.drain_outputs();
    assert!(matches!(
        out.as_slice(),
        [MachineOutput::ThreadBlocked {
            token: 42,
            tag: 7,
            ..
        }]
    ));
    assert_eq!(
        m.idle_core_mask().count(),
        1,
        "blocked thread releases the core"
    );
    // Wake at t=3ms; the thread computes 1ms more and exits at 4ms.
    assert!(m.wake(SimTime::from_millis(3), tid));
    m.advance_to(SimTime::from_millis(10));
    let out = m.drain_outputs();
    assert!(matches!(
        out.as_slice(),
        [MachineOutput::ThreadExited { tag: 7, .. }]
    ));
    assert_eq!(m.job_cpu_time(job), ms(2));
}

#[test]
fn wake_on_stale_handle_is_noop() {
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(1));
    let tid = m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(1))), 0);
    m.advance_to(SimTime::from_millis(5));
    assert!(
        !m.wake(SimTime::from_millis(5), tid),
        "thread already exited"
    );
    assert!(!m.kill_thread(SimTime::from_millis(5), tid));
}

#[test]
fn sleep_releases_core_and_resumes() {
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(1));
    m.spawn_thread(
        SimTime::ZERO,
        job,
        Box::new(Script::new(vec![
            Step::Compute(ms(1)),
            Step::Sleep(ms(5)),
            Step::Compute(ms(1)),
        ])),
        0,
    );
    m.advance_to(SimTime::from_millis(3));
    assert_eq!(
        m.idle_core_mask().count(),
        1,
        "sleeping thread leaves the core"
    );
    m.advance_to(SimTime::from_millis(10));
    let out = m.drain_outputs();
    assert!(out
        .iter()
        .any(|o| matches!(o, MachineOutput::ThreadExited { .. })));
    assert_eq!(m.job_cpu_time(job), ms(2));
}

#[test]
fn kill_running_thread_frees_core() {
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Secondary, CoreMask::all(1));
    let tid = m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(100))), 0);
    assert!(m.kill_thread(SimTime::from_millis(10), tid));
    assert_eq!(m.idle_core_mask().count(), 1);
    let out = m.drain_outputs();
    assert!(matches!(
        out.as_slice(),
        [MachineOutput::ThreadExited { killed: true, .. }]
    ));
    // Only the 10ms before the kill are charged.
    assert_eq!(m.job_cpu_time(job), ms(10));
}

#[test]
fn kill_queued_thread_never_runs() {
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(1));
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(10))), 0);
    let queued = m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(10))), 1);
    assert!(m.kill_thread(SimTime::from_millis(1), queued));
    m.advance_to(SimTime::from_millis(30));
    let exits: Vec<(u64, bool)> = m
        .drain_outputs()
        .iter()
        .filter_map(|o| match o {
            MachineOutput::ThreadExited { tag, killed, .. } => Some((*tag, *killed)),
            _ => None,
        })
        .collect();
    assert!(exits.contains(&(1, true)));
    assert!(exits.contains(&(0, false)));
    assert_eq!(
        m.job_cpu_time(job),
        ms(10),
        "killed thread consumed nothing"
    );
}

#[test]
fn quota_throttles_whole_job_mid_period() {
    // One core, 10% quota over 100ms: the job may run 10ms per period.
    let mut m = Machine::new(zero_cost_config(1));
    let job = m.create_job(TenantClass::Secondary, CoreMask::all(1));
    let progress = Arc::new(AtomicU64::new(0));
    m.spawn_thread(
        SimTime::ZERO,
        job,
        Box::new(ComputeLoop::new(ms(1), progress)),
        0,
    );
    m.set_job_quota(SimTime::ZERO, job, Some(CpuRateQuota::percent(10.0)));
    m.advance_to(SimTime::from_millis(99));
    // 10ms of the first period were usable.
    assert_eq!(m.job_cpu_time(job), ms(10));
    assert_eq!(m.idle_core_mask().count(), 1, "job throttled, core idle");
    // After the refill at t=100ms the job runs again.
    m.advance_to(SimTime::from_millis(115));
    assert_eq!(m.job_cpu_time(job), ms(20));
}

#[test]
fn quota_budget_scales_with_parallelism() {
    // 4 cores, 50% quota: 200ms core-time per 100ms period; 4 threads burn
    // it in 50ms wall time.
    let mut m = Machine::new(zero_cost_config(4));
    let job = m.create_job(TenantClass::Secondary, CoreMask::all(4));
    for i in 0..4 {
        let progress = Arc::new(AtomicU64::new(0));
        m.spawn_thread(
            SimTime::ZERO,
            job,
            Box::new(ComputeLoop::new(ms(1), progress)),
            i,
        );
    }
    m.set_job_quota(SimTime::ZERO, job, Some(CpuRateQuota::percent(50.0)));
    m.advance_to(SimTime::from_millis(60));
    assert_eq!(m.idle_core_mask().count(), 4, "all throttled by 50ms");
    assert_eq!(m.job_cpu_time(job), ms(200));
    m.advance_to(SimTime::from_millis(160));
    assert_eq!(m.job_cpu_time(job), ms(400));
}

#[test]
fn quota_with_indivisible_budget_makes_progress() {
    // Regression: a budget that does not divide evenly by the running
    // thread count used to leave a sub-nanosecond-per-thread remainder;
    // the exhaustion projection then truncated to `now` and the timer
    // re-fired forever, livelocking the simulation.
    let mut m = Machine::new(zero_cost_config(2));
    let job = m.create_job(TenantClass::Secondary, CoreMask::all(2));
    for i in 0..2 {
        let progress = Arc::new(AtomicU64::new(0));
        m.spawn_thread(
            SimTime::ZERO,
            job,
            Box::new(ComputeLoop::new(ms(1), progress)),
            i,
        );
    }
    // Budget per 100ms period: 100ms * (1/3) * 2 cores = 66,666,667 ns,
    // which is odd, so two parallel threads always strand a remainder.
    let quota = CpuRateQuota::new(1.0 / 3.0, ms(100));
    m.set_job_quota(SimTime::ZERO, job, Some(quota));
    m.advance_to(SimTime::from_millis(350));
    // Two threads burn each period's budget in its first ~33ms, so by
    // t=350ms all four periods' budgets are fully consumed. The job must
    // have been throttled and refilled repeatedly without hanging.
    let got = m.job_cpu_time(job).as_nanos() as f64;
    let expect = 66_666_667.0 * 4.0;
    assert!(
        (got - expect).abs() / expect < 0.05,
        "expected ~{expect}ns of throttled progress, got {got}ns"
    );
}

#[test]
fn quota_leaves_other_jobs_unaffected() {
    let mut m = Machine::new(zero_cost_config(2));
    let sec = m.create_job(TenantClass::Secondary, CoreMask::all(2));
    let pri = m.create_job(TenantClass::Primary, CoreMask::all(2));
    let progress = Arc::new(AtomicU64::new(0));
    m.spawn_thread(
        SimTime::ZERO,
        sec,
        Box::new(ComputeLoop::new(ms(1), progress)),
        0,
    );
    m.set_job_quota(SimTime::ZERO, sec, Some(CpuRateQuota::percent(5.0)));
    m.spawn_thread(SimTime::ZERO, pri, Box::new(ComputeOnce::new(ms(80))), 1);
    m.advance_to(SimTime::from_millis(100));
    assert!(m
        .drain_outputs()
        .iter()
        .any(|o| matches!(o, MachineOutput::ThreadExited { tag: 1, .. })));
    assert_eq!(m.job_cpu_time(pri), ms(80));
    // Secondary got 5% * 2 cores * 100ms = 10ms.
    assert_eq!(m.job_cpu_time(sec), ms(10));
}

#[test]
fn accounting_partitions_capacity() {
    let mut cfg = zero_cost_config(4);
    cfg.dispatch_cost = us(2);
    cfg.ctx_switch_cost = us(5);
    let mut m = Machine::with_seed(cfg, 1);
    let pri = m.create_job(TenantClass::Primary, CoreMask::all(4));
    let sec = m.create_job(TenantClass::Secondary, CoreMask::all(4));
    for i in 0..3 {
        m.spawn_thread(SimTime::ZERO, pri, Box::new(ComputeOnce::new(ms(7))), i);
    }
    for i in 0..5 {
        let progress = Arc::new(AtomicU64::new(0));
        m.spawn_thread(
            SimTime::from_millis(1),
            sec,
            Box::new(ComputeLoop::new(ms(3), progress)),
            100 + i,
        );
    }
    let horizon = SimTime::from_millis(200);
    m.advance_to(horizon);
    let b = m.breakdown();
    let capacity = SimDuration::from_nanos(horizon.as_nanos() * 4);
    let total = b.total();
    assert_eq!(
        total, capacity,
        "accounting must partition capacity exactly: {total} vs {capacity}"
    );
    assert!(b.os > SimDuration::ZERO, "overhead must be visible");
}

#[test]
fn idle_mask_matches_breakdown_under_load() {
    let mut m = Machine::new(zero_cost_config(8));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(8));
    for i in 0..5 {
        m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(10))), i);
    }
    m.advance_to(SimTime::from_millis(5));
    assert_eq!(m.idle_core_mask().count(), 3);
    m.advance_to(SimTime::from_millis(20));
    assert_eq!(m.idle_core_mask().count(), 8);
    let b = m.breakdown();
    assert_eq!(b.primary, ms(50));
}

#[test]
fn outputs_preserve_order() {
    let mut m = Machine::new(zero_cost_config(2));
    let job = m.create_job(TenantClass::Primary, CoreMask::all(2));
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(1))), 0);
    m.spawn_thread(SimTime::ZERO, job, Box::new(ComputeOnce::new(ms(2))), 1);
    m.advance_to(SimTime::from_millis(5));
    let tags: Vec<u64> = m
        .drain_outputs()
        .iter()
        .filter_map(|o| match o {
            MachineOutput::ThreadExited { tag, .. } => Some(*tag),
            _ => None,
        })
        .collect();
    assert_eq!(tags, vec![0, 1]);
}

#[test]
fn time_cannot_go_backwards() {
    let mut m = Machine::new(zero_cost_config(1));
    m.advance_to(SimTime::from_millis(10));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.advance_to(SimTime::from_millis(5));
    }));
    assert!(r.is_err());
}
