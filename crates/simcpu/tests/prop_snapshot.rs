//! Property tests for `Machine` checkpoint/rollback: snapshot → mutate →
//! restore must leave the machine observationally identical to one that
//! was never mutated — same exits, same breakdown, same scheduler
//! counters, same arena recycling, same RNG stream.
//!
//! This is the box-level half of the guarantee speculative cluster sync
//! relies on (the queue/RNG half lives in `simcore/tests/prop_snapshot.rs`).

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simcpu::programs::Script;
use simcpu::{Machine, MachineConfig, MachineOutput, Step};
use telemetry::TenantClass;

#[derive(Debug, Clone)]
struct SpawnPlan {
    at_us: u64,
    steps: Vec<Step>,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..3_000).prop_map(|us| Step::Compute(SimDuration::from_micros(us))),
        (1u64..1_500).prop_map(|us| Step::Sleep(SimDuration::from_micros(us))),
    ]
}

fn plan_strategy(horizon_us: u64) -> impl Strategy<Value = SpawnPlan> {
    (
        0u64..horizon_us,
        proptest::collection::vec(step_strategy(), 1..5),
    )
        .prop_map(|(at_us, steps)| SpawnPlan { at_us, steps })
}

fn machine(cores: u32) -> Machine {
    let cfg = MachineConfig {
        cores,
        quantum: SimDuration::from_millis(5),
        dispatch_cost: SimDuration::from_micros(1),
        ctx_switch_cost: SimDuration::from_micros(2),
        ipi_cost: SimDuration::from_micros(1),
        io_interrupt_cost: SimDuration::from_micros(1),
        memory_bytes: 1 << 30,
    };
    Machine::with_seed(cfg, 42)
}

/// Comparable trace entry for one drained output.
fn flatten(outputs: Vec<MachineOutput>) -> Vec<(u8, u64, u64)> {
    outputs
        .into_iter()
        .map(|o| match o {
            MachineOutput::ThreadBlocked { tag, token, .. } => (0u8, tag, token),
            MachineOutput::ThreadExited { tag, killed, .. } => (1u8, tag, killed as u64),
        })
        .collect()
}

/// Spawns `plans` (sorted by time) into `m`, advancing as it goes, then
/// advances to `end`; returns the comparable observable trace.
fn run_plans(
    m: &mut Machine,
    job: simcore::JobId,
    plans: &[SpawnPlan],
    end: SimTime,
    tag0: u64,
) -> Vec<(u8, u64, u64)> {
    for (tag, p) in (tag0..).zip(plans.iter()) {
        m.spawn_thread(
            SimTime::from_micros(p.at_us).max(m.now()),
            job,
            Box::new(Script::new(p.steps.clone())),
            tag,
        );
    }
    m.advance_to(end);
    flatten(m.drain_outputs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// snapshot → arbitrary extra work → restore ≡ never mutated: the
    /// restored machine replays the identical exit trace, breakdown,
    /// stats, and arena counters as a control machine that stopped at the
    /// snapshot point, including for work spawned *after* the restore.
    #[test]
    fn prop_machine_restore_equals_never_mutated(
        prefix in proptest::collection::vec(plan_strategy(30_000), 1..12),
        noise in proptest::collection::vec(plan_strategy(60_000), 1..12),
        suffix in proptest::collection::vec(plan_strategy(90_000), 0..12),
        cores in 1u32..5,
    ) {
        let mut sorted_prefix = prefix;
        sorted_prefix.sort_by_key(|p| p.at_us);
        let mut sorted_noise = noise;
        sorted_noise.sort_by_key(|p| p.at_us);
        let mut sorted_suffix = suffix;
        sorted_suffix.sort_by_key(|p| p.at_us);

        let mut live = machine(cores);
        let mut control = machine(cores);
        let job_l = live.create_job(TenantClass::Primary, simcore::CoreMask::all(cores));
        let job_c = control.create_job(TenantClass::Primary, simcore::CoreMask::all(cores));

        let mid = SimTime::from_micros(35_000);
        let a = run_plans(&mut live, job_l, &sorted_prefix, mid, 0);
        let b = run_plans(&mut control, job_c, &sorted_prefix, mid, 0);
        prop_assert_eq!(a, b, "identical builds diverged before the snapshot");

        let snap = live.snapshot().expect("scripts are clonable");

        // Speculate: extra spawns and a long advance, then roll back.
        let _ = run_plans(&mut live, job_l, &sorted_noise, SimTime::from_micros(70_000), 500);
        live.restore(&snap);
        prop_assert_eq!(live.now(), control.now());

        // Post-restore behaviour must match the control exactly.
        let end = SimTime::from_micros(120_000);
        let x = run_plans(&mut live, job_l, &sorted_suffix, end, 1000);
        let y = run_plans(&mut control, job_c, &sorted_suffix, end, 1000);
        prop_assert_eq!(x, y, "post-restore trace diverged");
        prop_assert_eq!(live.breakdown(), control.breakdown());
        prop_assert_eq!(live.stats(), control.stats());
        prop_assert_eq!(live.live_thread_count(), control.live_thread_count());
        prop_assert_eq!(live.arena_stats(), control.arena_stats());
        prop_assert_eq!(live.idle_core_mask().0, control.idle_core_mask().0);
    }

    /// One snapshot restores correctly any number of times (rollback
    /// loops re-restore the same checkpoint).
    #[test]
    fn prop_machine_state_is_reusable(
        prefix in proptest::collection::vec(plan_strategy(20_000), 1..10),
        cores in 1u32..4,
    ) {
        let mut sorted = prefix;
        sorted.sort_by_key(|p| p.at_us);
        let mut m = machine(cores);
        let job = m.create_job(TenantClass::Primary, simcore::CoreMask::all(cores));
        run_plans(&mut m, job, &sorted, SimTime::from_micros(25_000), 0);
        let snap = m.snapshot().expect("scripts are clonable");

        let end = SimTime::from_secs(1);
        m.advance_to(end);
        let first = (flatten(m.drain_outputs()), m.breakdown(), m.stats());
        for _ in 0..3 {
            m.restore(&snap);
            m.advance_to(end);
            let again = (flatten(m.drain_outputs()), m.breakdown(), m.stats());
            prop_assert_eq!(&again, &first);
        }
    }
}
