//! Property-based stress tests: random workloads must preserve the
//! scheduler's global invariants.

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simcpu::programs::Script;
use simcpu::{CoreMask, CpuRateQuota, Machine, MachineConfig, MachineOutput, Step};
use telemetry::TenantClass;

#[derive(Debug, Clone)]
struct SpawnPlan {
    at_us: u64,
    job: usize,
    steps: Vec<Step>,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..5_000).prop_map(|us| Step::Compute(SimDuration::from_micros(us))),
        (1u64..2_000).prop_map(|us| Step::Sleep(SimDuration::from_micros(us))),
    ]
}

fn plan_strategy() -> impl Strategy<Value = SpawnPlan> {
    (
        0u64..50_000,
        0usize..3,
        proptest::collection::vec(step_strategy(), 1..6),
    )
        .prop_map(|(at_us, job, steps)| SpawnPlan { at_us, job, steps })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every spawned thread eventually exits; accounting partitions
    /// capacity exactly; no core ever runs a thread outside its job mask.
    #[test]
    fn prop_scheduler_invariants(
        plans in proptest::collection::vec(plan_strategy(), 1..25),
        cores in 1u32..8,
        quota_pct in proptest::option::of(5u32..95),
        mask_bits in 1u64..255,
    ) {
        let cfg = MachineConfig {
            cores,
            quantum: SimDuration::from_millis(5),
            dispatch_cost: SimDuration::from_micros(1),
            ctx_switch_cost: SimDuration::from_micros(2),
            ipi_cost: SimDuration::from_micros(1),
            io_interrupt_cost: SimDuration::from_micros(1),
            memory_bytes: 1 << 30,
        };
        let mut m = Machine::with_seed(cfg, 42);
        let all = CoreMask::all(cores);
        let restricted = CoreMask(mask_bits).intersection(all);
        let restricted = if restricted.is_empty() { all } else { restricted };
        let jobs = [
            m.create_job(TenantClass::Primary, all),
            m.create_job(TenantClass::Secondary, restricted),
            m.create_job(TenantClass::Secondary, all),
        ];
        if let Some(pct) = quota_pct {
            m.set_job_quota(SimTime::ZERO, jobs[2], Some(CpuRateQuota::percent(pct as f64)));
        }

        let mut sorted = plans.clone();
        sorted.sort_by_key(|p| p.at_us);
        let mut spawned = 0u64;
        for p in &sorted {
            m.spawn_thread(
                SimTime::from_micros(p.at_us),
                jobs[p.job],
                Box::new(Script::new(p.steps.clone())),
                spawned,
            );
            spawned += 1;
        }

        // Long horizon: everything must finish (no Block steps used).
        let horizon = SimTime::from_secs(20);
        m.advance_to(horizon);
        let exits = m
            .drain_outputs()
            .iter()
            .filter(|o| matches!(o, MachineOutput::ThreadExited { .. }))
            .count() as u64;
        prop_assert_eq!(exits, spawned, "all threads must exit");
        prop_assert_eq!(m.live_thread_count(), 0);

        // Accounting partitions capacity exactly.
        let b = m.breakdown();
        let capacity = SimDuration::from_nanos(horizon.as_nanos() * cores as u64);
        prop_assert_eq!(b.total(), capacity);

        // All cores idle at the end.
        prop_assert_eq!(m.idle_core_mask().count(), cores);
    }
}
