//! Property-based tests for the arena-backed spawn path.
//!
//! Two contracts are locked down:
//!
//! 1. **Equivalence** — a thread spawned through `spawn_scripted` (arena
//!    range) behaves bit-for-bit like the same steps spawned as a boxed
//!    `Script` program: identical machine outputs at identical times.
//! 2. **No leaks, no aliasing** — arbitrary spawn/exit/kill interleavings
//!    recycle every range: the arena's live count tracks live scripted
//!    threads exactly, and over a long churn the slab high-water stays
//!    bounded by the peak concurrency, not the total spawn count.

use proptest::prelude::*;
use simcore::{SimDuration, SimTime};
use simcpu::programs::Script;
use simcpu::{CoreMask, Machine, MachineConfig, MachineOutput, Step};
use telemetry::TenantClass;

fn small_machine(cores: u32) -> Machine {
    Machine::with_seed(MachineConfig::small(cores), 7)
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u64..3_000).prop_map(|us| Step::Compute(SimDuration::from_micros(us))),
        (0u64..8).prop_map(|t| Step::Block { token: t }),
        (1u64..1_000).prop_map(|us| Step::Sleep(SimDuration::from_micros(us))),
    ]
}

/// Drives the machine to quiescence, waking every blocked thread
/// immediately, and returns the observable trace as `(time, kind, tag,
/// token)` tuples.
fn drive(m: &mut Machine, upto: SimTime) -> Vec<(u64, u8, u64, u64)> {
    let mut trace = Vec::new();
    loop {
        let now = m.now();
        let outs = m.drain_outputs();
        if !outs.is_empty() {
            for o in outs {
                match o {
                    MachineOutput::ThreadBlocked { tid, tag, token } => {
                        trace.push((now.as_nanos(), 0, tag, token));
                        m.wake(now, tid);
                    }
                    MachineOutput::ThreadExited { tag, killed, .. } => {
                        trace.push((now.as_nanos(), 1, tag, killed as u64));
                    }
                }
            }
            continue;
        }
        match m.next_timer_at().filter(|&t| t <= upto) {
            Some(t) => m.advance_to(t),
            None => {
                m.advance_to(upto);
                break;
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An arena-scripted thread replays the exact step sequence of the
    /// equivalent boxed `Script` program: the full machine-output traces
    /// (kinds, tags, tokens, and timestamps) must match.
    #[test]
    fn prop_scripted_matches_boxed_script(
        scripts in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 0..10), 1..8),
        cores in 1u32..5,
    ) {
        let mut boxed = small_machine(cores);
        let jb = boxed.create_job(TenantClass::Primary, CoreMask::all(cores));
        let mut arena = small_machine(cores);
        let ja = arena.create_job(TenantClass::Primary, CoreMask::all(cores));

        for (i, steps) in scripts.iter().enumerate() {
            // Stagger spawns so mid-run spawns hit busy machines too.
            let at = SimTime::from_micros(i as u64 * 500);
            boxed.spawn_thread(at, jb, Box::new(Script::new(steps.clone())), i as u64);
            let mut w = arena.spawn_scripted(at, ja, i as u64);
            for &s in steps {
                w.push(s);
            }
            w.finish();
        }

        let horizon = SimTime::from_secs(5);
        let tb = drive(&mut boxed, horizon);
        let ta = drive(&mut arena, horizon);
        prop_assert_eq!(tb, ta, "arena trace diverged from boxed Script trace");
        prop_assert_eq!(boxed.live_thread_count(), 0);
        prop_assert_eq!(arena.live_thread_count(), 0);

        // Every finished script returned its range.
        let s = arena.arena_stats();
        prop_assert_eq!(s.live_ranges, 0, "exited threads must free their ranges");
        prop_assert_eq!(
            s.ranges_allocated,
            scripts.iter().filter(|st| !st.is_empty()).count() as u64
        );
    }

    /// Spawn/exit/kill interleavings never leak or alias ranges: the live
    /// count always equals the number of live scripted threads, and the
    /// slab high-water over a long churn is bounded by peak concurrency
    /// (recycling), not by the total number of spawns.
    #[test]
    fn prop_churn_never_leaks_and_slab_stays_bounded(
        seed_steps in proptest::collection::vec(1u64..500, 1..6),
        kill_mask in proptest::collection::vec(any::<bool>(), 64..65),
        batch in 1usize..6,
    ) {
        let cores = 2;
        let mut m = small_machine(cores);
        let job = m.create_job(TenantClass::Primary, CoreMask::all(cores));
        let rounds = 64usize;
        let mut live_tids = Vec::new();
        for (round, &kill) in kill_mask.iter().enumerate().take(rounds) {
            let now = SimTime::from_micros(round as u64 * 2_000);
            for b in 0..batch {
                // Long sleeps keep the scripts alive until killed or the
                // next advance, forcing real concurrency in the arena.
                let mut w = m.spawn_scripted(now, job, (round * batch + b) as u64);
                for &us in &seed_steps {
                    w.compute(SimDuration::from_micros(us));
                    w.sleep(SimDuration::from_micros(400));
                }
                live_tids.push(w.finish());
            }
            if kill {
                for tid in live_tids.drain(..) {
                    m.kill_thread(now, tid);
                }
                prop_assert_eq!(
                    m.arena_stats().live_ranges,
                    m.live_thread_count() as u64,
                    "kill must recycle exactly the killed scripts' ranges"
                );
            }
        }
        // Let every surviving thread run to completion.
        m.advance_to(SimTime::from_secs(60));
        let s = m.arena_stats();
        prop_assert_eq!(m.live_thread_count(), 0);
        prop_assert_eq!(s.live_ranges, 0, "churn leaked arena ranges");
        prop_assert_eq!(s.ranges_allocated, (rounds * batch) as u64);

        // Bounded: the slab never needs more than the peak concurrent
        // footprint (power-of-two capacities), far below total spawns.
        let script_len = (seed_steps.len() * 2) as u64;
        let cap = script_len.next_power_of_two();
        prop_assert!(
            s.slab_steps <= s.peak_live_ranges * cap,
            "slab {} exceeds peak footprint {} x {}",
            s.slab_steps, s.peak_live_ranges, cap
        );
        // Every allocation past the concurrency peak was served by reuse:
        // fresh (slab-growing) allocations happen only when every prior
        // range of the class is live, so they can never exceed the peak.
        prop_assert!(s.ranges_reused + s.peak_live_ranges >= s.ranges_allocated);
    }
}
