//! Real-Linux backend for the PerfIso controller (feature `host`).
//!
//! The paper implements PerfIso as a Windows user-mode service on top of
//! Job Objects and the idle-core system call. On Linux the same controller
//! logic maps to:
//!
//! - **idle-core sensing** — sampling `/proc/stat` per-CPU counters; a core
//!   whose busy jiffies did not advance between two samples is idle. This is
//!   coarser than the Windows syscall (jiffy granularity), which is exactly
//!   the kind of OS-portability wrinkle the paper's black-box design
//!   tolerates: the controller only consumes a [`CoreMask`].
//! - **affinity actuation** — `sched_setaffinity(2)` on every PID of the
//!   secondary job (PIDs come from the Autopilot-style registry).
//! - **memory sensing** — `/proc/meminfo`.
//!
//! The [`HostSystem`] here implements the sensing half and per-PID affinity
//! actuation; cycle caps and I/O priorities would map to cgroup v2
//! `cpu.max` and `ioprio_set(2)` and are reported as unsupported no-ops so
//! the daemon degrades gracefully on locked-down hosts.

use std::collections::HashMap;

use simcore::{CoreId, CoreMask};

use crate::system::{IoLimit, IoTenant, IoTenantStats, SystemInterface};

/// One CPU's cumulative busy jiffies parsed from `/proc/stat`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuSample {
    /// CPU index.
    pub cpu: u32,
    /// Busy jiffies (user + nice + system + irq + softirq + steal).
    pub busy: u64,
    /// Idle jiffies (idle + iowait).
    pub idle: u64,
}

/// Parses `/proc/stat` content into per-CPU samples.
///
/// Unknown lines are skipped; the aggregate `cpu ` line is ignored.
pub fn parse_proc_stat(content: &str) -> Vec<CpuSample> {
    let mut out = Vec::new();
    for line in content.lines() {
        let Some(rest) = line.strip_prefix("cpu") else {
            continue;
        };
        // The aggregate "cpu " line has no index digit; skip it.
        if !rest.starts_with(|c: char| c.is_ascii_digit()) {
            continue;
        }
        let mut fields = rest.split_whitespace();
        let Some(first) = fields.next() else { continue };
        let Ok(cpu) = first.parse::<u32>() else {
            continue;
        };
        let vals: Vec<u64> = fields.filter_map(|f| f.parse().ok()).collect();
        if vals.len() < 7 {
            continue;
        }
        // user nice system idle iowait irq softirq [steal ...]
        let busy = vals[0] + vals[1] + vals[2] + vals[5] + vals[6] + vals.get(7).unwrap_or(&0);
        let idle = vals[3] + vals[4];
        out.push(CpuSample { cpu, busy, idle });
    }
    out
}

/// Derives the idle-core mask from two consecutive `/proc/stat` samples: a
/// core is idle if its busy counter did not advance.
pub fn idle_mask_from_samples(prev: &[CpuSample], curr: &[CpuSample]) -> CoreMask {
    let prev_map: HashMap<u32, u64> = prev.iter().map(|s| (s.cpu, s.busy)).collect();
    let mut mask = CoreMask::EMPTY;
    for s in curr {
        if s.cpu >= 64 {
            continue;
        }
        match prev_map.get(&s.cpu) {
            Some(&b) if s.busy == b => mask = mask.with(CoreId(s.cpu as u16)),
            None => {}
            _ => {}
        }
    }
    mask
}

/// Parses `MemTotal`/`MemAvailable` (bytes) from `/proc/meminfo` content.
pub fn parse_meminfo(content: &str) -> Option<(u64, u64)> {
    let mut total = None;
    let mut available = None;
    for line in content.lines() {
        let mut it = line.split_whitespace();
        match it.next()? {
            "MemTotal:" => total = it.next()?.parse::<u64>().ok().map(|kb| kb * 1024),
            "MemAvailable:" => available = it.next()?.parse::<u64>().ok().map(|kb| kb * 1024),
            _ => {}
        }
        if total.is_some() && available.is_some() {
            break;
        }
    }
    Some((total?, available?))
}

/// Sets the CPU affinity of one process via `sched_setaffinity(2)`.
///
/// # Errors
///
/// Returns the OS error on failure (e.g. permission, dead PID).
#[cfg(target_os = "linux")]
pub fn set_pid_affinity(pid: i32, mask: CoreMask) -> std::io::Result<()> {
    // SAFETY: cpu_set_t is a plain bitset; zeroed is a valid empty set.
    let mut set: libc::cpu_set_t = unsafe { std::mem::zeroed() };
    for core in mask.iter() {
        // SAFETY: CPU_SET writes within the fixed-size set for ids < CPU_SETSIZE.
        unsafe { libc::CPU_SET(core.0 as usize, &mut set) };
    }
    // SAFETY: set is a valid cpu_set_t and the size argument matches.
    let rc = unsafe { libc::sched_setaffinity(pid, std::mem::size_of::<libc::cpu_set_t>(), &set) };
    if rc == 0 {
        Ok(())
    } else {
        Err(std::io::Error::last_os_error())
    }
}

/// Reads the CPU affinity of one process via `sched_getaffinity(2)`.
///
/// # Errors
///
/// Returns the OS error on failure.
#[cfg(target_os = "linux")]
pub fn get_pid_affinity(pid: i32) -> std::io::Result<CoreMask> {
    // SAFETY: zeroed cpu_set_t is a valid out-parameter.
    let mut set: libc::cpu_set_t = unsafe { std::mem::zeroed() };
    // SAFETY: set is valid and the size matches.
    let rc =
        unsafe { libc::sched_getaffinity(pid, std::mem::size_of::<libc::cpu_set_t>(), &mut set) };
    if rc != 0 {
        return Err(std::io::Error::last_os_error());
    }
    let mut mask = CoreMask::EMPTY;
    for i in 0..64u16 {
        // SAFETY: CPU_ISSET reads within the fixed-size set.
        if unsafe { libc::CPU_ISSET(i as usize, &set) } {
            mask = mask.with(CoreId(i));
        }
    }
    Ok(mask)
}

/// A [`SystemInterface`] over a live Linux host.
///
/// Secondary PIDs are supplied by the caller (in production: the Autopilot
/// registry). Idle-core sensing samples `/proc/stat` on each call.
#[cfg(target_os = "linux")]
pub struct HostSystem {
    cores: u32,
    secondary_pids: Vec<i32>,
    last_sample: Vec<CpuSample>,
    applied_affinity: CoreMask,
}

#[cfg(target_os = "linux")]
impl HostSystem {
    /// Creates a host backend managing the given secondary PIDs.
    ///
    /// # Errors
    ///
    /// Fails if `/proc/stat` is unreadable.
    pub fn new(secondary_pids: Vec<i32>) -> std::io::Result<Self> {
        let stat = std::fs::read_to_string("/proc/stat")?;
        let sample = parse_proc_stat(&stat);
        let cores = (sample.len() as u32).clamp(1, 64);
        Ok(HostSystem {
            cores,
            secondary_pids,
            last_sample: sample,
            applied_affinity: CoreMask::all(cores),
        })
    }

    /// Replaces the managed PID set (service churn).
    pub fn set_secondary_pids(&mut self, pids: Vec<i32>) {
        self.secondary_pids = pids;
    }
}

#[cfg(target_os = "linux")]
impl SystemInterface for HostSystem {
    fn total_cores(&self) -> u32 {
        self.cores
    }

    fn idle_cores(&mut self) -> CoreMask {
        let Ok(stat) = std::fs::read_to_string("/proc/stat") else {
            return CoreMask::EMPTY;
        };
        let curr = parse_proc_stat(&stat);
        let mask = idle_mask_from_samples(&self.last_sample, &curr);
        self.last_sample = curr;
        mask
    }

    fn set_secondary_affinity(&mut self, mask: CoreMask) {
        // An empty mask is not settable on Linux; park on the highest core.
        let effective = if mask.is_empty() {
            CoreMask::all(self.cores).take_highest(1)
        } else {
            mask
        };
        for &pid in &self.secondary_pids {
            // Dead PIDs are expected under task churn; ignore failures.
            let _ = set_pid_affinity(pid, effective);
        }
        self.applied_affinity = mask;
    }

    fn secondary_affinity(&self) -> CoreMask {
        self.applied_affinity
    }

    fn set_secondary_cycle_cap(&mut self, _cap: Option<f64>) {
        // Would map to cgroup v2 `cpu.max`; not required for blind isolation.
    }

    fn memory_total(&self) -> u64 {
        std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|s| parse_meminfo(&s))
            .map(|(t, _)| t)
            .unwrap_or(0)
    }

    fn memory_used(&self) -> u64 {
        std::fs::read_to_string("/proc/meminfo")
            .ok()
            .and_then(|s| parse_meminfo(&s))
            .map(|(t, a)| t.saturating_sub(a))
            .unwrap_or(0)
    }

    fn secondary_memory_used(&self) -> u64 {
        // Would sum /proc/<pid>/smaps_rollup; refinement left to deployments.
        0
    }

    fn kill_secondary_processes(&mut self) {
        for &pid in &self.secondary_pids {
            // SAFETY: plain kill(2) call; failure (ESRCH/EPERM) is ignored.
            unsafe {
                libc::kill(pid, libc::SIGKILL);
            }
        }
    }

    fn io_tenants(&self) -> Vec<IoTenant> {
        Vec::new()
    }

    fn io_stats(&mut self, _tenant: IoTenant) -> IoTenantStats {
        IoTenantStats::default()
    }

    fn shared_volume_iops(&mut self) -> f64 {
        // Would parse /proc/diskstats; not needed for CPU-only deployments.
        0.0
    }

    fn set_io_priority(&mut self, _tenant: IoTenant, _priority: u8) {}

    fn io_priority(&self, _tenant: IoTenant) -> u8 {
        0
    }

    fn set_io_limit(&mut self, _tenant: IoTenant, _limit: Option<IoLimit>) {}

    fn set_egress_low_rate(&mut self, _rate: Option<u64>) {
        // Would map to tc/HTB or eBPF shaping.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_STAT: &str = "\
cpu  100 0 100 1000 10 5 5 0 0 0
cpu0 50 0 50 500 5 3 2 0 0 0
cpu1 50 0 50 500 5 2 3 0 0 0
intr 12345
ctxt 999
";

    #[test]
    fn parses_per_cpu_lines_only() {
        let s = parse_proc_stat(SAMPLE_STAT);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].cpu, 0);
        assert_eq!(s[0].busy, 50 + 0 + 50 + 3 + 2 + 0);
        assert_eq!(s[0].idle, 505);
    }

    #[test]
    fn idle_mask_detects_stalled_counters() {
        let prev = parse_proc_stat(SAMPLE_STAT);
        let mut curr = prev.clone();
        curr[1].busy += 10; // cpu1 did work; cpu0 idle.
        let mask = idle_mask_from_samples(&prev, &curr);
        assert!(mask.contains(CoreId(0)));
        assert!(!mask.contains(CoreId(1)));
    }

    #[test]
    fn meminfo_parses_bytes() {
        let content =
            "MemTotal:       16384 kB\nMemFree:        1024 kB\nMemAvailable:   8192 kB\n";
        let (total, avail) = parse_meminfo(content).unwrap();
        assert_eq!(total, 16384 * 1024);
        assert_eq!(avail, 8192 * 1024);
    }

    #[test]
    fn meminfo_missing_fields_is_none() {
        assert!(parse_meminfo("MemTotal: 1 kB\n").is_none());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_proc_stat_parses() {
        let stat = std::fs::read_to_string("/proc/stat").unwrap();
        let samples = parse_proc_stat(&stat);
        assert!(!samples.is_empty());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn own_affinity_roundtrip() {
        // PID 0 = calling thread. Read, narrow to one core, restore.
        let original = get_pid_affinity(0).unwrap();
        assert!(!original.is_empty());
        let one = original.take_lowest(1);
        set_pid_affinity(0, one).unwrap();
        assert_eq!(get_pid_affinity(0).unwrap(), one);
        set_pid_affinity(0, original).unwrap();
        assert_eq!(get_pid_affinity(0).unwrap(), original);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn host_system_senses() {
        let mut h = HostSystem::new(vec![]).unwrap();
        assert!(h.total_cores() >= 1);
        let _ = h.idle_cores();
        assert!(h.memory_total() > 0);
    }
}
