//! The memory watchdog (§3.2).
//!
//! Primary services "are engineered to have a fixed working set and a
//! stable memory footprint. We cannot compromise on this" — so PerfIso caps
//! the secondary's footprint and, "when memory runs very low, secondary
//! processes are killed."

use serde::{Deserialize, Serialize};

/// The watchdog's verdict for one polling round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryAction {
    /// All limits respected.
    Ok,
    /// The secondary exceeds its configured footprint cap: it should shed
    /// memory (the enforcement is a job-object limit in production; in the
    /// simulator the workload model reacts).
    SecondaryOverLimit,
    /// Machine memory critically low: kill secondary processes now.
    KillSecondary,
}

/// Memory policy evaluation.
///
/// # Examples
///
/// ```
/// use perfiso::memory::{MemoryAction, MemoryWatchdog};
///
/// let w = MemoryWatchdog::new(Some(10 << 30), 0.95);
/// let gib = 1u64 << 30;
/// assert_eq!(w.evaluate(128 * gib, 40 * gib, 8 * gib), MemoryAction::Ok);
/// assert_eq!(w.evaluate(128 * gib, 40 * gib, 12 * gib), MemoryAction::SecondaryOverLimit);
/// assert_eq!(w.evaluate(128 * gib, 125 * gib, 12 * gib), MemoryAction::KillSecondary);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MemoryWatchdog {
    /// Secondary footprint cap in bytes (`None` = uncapped).
    secondary_limit: Option<u64>,
    /// Kill secondaries when used/total exceeds this fraction.
    kill_watermark: f64,
}

impl MemoryWatchdog {
    /// Creates a watchdog.
    ///
    /// # Panics
    ///
    /// Panics unless `kill_watermark` is in `[0, 1]`.
    pub fn new(secondary_limit: Option<u64>, kill_watermark: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&kill_watermark),
            "watermark must be in [0,1]: {kill_watermark}"
        );
        MemoryWatchdog {
            secondary_limit,
            kill_watermark,
        }
    }

    /// The configured secondary cap.
    pub fn secondary_limit(&self) -> Option<u64> {
        self.secondary_limit
    }

    /// Evaluates one polling round.
    pub fn evaluate(&self, total: u64, used: u64, secondary_used: u64) -> MemoryAction {
        if total > 0 && used as f64 / total as f64 >= self.kill_watermark {
            return MemoryAction::KillSecondary;
        }
        if let Some(limit) = self.secondary_limit {
            if secondary_used > limit {
                return MemoryAction::SecondaryOverLimit;
            }
        }
        MemoryAction::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn ok_when_plenty_free() {
        let w = MemoryWatchdog::new(Some(20 * GIB), 0.95);
        assert_eq!(w.evaluate(128 * GIB, 60 * GIB, 10 * GIB), MemoryAction::Ok);
    }

    #[test]
    fn kill_takes_precedence_over_limit() {
        let w = MemoryWatchdog::new(Some(GIB), 0.9);
        // Both violated: kill wins.
        assert_eq!(
            w.evaluate(100 * GIB, 95 * GIB, 50 * GIB),
            MemoryAction::KillSecondary
        );
    }

    #[test]
    fn uncapped_secondary_never_over_limit() {
        let w = MemoryWatchdog::new(None, 0.95);
        assert_eq!(w.evaluate(100 * GIB, 50 * GIB, 49 * GIB), MemoryAction::Ok);
    }

    #[test]
    fn watermark_boundary() {
        let w = MemoryWatchdog::new(None, 0.5);
        assert_eq!(w.evaluate(100, 49, 0), MemoryAction::Ok);
        assert_eq!(w.evaluate(100, 50, 0), MemoryAction::KillSecondary);
    }

    #[test]
    fn zero_total_is_safe() {
        let w = MemoryWatchdog::new(None, 0.95);
        assert_eq!(w.evaluate(0, 0, 0), MemoryAction::Ok);
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn bad_watermark_rejected() {
        let _ = MemoryWatchdog::new(None, 1.5);
    }
}
