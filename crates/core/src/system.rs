//! The OS abstraction PerfIso drives.
//!
//! The paper's framework is a user-mode service that relies only on
//! "features readily-available" in the OS (§2.2): an idle-core mask query,
//! job-object affinity and CPU-rate control, per-device I/O statistics and
//! priorities, memory counters, and an egress shaper. [`SystemInterface`]
//! captures exactly those sensors and actuators, so the controller logic is
//! identical whether it drives a simulated machine or a real one.

use serde::{Deserialize, Serialize};
use simcore::CoreMask;

/// An I/O-issuing secondary process (or daemon) PerfIso manages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct IoTenant(pub u32);

/// Windowed I/O statistics for one tenant.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct IoTenantStats {
    /// Completed operations per second over the moving window.
    pub window_iops: f64,
    /// Completed bytes per second over the moving window.
    pub window_bytes_per_sec: f64,
}

/// A static I/O rate limit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IoLimit {
    /// Bandwidth cap in bytes/second.
    pub bytes_per_sec: Option<u64>,
    /// Operations cap in IOPS.
    pub iops: Option<u64>,
}

/// Sensors and actuators of one machine, as exposed to PerfIso.
///
/// Sensor methods take `&mut self` because real implementations advance
/// moving windows or consume `/proc` snapshots when read.
pub trait SystemInterface {
    // --- CPU ---

    /// Number of logical cores.
    fn total_cores(&self) -> u32;

    /// The idle-core bitmask (the tight-loop polled syscall, §3.1.1).
    fn idle_cores(&mut self) -> CoreMask;

    /// Cores the primary has explicitly affinitised for itself; PerfIso
    /// never hands these to the secondary (§4.2).
    fn primary_reserved_cores(&self) -> CoreMask {
        CoreMask::EMPTY
    }

    /// Restricts all secondary processes to `mask`.
    fn set_secondary_affinity(&mut self, mask: CoreMask);

    /// The currently applied secondary affinity mask.
    fn secondary_affinity(&self) -> CoreMask;

    /// Applies (or clears) a CPU-cycle cap on the secondary, as a fraction
    /// of total machine CPU in `(0, 1]`.
    fn set_secondary_cycle_cap(&mut self, cap: Option<f64>);

    // --- Memory ---

    /// Total machine memory in bytes.
    fn memory_total(&self) -> u64;

    /// Memory in use machine-wide, in bytes.
    fn memory_used(&self) -> u64;

    /// Memory in use by secondary tenants, in bytes.
    fn secondary_memory_used(&self) -> u64;

    /// Kills all secondary processes (the last-resort memory action, §3.2).
    fn kill_secondary_processes(&mut self);

    // --- Disk I/O ---

    /// The I/O tenants PerfIso currently manages.
    fn io_tenants(&self) -> Vec<IoTenant>;

    /// Windowed stats for one tenant.
    fn io_stats(&mut self, tenant: IoTenant) -> IoTenantStats;

    /// Completed IOPS on the shared (HDD) volume — per-device monitoring,
    /// the only granularity the OS offers (§4.1).
    fn shared_volume_iops(&mut self) -> f64;

    /// Sets a tenant's I/O priority (0 = lowest, 7 = highest).
    fn set_io_priority(&mut self, tenant: IoTenant, priority: u8);

    /// The tenant's current I/O priority.
    fn io_priority(&self, tenant: IoTenant) -> u8;

    /// Installs or clears a static I/O rate limit on a tenant.
    fn set_io_limit(&mut self, tenant: IoTenant, limit: Option<IoLimit>);

    // --- Network ---

    /// Caps (or uncaps) low-priority egress traffic, bytes/second.
    fn set_egress_low_rate(&mut self, rate: Option<u64>);
}

/// An in-memory fake for unit tests and doctests.
///
/// Records every actuation; sensors return whatever the test sets.
#[derive(Clone, Debug)]
pub struct MockSystem {
    /// Core count reported.
    pub cores: u32,
    /// Idle mask returned by [`SystemInterface::idle_cores`].
    pub idle: CoreMask,
    /// Reserved-cores mask reported.
    pub reserved: CoreMask,
    /// Last applied secondary affinity.
    pub secondary_affinity: CoreMask,
    /// Last applied cycle cap.
    pub cycle_cap: Option<f64>,
    /// Reported memory total.
    pub mem_total: u64,
    /// Reported memory used.
    pub mem_used: u64,
    /// Reported secondary memory used.
    pub sec_mem_used: u64,
    /// Whether the secondary has been killed.
    pub secondary_killed: bool,
    /// Managed I/O tenants with (stats, priority, limit).
    pub tenants: Vec<(IoTenant, IoTenantStats, u8, Option<IoLimit>)>,
    /// Reported shared-volume IOPS.
    pub volume_iops: f64,
    /// Last applied egress cap.
    pub egress_low_rate: Option<u64>,
    /// Count of affinity actuations (to verify update-on-change).
    pub affinity_updates: u64,
}

impl MockSystem {
    /// Creates a mock machine with `cores` cores, everything idle.
    pub fn new(cores: u32) -> Self {
        MockSystem {
            cores,
            idle: CoreMask::all(cores),
            reserved: CoreMask::EMPTY,
            secondary_affinity: CoreMask::all(cores),
            cycle_cap: None,
            mem_total: 128 << 30,
            mem_used: 0,
            sec_mem_used: 0,
            secondary_killed: false,
            tenants: Vec::new(),
            volume_iops: 0.0,
            egress_low_rate: None,
            affinity_updates: 0,
        }
    }

    /// Registers a mock I/O tenant.
    pub fn add_tenant(&mut self, id: u32, priority: u8) -> IoTenant {
        let t = IoTenant(id);
        self.tenants
            .push((t, IoTenantStats::default(), priority, None));
        t
    }

    fn tenant_mut(&mut self, t: IoTenant) -> &mut (IoTenant, IoTenantStats, u8, Option<IoLimit>) {
        self.tenants
            .iter_mut()
            .find(|x| x.0 == t)
            .expect("unknown tenant")
    }
}

impl SystemInterface for MockSystem {
    fn total_cores(&self) -> u32 {
        self.cores
    }

    fn idle_cores(&mut self) -> CoreMask {
        self.idle
    }

    fn primary_reserved_cores(&self) -> CoreMask {
        self.reserved
    }

    fn set_secondary_affinity(&mut self, mask: CoreMask) {
        self.secondary_affinity = mask;
        self.affinity_updates += 1;
    }

    fn secondary_affinity(&self) -> CoreMask {
        self.secondary_affinity
    }

    fn set_secondary_cycle_cap(&mut self, cap: Option<f64>) {
        self.cycle_cap = cap;
    }

    fn memory_total(&self) -> u64 {
        self.mem_total
    }

    fn memory_used(&self) -> u64 {
        self.mem_used
    }

    fn secondary_memory_used(&self) -> u64 {
        self.sec_mem_used
    }

    fn kill_secondary_processes(&mut self) {
        self.secondary_killed = true;
    }

    fn io_tenants(&self) -> Vec<IoTenant> {
        self.tenants.iter().map(|x| x.0).collect()
    }

    fn io_stats(&mut self, tenant: IoTenant) -> IoTenantStats {
        self.tenant_mut(tenant).1
    }

    fn shared_volume_iops(&mut self) -> f64 {
        self.volume_iops
    }

    fn set_io_priority(&mut self, tenant: IoTenant, priority: u8) {
        self.tenant_mut(tenant).2 = priority.min(7);
    }

    fn io_priority(&self, tenant: IoTenant) -> u8 {
        self.tenants
            .iter()
            .find(|x| x.0 == tenant)
            .expect("unknown tenant")
            .2
    }

    fn set_io_limit(&mut self, tenant: IoTenant, limit: Option<IoLimit>) {
        self.tenant_mut(tenant).3 = limit;
    }

    fn set_egress_low_rate(&mut self, rate: Option<u64>) {
        self.egress_low_rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_records_actuations() {
        let mut m = MockSystem::new(8);
        m.set_secondary_affinity(CoreMask::range(0, 4));
        assert_eq!(m.secondary_affinity(), CoreMask::range(0, 4));
        assert_eq!(m.affinity_updates, 1);
        m.set_secondary_cycle_cap(Some(0.05));
        assert_eq!(m.cycle_cap, Some(0.05));
        let t = m.add_tenant(1, 2);
        m.set_io_priority(t, 9);
        assert_eq!(m.io_priority(t), 7, "priority saturates at 7");
        m.set_egress_low_rate(Some(1000));
        assert_eq!(m.egress_low_rate, Some(1000));
        m.kill_secondary_processes();
        assert!(m.secondary_killed);
    }
}
