//! Crash recovery (§4.2).
//!
//! "PerfIso is fully recoverable, since all parameters are stored in the
//! cluster-wide configuration files. In the event of a crash, Autopilot
//! will bring it up again, and PerfIso will resume its function by loading
//! its state from disk." The snapshot carries the dynamic state (current
//! secondary mask, enablement, I/O priorities); static parameters re-arrive
//! via configuration.

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};
use simcore::CoreMask;

/// The dynamic controller state persisted across crashes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Kill-switch state: whether isolation is active.
    pub enabled: bool,
    /// The secondary core set at snapshot time.
    pub secondary_mask: CoreMask,
    /// Per-tenant I/O priorities `(tenant id, priority)`.
    pub io_priorities: Vec<(u32, u8)>,
}

impl ControllerState {
    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the snapshot atomically (write-then-rename) to `path`.
    ///
    /// The temporary file lives in the same directory as `path` (renames
    /// across filesystems are not atomic) under a dotted name derived from
    /// the full file name, so it can never clobber a sibling snapshot like
    /// `state.tmp` the way `with_extension` would.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        let file_name = path.file_name().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("snapshot path {} has no file name", path.display()),
            )
        })?;
        let mut tmp_name = std::ffi::OsString::from(".");
        tmp_name.push(file_name);
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let data = std::fs::read_to_string(path)?;
        Self::from_json(&data).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ControllerState {
        ControllerState {
            enabled: true,
            secondary_mask: CoreMask::range(8, 48),
            io_priorities: vec![(1, 2), (2, 5)],
        }
    }

    #[test]
    fn json_roundtrip() {
        let s = sample();
        let j = s.to_json().unwrap();
        let back = ControllerState::from_json(&j).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("perfiso-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let s = sample();
        s.save(&path).unwrap();
        let back = ControllerState::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let dir = std::env::temp_dir().join(format!("perfiso-test-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(ControllerState::load(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(ControllerState::load(Path::new("/nonexistent/perfiso.json")).is_err());
    }

    #[test]
    fn save_does_not_clobber_sibling_files() {
        let dir = std::env::temp_dir().join(format!("perfiso-test-s-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // `path.with_extension("tmp")` would scribble over this sibling.
        let sibling = dir.join("state.tmp");
        std::fs::write(&sibling, "operator data").unwrap();
        sample().save(&dir.join("state.json")).unwrap();
        assert_eq!(
            std::fs::read_to_string(&sibling).unwrap(),
            "operator data",
            "checkpointing must not touch unrelated files"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_overwrites_previous_snapshot_atomically() {
        let dir = std::env::temp_dir().join(format!("perfiso-test-o-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let mut s = sample();
        s.save(&path).unwrap();
        s.enabled = false;
        s.save(&path).unwrap();
        let back = ControllerState::load(&path).unwrap();
        assert_eq!(back, s);
        // No temp file is left behind after a successful rename.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "state.json")
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_to_a_directory_path_is_an_error() {
        assert!(sample().save(Path::new("/")).is_err());
    }
}
