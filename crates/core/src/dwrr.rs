//! Deficit-weighted round-robin I/O throttling (§4.1).
//!
//! The OS reports only *per-device* I/O statistics, so PerfIso cannot read
//! any process's consumption directly. Instead it estimates each process's
//! fair *demand* share of the measured device IOPS from configured weights,
//! computes a *deficit* against the process's guaranteed minimum, and nudges
//! I/O priorities accordingly. From the paper, with `w_i^t` the weight of
//! process `i` and `curr^t` the device IOPS measured at time `t`:
//!
//! ```text
//! D_i^t   = Σ_{t'=t−Δ..t}  w_i^{t'} · curr^{t'} / Σ_j w_j^{t'}
//! Def_i^t = (curr^t − min(lim_i, D_i^t)) / min(lim_i, D_i^t)
//! ```
//!
//! A large positive deficit means the drive is serving far more traffic
//! than process `i`'s guaranteed share — `i` is being crowded out and its
//! priority is raised; a negative deficit lowers it.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::system::IoTenant;

/// Static DWRR parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DwrrConfig {
    /// Number of samples in the moving-average window Δ.
    pub window: usize,
    /// Raise priority when the deficit exceeds this.
    pub raise_threshold: f64,
    /// Lower priority when the deficit falls below this.
    pub lower_threshold: f64,
}

impl Default for DwrrConfig {
    fn default() -> Self {
        DwrrConfig {
            window: 10,
            raise_threshold: 0.5,
            lower_threshold: -0.25,
        }
    }
}

/// Per-tenant DWRR configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TenantIoConfig {
    /// Scheduling weight (higher priority ⇒ larger weight).
    pub weight: f64,
    /// Guaranteed minimum IOPS (`lim_i`).
    pub min_iops: f64,
}

#[derive(Clone, Debug, Default)]
struct TenantState {
    cfg: Option<TenantIoConfig>,
    /// Window of per-sample demand terms `w_i · curr / Σw`.
    demand_terms: VecDeque<f64>,
}

/// A priority adjustment decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrioAdjust {
    /// Raise the tenant's priority one step.
    Raise,
    /// Lower the tenant's priority one step.
    Lower,
    /// Leave it unchanged.
    Hold,
}

/// The DWRR throttling controller.
///
/// # Examples
///
/// ```
/// use perfiso::dwrr::{DwrrConfig, DwrrThrottler, TenantIoConfig};
/// use perfiso::system::IoTenant;
///
/// let mut d = DwrrThrottler::new(DwrrConfig::default());
/// d.configure_tenant(IoTenant(1), TenantIoConfig { weight: 1.0, min_iops: 100.0 });
/// d.observe(400.0);
/// assert!((d.demand(IoTenant(1)) - 400.0).abs() < 1e-9); // sole tenant: full share
/// ```
#[derive(Clone, Debug, Default)]
pub struct DwrrThrottler {
    cfg: DwrrConfig,
    tenants: BTreeMap<IoTenant, TenantState>,
    last_curr: f64,
}

impl DwrrThrottler {
    /// Creates a throttler.
    pub fn new(cfg: DwrrConfig) -> Self {
        DwrrThrottler {
            cfg,
            tenants: BTreeMap::new(),
            last_curr: 0.0,
        }
    }

    /// Registers or reconfigures a tenant.
    pub fn configure_tenant(&mut self, tenant: IoTenant, cfg: TenantIoConfig) {
        let st = self.tenants.entry(tenant).or_default();
        st.cfg = Some(cfg);
    }

    /// Removes a tenant.
    pub fn remove_tenant(&mut self, tenant: IoTenant) {
        self.tenants.remove(&tenant);
    }

    /// Managed tenants.
    pub fn tenants(&self) -> Vec<IoTenant> {
        self.tenants.keys().copied().collect()
    }

    /// Feeds one per-device IOPS sample (`curr^t`), updating every tenant's
    /// demand window.
    pub fn observe(&mut self, curr_iops: f64) {
        self.last_curr = curr_iops.max(0.0);
        let total_weight: f64 = self
            .tenants
            .values()
            .filter_map(|t| t.cfg.map(|c| c.weight))
            .sum();
        if total_weight <= 0.0 {
            return;
        }
        let window = self.cfg.window;
        for st in self.tenants.values_mut() {
            let Some(cfg) = st.cfg else { continue };
            let term = cfg.weight * self.last_curr / total_weight;
            st.demand_terms.push_back(term);
            while st.demand_terms.len() > window {
                st.demand_terms.pop_front();
            }
        }
    }

    /// The accumulated demand `D_i^t` over the window.
    pub fn demand(&self, tenant: IoTenant) -> f64 {
        self.tenants
            .get(&tenant)
            .map(|t| t.demand_terms.iter().sum())
            .unwrap_or(0.0)
    }

    /// The deficit `Def_i^t` given the latest `curr` sample.
    ///
    /// Returns 0 for unknown or unconfigured tenants, and when the guarantee
    /// floor is zero (no meaningful ratio).
    pub fn deficit(&self, tenant: IoTenant) -> f64 {
        let Some(st) = self.tenants.get(&tenant) else {
            return 0.0;
        };
        let Some(cfg) = st.cfg else { return 0.0 };
        let d: f64 = st.demand_terms.iter().sum();
        let floor = cfg.min_iops.min(d);
        if floor <= 0.0 {
            return 0.0;
        }
        (self.last_curr - floor) / floor
    }

    /// One controller step: the per-tenant priority adjustments.
    pub fn step(&self) -> Vec<(IoTenant, PrioAdjust)> {
        let mut out = Vec::with_capacity(self.tenants.len());
        self.step_into(&mut out);
        out
    }

    /// [`DwrrThrottler::step`] into a reusable buffer (cleared first): the
    /// allocation-free variant the controller uses on its poll loop.
    pub fn step_into(&self, out: &mut Vec<(IoTenant, PrioAdjust)>) {
        out.clear();
        out.extend(self.tenants.keys().map(|&t| {
            let def = self.deficit(t);
            let adj = if def > self.cfg.raise_threshold {
                PrioAdjust::Raise
            } else if def < self.cfg.lower_threshold {
                PrioAdjust::Lower
            } else {
                PrioAdjust::Hold
            };
            (t, adj)
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(weight: f64, min_iops: f64) -> TenantIoConfig {
        TenantIoConfig { weight, min_iops }
    }

    #[test]
    fn demand_is_weighted_share_over_window() {
        let mut d = DwrrThrottler::new(DwrrConfig {
            window: 3,
            ..Default::default()
        });
        d.configure_tenant(IoTenant(1), cfg(1.0, 50.0));
        d.configure_tenant(IoTenant(2), cfg(3.0, 50.0));
        d.observe(100.0);
        d.observe(200.0);
        // D_1 = (1/4)*100 + (1/4)*200 = 75 ; D_2 = (3/4)*300 = 225.
        assert!((d.demand(IoTenant(1)) - 75.0).abs() < 1e-9);
        assert!((d.demand(IoTenant(2)) - 225.0).abs() < 1e-9);
    }

    #[test]
    fn window_slides() {
        let mut d = DwrrThrottler::new(DwrrConfig {
            window: 2,
            ..Default::default()
        });
        d.configure_tenant(IoTenant(1), cfg(1.0, 50.0));
        d.observe(100.0);
        d.observe(100.0);
        d.observe(100.0);
        // Only the last 2 samples count.
        assert!((d.demand(IoTenant(1)) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn deficit_formula_matches_paper() {
        let mut d = DwrrThrottler::new(DwrrConfig {
            window: 10,
            ..Default::default()
        });
        d.configure_tenant(IoTenant(1), cfg(1.0, 100.0));
        d.observe(400.0);
        // D_1 = 400 (sole tenant); floor = min(lim=100, D=400) = 100.
        // Def = (400 - 100) / 100 = 3.
        assert!((d.deficit(IoTenant(1)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deficit_uses_demand_when_below_limit() {
        let mut d = DwrrThrottler::new(DwrrConfig {
            window: 10,
            ..Default::default()
        });
        d.configure_tenant(IoTenant(1), cfg(1.0, 1_000.0));
        d.observe(50.0);
        // D = 50 < lim: floor = 50, Def = (50 - 50)/50 = 0.
        assert!(d.deficit(IoTenant(1)).abs() < 1e-9);
    }

    #[test]
    fn crowded_out_tenant_gets_raised() {
        let mut d = DwrrThrottler::new(DwrrConfig::default());
        d.configure_tenant(IoTenant(1), cfg(1.0, 100.0));
        d.configure_tenant(IoTenant(2), cfg(10.0, 1_000.0));
        for _ in 0..10 {
            d.observe(2_000.0);
        }
        let steps: BTreeMap<IoTenant, PrioAdjust> = d.step().into_iter().collect();
        // Tenant 1's floor is its 100-IOPS guarantee while the drive does
        // 2000: strongly positive deficit => raise.
        assert_eq!(steps[&IoTenant(1)], PrioAdjust::Raise);
    }

    #[test]
    fn idle_device_holds_priorities() {
        let mut d = DwrrThrottler::new(DwrrConfig::default());
        d.configure_tenant(IoTenant(1), cfg(1.0, 100.0));
        d.observe(0.0);
        assert_eq!(d.step()[0].1, PrioAdjust::Hold);
    }

    #[test]
    fn unknown_tenant_is_zero() {
        let d = DwrrThrottler::new(DwrrConfig::default());
        assert_eq!(d.demand(IoTenant(9)), 0.0);
        assert_eq!(d.deficit(IoTenant(9)), 0.0);
    }

    #[test]
    fn remove_tenant_stops_tracking() {
        let mut d = DwrrThrottler::new(DwrrConfig::default());
        d.configure_tenant(IoTenant(1), cfg(1.0, 10.0));
        d.observe(100.0);
        d.remove_tenant(IoTenant(1));
        assert!(d.tenants().is_empty());
        assert_eq!(d.demand(IoTenant(1)), 0.0);
    }
}
