//! The PerfIso controller: ties the mechanisms into one user-mode service.
//!
//! Polling and updating are deliberately separated (§4.1): sensors are read
//! on every tick, but actuators fire only when the computed setting
//! actually changes — "constantly updating certain settings can become
//! harmful to the performance of all services."
//!
//! Operationally (§4.2) the controller carries a kill switch (deactivate
//! quickly while debugging a livesite incident), accepts runtime commands,
//! and snapshots its dynamic state for crash recovery under Autopilot.

use simcore::{CoreMask, SimTime};

use crate::blind::BlindIsolation;
use crate::config::{CpuPolicy, PerfIsoConfig};
use crate::dwrr::{DwrrThrottler, PrioAdjust, TenantIoConfig};
use crate::memory::{MemoryAction, MemoryWatchdog};
use crate::recovery::ControllerState;
use crate::system::{IoLimit, IoTenant, SystemInterface};

/// Runtime commands (issued via Autopilot config or the local debug client).
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Change the blind-isolation buffer size.
    SetBufferCores(u32),
    /// Switch the CPU policy altogether.
    SetCpuPolicy(CpuPolicy),
    /// Set or clear the egress cap for secondary traffic.
    SetEgressLowRate(Option<u64>),
    /// Install or clear a static I/O limit on a tenant.
    SetIoLimit(IoTenant, Option<IoLimit>),
    /// The kill switch: `false` deactivates all isolation instantly.
    SetEnabled(bool),
}

/// The PerfIso service.
///
/// Generic over [`SystemInterface`] so the same controller drives the
/// simulator and (behind the `host` feature) a real Linux machine.
#[derive(Clone, Debug)]
pub struct PerfIso {
    cfg: PerfIsoConfig,
    enabled: bool,
    blind: Option<BlindIsolation>,
    dwrr: DwrrThrottler,
    memwatch: MemoryWatchdog,
    /// Last CPU-actuator value, for update-on-change.
    last_applied_mask: Option<CoreMask>,
    /// Reusable buffer for the DWRR round, so the I/O poll loop does not
    /// allocate.
    dwrr_scratch: Vec<(IoTenant, PrioAdjust)>,
    /// Statistics: polls and actuations.
    pub stats: ControllerStats,
}

/// Controller activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ControllerStats {
    /// CPU poll ticks executed.
    pub cpu_polls: u64,
    /// Affinity actuations issued (should be ≪ polls).
    pub affinity_updates: u64,
    /// I/O controller rounds.
    pub io_rounds: u64,
    /// I/O priority adjustments issued.
    pub io_adjustments: u64,
    /// Secondary kill events from the memory watchdog.
    pub memory_kills: u64,
}

impl PerfIso {
    /// Creates a controller from configuration.
    ///
    /// # Panics
    ///
    /// Panics on an internally inconsistent configuration (see
    /// [`PerfIsoConfig::validate`]; full validation against the machine
    /// happens in [`PerfIso::install`]).
    pub fn new(cfg: PerfIsoConfig) -> Self {
        let memwatch = MemoryWatchdog::new(cfg.secondary_memory_limit, cfg.memory_kill_watermark);
        PerfIso {
            cfg,
            enabled: true,
            blind: None,
            dwrr: DwrrThrottler::default(),
            memwatch,
            last_applied_mask: None,
            dwrr_scratch: Vec::new(),
            stats: ControllerStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PerfIsoConfig {
        &self.cfg
    }

    /// Whether isolation is active (kill switch state).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Applies the configured policy's static part to the system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid for this machine.
    pub fn install(&mut self, sys: &mut dyn SystemInterface) {
        let total = sys.total_cores();
        self.cfg
            .validate(total)
            .expect("invalid PerfIso configuration");
        sys.set_egress_low_rate(self.cfg.egress_low_rate);
        self.apply_cpu_policy(sys);
    }

    fn apply_cpu_policy(&mut self, sys: &mut dyn SystemInterface) {
        let total = sys.total_cores();
        match self.cfg.cpu {
            CpuPolicy::NoIsolation => {
                sys.set_secondary_cycle_cap(None);
                sys.set_secondary_affinity(CoreMask::all(total));
                self.blind = None;
            }
            CpuPolicy::StaticCores(n) => {
                sys.set_secondary_cycle_cap(None);
                // Give the secondary the highest-numbered cores, mirroring
                // blind isolation's packing.
                sys.set_secondary_affinity(CoreMask::all(total).take_highest(n));
                self.blind = None;
            }
            CpuPolicy::CycleCap(frac) => {
                sys.set_secondary_affinity(CoreMask::all(total));
                sys.set_secondary_cycle_cap(Some(frac));
                self.blind = None;
            }
            CpuPolicy::Blind { buffer_cores } => {
                sys.set_secondary_cycle_cap(None);
                let mut blind = BlindIsolation::new(buffer_cores, total);
                // Start closed: the first poll (≤1 ms away) sizes the set.
                sys.set_secondary_affinity(CoreMask::EMPTY);
                blind.restore_secondary(CoreMask::EMPTY);
                self.blind = Some(blind);
                self.last_applied_mask = Some(CoreMask::EMPTY);
            }
        }
    }

    /// One CPU poll tick (the tight loop). Returns the newly applied mask
    /// when an update fired.
    pub fn poll_cpu(&mut self, _now: SimTime, sys: &mut dyn SystemInterface) -> Option<CoreMask> {
        self.stats.cpu_polls += 1;
        if !self.enabled {
            return None;
        }
        let blind = self.blind.as_mut()?;
        let idle = sys.idle_cores();
        let reserved = sys.primary_reserved_cores();
        let new_mask = blind.update(idle, reserved)?;
        if Some(new_mask) == self.last_applied_mask {
            return None;
        }
        sys.set_secondary_affinity(new_mask);
        self.last_applied_mask = Some(new_mask);
        self.stats.affinity_updates += 1;
        Some(new_mask)
    }

    /// Registers an I/O tenant for DWRR management with an optional static
    /// limit and an initial priority.
    pub fn register_io_tenant(
        &mut self,
        sys: &mut dyn SystemInterface,
        tenant: IoTenant,
        cfg: TenantIoConfig,
        static_limit: Option<IoLimit>,
        initial_priority: u8,
    ) {
        self.dwrr.configure_tenant(tenant, cfg);
        sys.set_io_priority(tenant, initial_priority);
        sys.set_io_limit(tenant, static_limit);
    }

    /// One I/O controller round: sample the shared volume, update demand
    /// windows, and nudge priorities by deficit.
    pub fn poll_io(&mut self, _now: SimTime, sys: &mut dyn SystemInterface) {
        self.stats.io_rounds += 1;
        if !self.enabled {
            return;
        }
        let curr = sys.shared_volume_iops();
        self.dwrr.observe(curr);
        let mut round = std::mem::take(&mut self.dwrr_scratch);
        self.dwrr.step_into(&mut round);
        for &(tenant, adj) in &round {
            let prio = sys.io_priority(tenant);
            let new = match adj {
                PrioAdjust::Raise => prio.saturating_add(1).min(7),
                PrioAdjust::Lower => prio.saturating_sub(1),
                PrioAdjust::Hold => prio,
            };
            if new != prio {
                sys.set_io_priority(tenant, new);
                self.stats.io_adjustments += 1;
            }
        }
        self.dwrr_scratch = round;
    }

    /// One memory watchdog round.
    pub fn poll_memory(&mut self, _now: SimTime, sys: &mut dyn SystemInterface) -> MemoryAction {
        if !self.enabled {
            return MemoryAction::Ok;
        }
        let action = self.memwatch.evaluate(
            sys.memory_total(),
            sys.memory_used(),
            sys.secondary_memory_used(),
        );
        if action == MemoryAction::KillSecondary {
            sys.kill_secondary_processes();
            self.stats.memory_kills += 1;
        }
        action
    }

    /// Executes a runtime command.
    pub fn command(&mut self, cmd: Command, sys: &mut dyn SystemInterface) {
        match cmd {
            Command::SetBufferCores(n) => {
                if let CpuPolicy::Blind { .. } = self.cfg.cpu {
                    self.cfg.cpu = CpuPolicy::Blind { buffer_cores: n };
                    if let Some(b) = self.blind.as_mut() {
                        b.set_buffer_cores(n);
                    }
                }
            }
            Command::SetCpuPolicy(p) => {
                self.cfg.cpu = p;
                if self.enabled {
                    self.apply_cpu_policy(sys);
                }
            }
            Command::SetEgressLowRate(rate) => {
                self.cfg.egress_low_rate = rate;
                if self.enabled {
                    sys.set_egress_low_rate(rate);
                }
            }
            Command::SetIoLimit(tenant, limit) => {
                sys.set_io_limit(tenant, limit);
            }
            Command::SetEnabled(enabled) => self.set_enabled(enabled, sys),
        }
    }

    /// The kill switch (§4.2): disabling releases every restriction so
    /// PerfIso can be ruled out during livesite debugging; re-enabling
    /// reapplies the policy.
    pub fn set_enabled(&mut self, enabled: bool, sys: &mut dyn SystemInterface) {
        if self.enabled == enabled {
            return;
        }
        self.enabled = enabled;
        if enabled {
            self.install(sys);
        } else {
            let total = sys.total_cores();
            sys.set_secondary_affinity(CoreMask::all(total));
            sys.set_secondary_cycle_cap(None);
            sys.set_egress_low_rate(None);
            self.last_applied_mask = None;
        }
    }

    /// Snapshots dynamic state for crash recovery.
    pub fn snapshot(&self, sys: &dyn SystemInterface) -> ControllerState {
        ControllerState {
            enabled: self.enabled,
            secondary_mask: self
                .blind
                .as_ref()
                .map(|b| b.secondary())
                .unwrap_or_else(|| sys.secondary_affinity()),
            io_priorities: sys
                .io_tenants()
                .into_iter()
                .map(|t| (t.0, sys.io_priority(t)))
                .collect(),
        }
    }

    /// Restores dynamic state after a crash-restart: the controller resumes
    /// from the persisted secondary mask instead of collapsing it to empty.
    pub fn restore(&mut self, state: &ControllerState, sys: &mut dyn SystemInterface) {
        self.enabled = state.enabled;
        if let Some(b) = self.blind.as_mut() {
            b.restore_secondary(state.secondary_mask);
            if state.enabled {
                sys.set_secondary_affinity(state.secondary_mask);
                self.last_applied_mask = Some(state.secondary_mask);
            }
        }
        for &(t, p) in &state.io_priorities {
            sys.set_io_priority(IoTenant(t), p);
        }
        if !state.enabled {
            self.set_enabled(false, sys);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MockSystem;

    fn blind_controller(buffer: u32) -> PerfIso {
        PerfIso::new(PerfIsoConfig {
            cpu: CpuPolicy::Blind {
                buffer_cores: buffer,
            },
            ..Default::default()
        })
    }

    #[test]
    fn install_blind_starts_closed() {
        let mut sys = MockSystem::new(48);
        let mut ctl = blind_controller(8);
        ctl.install(&mut sys);
        assert_eq!(sys.secondary_affinity, CoreMask::EMPTY);
    }

    #[test]
    fn poll_grows_to_cap_on_idle_machine() {
        let mut sys = MockSystem::new(48);
        let mut ctl = blind_controller(8);
        ctl.install(&mut sys);
        let m = ctl.poll_cpu(SimTime::ZERO, &mut sys).unwrap();
        assert_eq!(m.count(), 40);
        assert_eq!(sys.secondary_affinity.count(), 40);
    }

    #[test]
    fn updates_fire_only_on_change() {
        let mut sys = MockSystem::new(16);
        let mut ctl = blind_controller(4);
        ctl.install(&mut sys);
        ctl.poll_cpu(SimTime::ZERO, &mut sys);
        let updates_after_first = sys.affinity_updates;
        // Steady state: idle = exactly the buffer.
        sys.idle = CoreMask::all(16).difference(sys.secondary_affinity);
        assert_eq!(sys.idle.count(), 4);
        for _ in 0..100 {
            assert!(ctl.poll_cpu(SimTime::ZERO, &mut sys).is_none());
        }
        assert_eq!(
            sys.affinity_updates, updates_after_first,
            "no redundant actuations"
        );
        assert_eq!(ctl.stats.cpu_polls, 101);
        assert_eq!(ctl.stats.affinity_updates, 1);
    }

    #[test]
    fn burst_shrinks_secondary() {
        let mut sys = MockSystem::new(48);
        let mut ctl = blind_controller(8);
        ctl.install(&mut sys);
        ctl.poll_cpu(SimTime::ZERO, &mut sys);
        assert_eq!(sys.secondary_affinity.count(), 40);
        // Primary burst eats all idle cores.
        sys.idle = CoreMask::EMPTY;
        let m = ctl.poll_cpu(SimTime::ZERO, &mut sys).unwrap();
        assert_eq!(m.count(), 32, "shrink by the full buffer deficit");
    }

    #[test]
    fn static_cores_policy_applies_once() {
        let mut sys = MockSystem::new(48);
        let mut ctl = PerfIso::new(PerfIsoConfig {
            cpu: CpuPolicy::StaticCores(8),
            ..Default::default()
        });
        ctl.install(&mut sys);
        assert_eq!(sys.secondary_affinity.count(), 8);
        assert_eq!(sys.secondary_affinity, CoreMask::range(40, 48));
        assert!(
            ctl.poll_cpu(SimTime::ZERO, &mut sys).is_none(),
            "static = no dynamics"
        );
    }

    #[test]
    fn cycle_cap_policy_sets_quota() {
        let mut sys = MockSystem::new(48);
        let mut ctl = PerfIso::new(PerfIsoConfig {
            cpu: CpuPolicy::CycleCap(0.05),
            ..Default::default()
        });
        ctl.install(&mut sys);
        assert_eq!(sys.cycle_cap, Some(0.05));
        assert_eq!(sys.secondary_affinity.count(), 48);
    }

    #[test]
    fn kill_switch_releases_everything() {
        let mut sys = MockSystem::new(48);
        let mut ctl = blind_controller(8);
        ctl.install(&mut sys);
        ctl.poll_cpu(SimTime::ZERO, &mut sys);
        ctl.command(Command::SetEnabled(false), &mut sys);
        assert_eq!(sys.secondary_affinity.count(), 48, "unrestricted");
        assert_eq!(sys.cycle_cap, None);
        // Polls do nothing while disabled.
        sys.idle = CoreMask::EMPTY;
        assert!(ctl.poll_cpu(SimTime::ZERO, &mut sys).is_none());
        // Re-enable: policy reapplies.
        ctl.command(Command::SetEnabled(true), &mut sys);
        assert_eq!(sys.secondary_affinity, CoreMask::EMPTY);
    }

    #[test]
    fn buffer_resize_command() {
        let mut sys = MockSystem::new(48);
        let mut ctl = blind_controller(4);
        ctl.install(&mut sys);
        ctl.poll_cpu(SimTime::ZERO, &mut sys);
        assert_eq!(sys.secondary_affinity.count(), 44);
        ctl.command(Command::SetBufferCores(8), &mut sys);
        sys.idle = CoreMask::all(48).difference(sys.secondary_affinity);
        let m = ctl.poll_cpu(SimTime::ZERO, &mut sys).unwrap();
        assert_eq!(m.count(), 40);
    }

    #[test]
    fn memory_watchdog_kills_on_low_memory() {
        let mut sys = MockSystem::new(16);
        let mut ctl = PerfIso::new(PerfIsoConfig {
            memory_kill_watermark: 0.9,
            ..Default::default()
        });
        ctl.install(&mut sys);
        sys.mem_used = sys.mem_total;
        let action = ctl.poll_memory(SimTime::ZERO, &mut sys);
        assert_eq!(action, MemoryAction::KillSecondary);
        assert!(sys.secondary_killed);
        assert_eq!(ctl.stats.memory_kills, 1);
    }

    #[test]
    fn io_round_adjusts_priorities() {
        let mut sys = MockSystem::new(16);
        let mut ctl = PerfIso::new(PerfIsoConfig::default());
        ctl.install(&mut sys);
        let t = sys.add_tenant(1, 2);
        ctl.register_io_tenant(
            &mut sys,
            t,
            TenantIoConfig {
                weight: 1.0,
                min_iops: 10.0,
            },
            None,
            2,
        );
        // Drive doing 1000 IOPS while the tenant's guarantee is 10: large
        // positive deficit, priority rises.
        sys.volume_iops = 1_000.0;
        for _ in 0..3 {
            ctl.poll_io(SimTime::ZERO, &mut sys);
        }
        assert!(sys.io_priority(t) > 2);
        assert!(ctl.stats.io_adjustments >= 1);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut sys = MockSystem::new(48);
        let mut ctl = blind_controller(8);
        ctl.install(&mut sys);
        ctl.poll_cpu(SimTime::ZERO, &mut sys);
        let state = ctl.snapshot(&sys);
        assert_eq!(state.secondary_mask.count(), 40);

        // Simulate a crash: fresh controller, fresh install, then restore.
        let mut ctl2 = blind_controller(8);
        ctl2.install(&mut sys);
        assert_eq!(sys.secondary_affinity, CoreMask::EMPTY);
        ctl2.restore(&state, &mut sys);
        assert_eq!(sys.secondary_affinity.count(), 40, "resumed prior mask");
    }

    #[test]
    fn egress_command_applies() {
        let mut sys = MockSystem::new(16);
        let mut ctl = PerfIso::new(PerfIsoConfig::default());
        ctl.install(&mut sys);
        ctl.command(Command::SetEgressLowRate(Some(5 << 20)), &mut sys);
        assert_eq!(sys.egress_low_rate, Some(5 << 20));
    }

    #[test]
    fn reserved_cores_respected_in_poll() {
        let mut sys = MockSystem::new(16);
        sys.reserved = CoreMask::range(0, 4);
        let mut ctl = blind_controller(4);
        ctl.install(&mut sys);
        let m = ctl.poll_cpu(SimTime::ZERO, &mut sys).unwrap();
        assert!(m.intersection(sys.reserved).is_empty());
        assert_eq!(m.count(), 8, "16 - 4 buffer - 4 reserved");
    }
}
