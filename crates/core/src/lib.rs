//! # PerfIso: performance isolation for latency-sensitive services
//!
//! A reproduction of the isolation framework from *"PerfIso: Performance
//! Isolation for Commercial Latency-Sensitive Services"* (Iorgulescu et al.,
//! USENIX ATC 2018), deployed on Microsoft Bing for years across 90 000+
//! servers.
//!
//! PerfIso colocates best-effort batch jobs (*secondary tenants*) with a
//! latency-sensitive service (*primary tenant*) without degrading the
//! primary's tail latency. The primary is a black box: no SLO numbers, no
//! instrumentation, no scheduler changes. Its mechanisms:
//!
//! - **CPU blind isolation** ([`blind`]) — poll the OS idle-core mask in a
//!   tight loop and size the secondary's affinity mask so the primary always
//!   keeps a buffer of idle cores to absorb thread bursts.
//! - **DWRR I/O throttling** ([`dwrr`]) — deficit-weighted round-robin
//!   priority adjustment from per-drive IOPS and per-process demand.
//! - **Memory watchdog** ([`memory`]) — cap the secondary's footprint and
//!   kill it when machine memory runs very low.
//! - **Egress throttling** (via [`system::SystemInterface`]) — secondary
//!   traffic marked low-priority and rate-capped.
//! - **Operations** ([`controller`], [`recovery`]) — kill switch, runtime
//!   commands, crash recovery from persisted state.
//!
//! The controller talks to the OS through [`system::SystemInterface`], so
//! the same logic drives the discrete-event simulator (crate `scenarios`)
//! and, behind the `host` feature, a real Linux host ([`host`]).
//!
//! # Quickstart
//!
//! ```
//! use perfiso::{config::PerfIsoConfig, controller::PerfIso, system::MockSystem};
//! use simcore::{CoreMask, SimTime};
//!
//! let mut sys = MockSystem::new(48);
//! // The machine is idle: the secondary may take everything but the buffer.
//! sys.idle = CoreMask::all(48);
//! let mut ctl = PerfIso::new(PerfIsoConfig::default());
//! ctl.install(&mut sys);
//! ctl.poll_cpu(SimTime::ZERO, &mut sys);
//! assert_eq!(sys.secondary_affinity.count(), 48 - 8);
//! ```

pub mod blind;
pub mod config;
pub mod controller;
pub mod dwrr;
#[cfg(feature = "host")]
pub mod host;
pub mod memory;
pub mod recovery;
pub mod system;

pub use blind::BlindIsolation;
pub use config::{CpuPolicy, PerfIsoConfig, TenantLimitConfig};
pub use controller::{Command, PerfIso};
pub use dwrr::{DwrrConfig, DwrrThrottler, TenantIoConfig};
pub use memory::{MemoryAction, MemoryWatchdog};
pub use system::{IoLimit, IoTenant, IoTenantStats, SystemInterface};
