//! CPU blind isolation (§3.1) — the paper's core contribution.
//!
//! The invariant: the primary must always find `B` *buffer* idle cores to
//! absorb a burst of woken worker threads (Bing measured up to 15 threads
//! becoming ready within 5 µs). PerfIso polls the idle-core count `I` in a
//! tight loop and resizes the secondary's core set `S`:
//!
//! > "if `I < B`, `S` is decreased, and if `I > B`, `S` is increased."
//!
//! Non-work-conserving by design: up to `B` cores are deliberately left
//! idle. The secondary is assumed CPU-hungry (it will occupy every core it
//! is given), so `I` counts cores that neither tenant is using.

use serde::{Deserialize, Serialize};
use simcore::CoreMask;

/// The blind-isolation decision logic.
///
/// Pure state-machine: feed it the polled idle mask, get back the new
/// secondary mask (or `None` when no change is needed — the paper separates
/// continuous polling from on-demand updates, §4.1).
///
/// # Examples
///
/// ```
/// use perfiso::blind::BlindIsolation;
/// use simcore::CoreMask;
///
/// let mut b = BlindIsolation::new(8, 48);
/// // Machine fully idle: the secondary may take 48 - 8 = 40 cores.
/// let m = b.update(CoreMask::all(48), CoreMask::EMPTY).unwrap();
/// assert_eq!(m.count(), 40);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlindIsolation {
    /// The number of idle cores to keep in reserve for primary bursts.
    buffer_cores: u32,
    /// Total logical cores on the machine.
    total_cores: u32,
    /// The current secondary core set.
    secondary: CoreMask,
}

impl BlindIsolation {
    /// Creates the controller state with an empty secondary set.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_cores >= total_cores` or `total_cores > 64`.
    pub fn new(buffer_cores: u32, total_cores: u32) -> Self {
        assert!(total_cores <= 64, "at most 64 cores: {total_cores}");
        assert!(
            buffer_cores < total_cores,
            "buffer ({buffer_cores}) must leave room on {total_cores} cores"
        );
        BlindIsolation {
            buffer_cores,
            total_cores,
            secondary: CoreMask::EMPTY,
        }
    }

    /// The configured buffer size.
    pub fn buffer_cores(&self) -> u32 {
        self.buffer_cores
    }

    /// Changes the buffer size at runtime (a PerfIso command).
    ///
    /// # Panics
    ///
    /// Panics if `buffer_cores >= total_cores`.
    pub fn set_buffer_cores(&mut self, buffer_cores: u32) {
        assert!(
            buffer_cores < self.total_cores,
            "buffer too large: {buffer_cores}"
        );
        self.buffer_cores = buffer_cores;
    }

    /// The current secondary core set.
    pub fn secondary(&self) -> CoreMask {
        self.secondary
    }

    /// Restores the secondary set (crash recovery).
    pub fn restore_secondary(&mut self, mask: CoreMask) {
        self.secondary = mask;
    }

    /// One poll step: computes the new secondary set from the idle mask.
    ///
    /// Returns `Some(new_mask)` when the set changed and the actuator should
    /// fire, `None` when the system is in balance.
    ///
    /// `reserved` are cores the primary affinitised for itself; they are
    /// never granted to the secondary (§4.2).
    pub fn update(&mut self, idle: CoreMask, reserved: CoreMask) -> Option<CoreMask> {
        // If the primary newly affinitised cores the secondary holds, revoke
        // them first — PerfIso never overrides the primary's own settings.
        let stripped = !self.secondary.intersection(reserved).is_empty();
        if stripped {
            self.secondary = self.secondary.difference(reserved);
        }
        let idle_count = idle.count() as i64;
        let buffer = self.buffer_cores as i64;
        let current = self.secondary.count() as i64;
        // Cap: the secondary may never grow so large that even a fully idle
        // primary would leave fewer than `buffer` free cores.
        let cap = (self.total_cores as i64 - buffer - reserved.count() as i64).max(0);
        let target = (current + (idle_count - buffer)).clamp(0, cap);

        match target.cmp(&current) {
            std::cmp::Ordering::Equal => stripped.then_some(self.secondary),
            std::cmp::Ordering::Greater => {
                // Grow: hand the secondary currently-idle cores (they are
                // provably not running primary work), preferring the
                // highest-numbered ones so the secondary packs away from the
                // primary's natural low-core placement.
                let need = (target - current) as u32;
                let candidates = idle.difference(self.secondary).difference(reserved);
                let grant = candidates.take_highest(need);
                if grant.is_empty() {
                    return stripped.then_some(self.secondary);
                }
                self.secondary = self.secondary.union(grant);
                Some(self.secondary)
            }
            std::cmp::Ordering::Less => {
                // Shrink: revoke the lowest-numbered members first, returning
                // cores nearest the primary's pack.
                let drop = (current - target) as u32;
                let revoked = self.secondary.take_lowest(drop);
                self.secondary = self.secondary.difference(revoked);
                Some(self.secondary)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idle_machine_grants_all_but_buffer() {
        let mut b = BlindIsolation::new(8, 48);
        let m = b.update(CoreMask::all(48), CoreMask::EMPTY).unwrap();
        assert_eq!(m.count(), 40);
        // Packs on the high cores.
        assert_eq!(m, CoreMask::range(8, 48));
    }

    #[test]
    fn balanced_state_yields_no_update() {
        let mut b = BlindIsolation::new(4, 8);
        let m = b.update(CoreMask::all(8), CoreMask::EMPTY).unwrap();
        assert_eq!(m.count(), 4);
        // Now exactly 4 cores idle (the buffer): no change.
        let idle = CoreMask::all(8).difference(m);
        assert_eq!(idle.count(), 4);
        assert_eq!(b.update(idle, CoreMask::EMPTY), None);
    }

    #[test]
    fn primary_burst_shrinks_secondary() {
        // The paper's example (§3.1): 48 cores, primary on 20, buffer 4
        // leaves 24 for the secondary; when the primary grows to 24 cores
        // the secondary is cut to 20.
        let mut b = BlindIsolation::new(4, 48);
        // Step 1: primary uses 20 cores (0..20 busy); the rest idle.
        let idle = CoreMask::range(20, 48);
        let m = b.update(idle, CoreMask::EMPTY).unwrap();
        assert_eq!(m.count(), 24, "48 - 20 - 4 = 24");
        // Step 2: primary expands by 4 cores into the buffer: idle drops to
        // 0 (20+4 primary, 24 secondary, 0 idle).
        let m = b.update(CoreMask::EMPTY, CoreMask::EMPTY).unwrap();
        assert_eq!(m.count(), 20, "secondary gives back the deficit");
    }

    #[test]
    fn shrink_releases_lowest_cores() {
        let mut b = BlindIsolation::new(2, 8);
        let m = b.update(CoreMask::all(8), CoreMask::EMPTY).unwrap();
        assert_eq!(m, CoreMask::range(2, 8));
        let m = b.update(CoreMask::EMPTY, CoreMask::EMPTY).unwrap();
        // Dropped 2: the lowest members (2,3) go first.
        assert_eq!(m, CoreMask::range(4, 8));
    }

    #[test]
    fn reserved_cores_never_granted() {
        let mut b = BlindIsolation::new(2, 8);
        let reserved = CoreMask::range(6, 8);
        let m = b.update(CoreMask::all(8), reserved).unwrap();
        assert_eq!(m.count(), 4, "8 - 2 buffer - 2 reserved");
        assert!(m.intersection(reserved).is_empty());
    }

    #[test]
    fn grows_only_with_idle_cores() {
        let mut b = BlindIsolation::new(2, 8);
        // 5 idle cores but 4 of them overlap the (empty) secondary: grant
        // is capped by what is actually idle.
        let idle = CoreMask::range(0, 5);
        let m = b.update(idle, CoreMask::EMPTY).unwrap();
        assert_eq!(m.count(), 3, "grow by idle - buffer = 3");
        assert!(m.intersection(idle) == m, "granted cores were idle");
    }

    #[test]
    fn secondary_never_exceeds_cap() {
        let mut b = BlindIsolation::new(8, 48);
        for _ in 0..100 {
            b.update(CoreMask::all(48), CoreMask::EMPTY);
            assert!(b.secondary().count() <= 40);
        }
    }

    #[test]
    fn buffer_resize_takes_effect() {
        let mut b = BlindIsolation::new(4, 16);
        b.update(CoreMask::all(16), CoreMask::EMPTY).unwrap();
        assert_eq!(b.secondary().count(), 12);
        b.set_buffer_cores(8);
        // All 4 remaining idle < new buffer 8: shrink by 4.
        let idle = CoreMask::all(16).difference(b.secondary());
        let m = b.update(idle, CoreMask::EMPTY).unwrap();
        assert_eq!(m.count(), 8);
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn oversized_buffer_rejected() {
        let _ = BlindIsolation::new(48, 48);
    }

    proptest! {
        /// The steady-state invariant: however idle/reserved evolve, the
        /// secondary never exceeds total - buffer - reserved, and updates
        /// are only emitted when the mask actually changes.
        #[test]
        fn prop_invariants(
            total in 4u32..=64,
            buffer in 1u32..4,
            steps in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..50),
        ) {
            let mut b = BlindIsolation::new(buffer, total);
            let all = CoreMask::all(total);
            for (idle_bits, res_bits) in steps {
                let reserved = CoreMask(res_bits).intersection(all).take_lowest(2);
                let idle = CoreMask(idle_bits).intersection(all).difference(b.secondary());
                let before = b.secondary();
                let update = b.update(idle, reserved);
                let cap = total.saturating_sub(buffer + reserved.count());
                prop_assert!(b.secondary().count() <= cap);
                if let Some(m) = update {
                    prop_assert_ne!(m, before, "updates only on change");
                    prop_assert_eq!(m, b.secondary());
                    prop_assert!(m.intersection(reserved).is_empty());
                } else {
                    prop_assert_eq!(before, b.secondary());
                }
            }
        }

        /// Monotonicity: more idle cores never shrink the secondary.
        #[test]
        fn prop_monotone_in_idle(extra in 1u32..8) {
            let mut b1 = BlindIsolation::new(4, 32);
            let mut b2 = BlindIsolation::new(4, 32);
            // Same starting state.
            b1.update(CoreMask::range(16, 32), CoreMask::EMPTY);
            b2.update(CoreMask::range(16, 32), CoreMask::EMPTY);
            let idle1 = CoreMask::range(0, 6).difference(b1.secondary());
            let idle2 = CoreMask::range(0, 6 + extra).difference(b2.secondary());
            b1.update(idle1, CoreMask::EMPTY);
            b2.update(idle2, CoreMask::EMPTY);
            prop_assert!(b2.secondary().count() >= b1.secondary().count());
        }
    }
}
