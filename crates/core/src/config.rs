//! PerfIso configuration.
//!
//! In production these values arrive as cluster-wide configuration files
//! through Autopilot and may be altered at runtime by command (§4); the
//! struct is fully serde-serialisable for exactly that path.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::system::IoLimit;

/// Which CPU isolation mechanism to run.
///
/// `Blind` is PerfIso's contribution; the others are the alternatives the
/// paper evaluates (§6.1.4) and production OSes ship.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CpuPolicy {
    /// No CPU isolation at all (the paper's "No isolation" baseline).
    NoIsolation,
    /// Statically restrict the secondary to the given number of cores.
    StaticCores(u32),
    /// Statically cap the secondary's CPU cycles at this fraction of total
    /// machine CPU, in `(0, 1]`.
    CycleCap(f64),
    /// CPU blind isolation with the given buffer-core count.
    Blind {
        /// Idle cores reserved for primary bursts.
        buffer_cores: u32,
    },
}

impl CpuPolicy {
    /// The paper's recommended production setting for IndexServe-class
    /// machines: 8 buffer logical cores (§4.1, §6.1.3).
    pub fn paper_default() -> Self {
        CpuPolicy::Blind { buffer_cores: 8 }
    }
}

/// A static I/O limit for one named secondary tenant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantLimitConfig {
    /// Service name as registered with Autopilot ("hdfs-datanode", ...).
    pub service: String,
    /// The static limit.
    pub limit: IoLimit,
}

/// Full controller configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfIsoConfig {
    /// The CPU isolation policy.
    pub cpu: CpuPolicy,
    /// CPU poll interval (the tight loop, §4.1). 1 ms by default.
    pub cpu_poll_interval: SimDuration,
    /// I/O controller period (DWRR demand/deficit evaluation).
    pub io_poll_interval: SimDuration,
    /// Memory watchdog period.
    pub memory_poll_interval: SimDuration,
    /// Secondary memory cap in bytes (`None` = uncapped).
    pub secondary_memory_limit: Option<u64>,
    /// Kill secondaries when machine memory use exceeds this fraction.
    pub memory_kill_watermark: f64,
    /// Egress cap for secondary (low-class) traffic, bytes/second.
    pub egress_low_rate: Option<u64>,
    /// Static I/O limits per secondary service (e.g. HDFS replication at
    /// 20 MB/s and HDFS clients at 60 MB/s, §5.3).
    pub tenant_limits: Vec<TenantLimitConfig>,
}

impl Default for PerfIsoConfig {
    fn default() -> Self {
        PerfIsoConfig {
            cpu: CpuPolicy::paper_default(),
            cpu_poll_interval: SimDuration::from_millis(1),
            io_poll_interval: SimDuration::from_millis(100),
            memory_poll_interval: SimDuration::from_secs(1),
            secondary_memory_limit: None,
            memory_kill_watermark: 0.95,
            egress_low_rate: None,
            tenant_limits: Vec::new(),
        }
    }
}

impl PerfIsoConfig {
    /// The cluster-experiment configuration from §5.3: HDFS replication
    /// capped at 20 MB/s and HDFS clients at 60 MB/s.
    pub fn paper_cluster() -> Self {
        PerfIsoConfig {
            tenant_limits: vec![
                TenantLimitConfig {
                    service: "hdfs-replication".into(),
                    limit: IoLimit {
                        bytes_per_sec: Some(20 << 20),
                        iops: None,
                    },
                },
                TenantLimitConfig {
                    service: "hdfs-client".into(),
                    limit: IoLimit {
                        bytes_per_sec: Some(60 << 20),
                        iops: None,
                    },
                },
            ],
            ..PerfIsoConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, total_cores: u32) -> Result<(), String> {
        match self.cpu {
            CpuPolicy::Blind { buffer_cores }
                if buffer_cores == 0 || buffer_cores >= total_cores =>
            {
                return Err(format!(
                    "blind isolation needs 1..{total_cores} buffer cores, got {buffer_cores}"
                ));
            }
            CpuPolicy::StaticCores(n) if n > total_cores => {
                return Err(format!("static core count {n} exceeds {total_cores}"));
            }
            CpuPolicy::CycleCap(f) if !(0.0..=1.0).contains(&f) || f == 0.0 => {
                return Err(format!("cycle cap {f} must be in (0, 1]"));
            }
            _ => {}
        }
        if self.cpu_poll_interval.is_zero() {
            return Err("cpu_poll_interval must be positive".into());
        }
        if self.io_poll_interval.is_zero() {
            return Err("io_poll_interval must be positive".into());
        }
        if self.memory_poll_interval.is_zero() {
            return Err("memory_poll_interval must be positive".into());
        }
        if !(self.memory_kill_watermark > 0.0 && self.memory_kill_watermark <= 1.0) {
            return Err(format!(
                "memory_kill_watermark {} must be in (0, 1]",
                self.memory_kill_watermark
            ));
        }
        if self.secondary_memory_limit == Some(0) {
            return Err(
                "secondary_memory_limit of zero bytes kills every secondary; \
                        use the kill watermark instead"
                    .into(),
            );
        }
        if let Some(0) = self.egress_low_rate {
            return Err("egress_low_rate of zero starves the secondary network class".into());
        }
        for t in &self.tenant_limits {
            if t.service.is_empty() {
                return Err("tenant_limits entries need a service name".into());
            }
            if t.limit.bytes_per_sec.is_none() && t.limit.iops.is_none() {
                return Err(format!(
                    "tenant limit for {:?} caps neither bytes/s nor IOPS",
                    t.service
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PerfIsoConfig::default();
        assert_eq!(c.cpu, CpuPolicy::Blind { buffer_cores: 8 });
        assert!(c.validate(48).is_ok());
    }

    #[test]
    fn cluster_config_has_hdfs_limits() {
        let c = PerfIsoConfig::paper_cluster();
        assert_eq!(c.tenant_limits.len(), 2);
        assert_eq!(c.tenant_limits[0].limit.bytes_per_sec, Some(20 << 20));
        assert_eq!(c.tenant_limits[1].limit.bytes_per_sec, Some(60 << 20));
    }

    #[test]
    fn validation_rejects_bad_policies() {
        let mut c = PerfIsoConfig {
            cpu: CpuPolicy::Blind { buffer_cores: 48 },
            ..Default::default()
        };
        assert!(c.validate(48).is_err());
        c.cpu = CpuPolicy::StaticCores(64);
        assert!(c.validate(48).is_err());
        c.cpu = CpuPolicy::CycleCap(0.0);
        assert!(c.validate(48).is_err());
        c.cpu = CpuPolicy::CycleCap(1.5);
        assert!(c.validate(48).is_err());
        c.cpu = CpuPolicy::CycleCap(0.05);
        assert!(c.validate(48).is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        let base = PerfIsoConfig::default;
        for bad in [
            PerfIsoConfig {
                cpu: CpuPolicy::Blind { buffer_cores: 0 },
                ..base()
            },
            PerfIsoConfig {
                cpu_poll_interval: SimDuration::ZERO,
                ..base()
            },
            PerfIsoConfig {
                io_poll_interval: SimDuration::ZERO,
                ..base()
            },
            PerfIsoConfig {
                memory_poll_interval: SimDuration::ZERO,
                ..base()
            },
            PerfIsoConfig {
                memory_kill_watermark: 0.0,
                ..base()
            },
            PerfIsoConfig {
                memory_kill_watermark: 1.5,
                ..base()
            },
            PerfIsoConfig {
                secondary_memory_limit: Some(0),
                ..base()
            },
            PerfIsoConfig {
                egress_low_rate: Some(0),
                ..base()
            },
            PerfIsoConfig {
                tenant_limits: vec![TenantLimitConfig {
                    service: String::new(),
                    limit: IoLimit {
                        bytes_per_sec: Some(1),
                        iops: None,
                    },
                }],
                ..base()
            },
            PerfIsoConfig {
                tenant_limits: vec![TenantLimitConfig {
                    service: "hdfs-client".into(),
                    limit: IoLimit::default(),
                }],
                ..base()
            },
        ] {
            assert!(bad.validate(48).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = PerfIsoConfig::paper_cluster();
        let json = serde_json::to_string(&c).unwrap();
        let back: PerfIsoConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cpu, c.cpu);
        assert_eq!(back.tenant_limits, c.tenant_limits);
    }
}
