//! Shared helpers for the benchmark harness.
//!
//! Each bench target (`benches/fig*.rs`) regenerates one table or figure
//! from the paper's evaluation and prints it in a layout that can be read
//! side-by-side with the original. The experiment cells are declarative
//! [`scenarios::spec::ScenarioSpec`]s — [`policy_cell`] builds and runs
//! one — so the benches, tests, examples, and the `perfiso-run` CLI all
//! share a single description of every experiment. See EXPERIMENTS.md for
//! the figure mapping and the recorded paper-vs-measured comparison.

use indexserve::BoxReport;
use scenarios::{run_with_policy, Policy, Scale};
use telemetry::table::{ms, pct, Table};
use telemetry::TenantClass;
use workloads::BullyIntensity;

/// Runs one single-box policy × intensity × load cell at the bench scale
/// (honouring `PERFISO_SCALE`), seed 42 — the standard bench cell. A thin
/// seam over [`scenarios::run_with_policy`], which builds and runs the
/// corresponding `ScenarioSpec`.
pub fn policy_cell(policy: Policy, intensity: BullyIntensity, qps: f64) -> BoxReport {
    run_with_policy(policy, intensity, qps, 42, Scale::bench())
}

/// The standalone baseline cell at the bench scale.
pub fn standalone_cell(qps: f64) -> BoxReport {
    policy_cell(Policy::Standalone, BullyIntensity::High, qps)
}

/// Standard latency columns for a single-box report row.
pub fn latency_row(label: &str, qps: f64, r: &BoxReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{qps:.0}"),
        ms(r.latency.p50),
        ms(r.latency.p95),
        ms(r.latency.p99),
        pct(r.drop_ratio()),
    ]
}

/// Standard CPU-utilization columns for a single-box report row
/// (primary/secondary/OS/idle, as in the paper's stacked bars).
pub fn cpu_row(label: &str, qps: f64, r: &BoxReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{qps:.0}"),
        pct(r.breakdown.fraction(TenantClass::Primary)),
        pct(r.breakdown.fraction(TenantClass::Secondary)),
        pct(r.breakdown.fraction(TenantClass::Os)),
        pct(r.breakdown.idle_fraction()),
    ]
}

/// A fresh latency table.
pub fn latency_table() -> Table {
    Table::new(&["case", "qps", "p50 (ms)", "p95 (ms)", "p99 (ms)", "dropped"])
}

/// A fresh CPU-utilization table.
pub fn cpu_table() -> Table {
    Table::new(&["case", "qps", "primary", "secondary", "os", "idle"])
}

/// Prints a bench section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_columns() {
        let t = latency_table();
        assert!(t.render().contains("p99"));
        let t = cpu_table();
        assert!(t.render().contains("secondary"));
    }
}
