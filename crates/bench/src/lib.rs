//! Shared formatting helpers for the benchmark harness.
//!
//! Each bench target (`benches/fig*.rs`) regenerates one table or figure
//! from the paper's evaluation and prints it in a layout that can be read
//! side-by-side with the original. See EXPERIMENTS.md for the mapping and
//! the recorded paper-vs-measured comparison.

use indexserve::BoxReport;
use telemetry::table::{ms, pct, Table};
use telemetry::TenantClass;

/// Standard latency columns for a single-box report row.
pub fn latency_row(label: &str, qps: f64, r: &BoxReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{qps:.0}"),
        ms(r.latency.p50),
        ms(r.latency.p95),
        ms(r.latency.p99),
        pct(r.drop_ratio()),
    ]
}

/// Standard CPU-utilization columns for a single-box report row
/// (primary/secondary/OS/idle, as in the paper's stacked bars).
pub fn cpu_row(label: &str, qps: f64, r: &BoxReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{qps:.0}"),
        pct(r.breakdown.fraction(TenantClass::Primary)),
        pct(r.breakdown.fraction(TenantClass::Secondary)),
        pct(r.breakdown.fraction(TenantClass::Os)),
        pct(r.breakdown.idle_fraction()),
    ]
}

/// A fresh latency table.
pub fn latency_table() -> Table {
    Table::new(&["case", "qps", "p50 (ms)", "p95 (ms)", "p99 (ms)", "dropped"])
}

/// A fresh CPU-utilization table.
pub fn cpu_table() -> Table {
    Table::new(&["case", "qps", "primary", "secondary", "os", "idle"])
}

/// Prints a bench section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_columns() {
        let t = latency_table();
        assert!(t.render().contains("p99"));
        let t = cpu_table();
        assert!(t.render().contains("secondary"));
    }
}
