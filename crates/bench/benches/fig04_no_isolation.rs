//! Figure 4 — single-machine IndexServe standalone vs. colocated with an
//! unrestricted secondary (mid = 24 threads, high = 48 threads).
//!
//! Paper result (shape): standalone p50 ≈ 4 ms / p99 ≈ 12 ms at both loads;
//! a mid secondary lifts p99 to 15–18 ms (up to +42 %); a high secondary
//! collapses it to ~349–354 ms (29×) with 11–32 % of queries dropped, and
//! the primary's own CPU share inflates as it compensates.

use perfiso_bench::{
    cpu_row, cpu_table, latency_row, latency_table, policy_cell, section, standalone_cell,
};
use scenarios::Policy;
use workloads::BullyIntensity;

fn main() {
    section("Fig 4a: query response latency (no isolation)");
    let mut lat = latency_table();
    let mut cpu = cpu_table();
    for qps in [2_000.0, 4_000.0] {
        let r = standalone_cell(qps);
        lat.row_owned(latency_row("standalone", qps, &r));
        cpu.row_owned(cpu_row("standalone", qps, &r));
    }
    for qps in [2_000.0, 4_000.0] {
        let r = policy_cell(Policy::NoIsolation, BullyIntensity::Mid, qps);
        lat.row_owned(latency_row("mid secondary (24 thr)", qps, &r));
        cpu.row_owned(cpu_row("mid secondary (24 thr)", qps, &r));
    }
    for qps in [2_000.0, 4_000.0] {
        let r = policy_cell(Policy::NoIsolation, BullyIntensity::High, qps);
        lat.row_owned(latency_row("high secondary (48 thr)", qps, &r));
        cpu.row_owned(cpu_row("high secondary (48 thr)", qps, &r));
    }
    print!("{}", lat.render());
    section("Fig 4b: CPU utilization");
    print!("{}", cpu.render());
    println!("\npaper: standalone p99 = 12 ms; mid p99 = 15-18 ms; high p99 = 349-354 ms (29x), 11-32% dropped");
}
