//! Figure 10 — the 650-machine production experiment: IndexServe colocated
//! with an ML-training batch job over one hour of live, diurnally varying
//! load, under blind isolation.
//!
//! Paper result (shape): CPU utilization averages ~70 % over the hour while
//! the TLA-level p99 stays flat as QPS moves.
//!
//! Substitution (documented in DESIGN.md): the hour is sampled per minute
//! on a few representative machines (steady-state DES slices) and
//! extrapolated to the fleet; the reported p99 here is per-machine. The
//! experiment is the registry's `fig10` scenario.

use perfiso_bench::section;
use scenarios::scale_multiplier;
use scenarios::spec::{self, run_spec, RunOptions, TargetSpec};
use telemetry::table::Table;

fn main() {
    // `PERFISO_SCALE` shrinks the per-minute DES slice (and samples a
    // single machine) so the hour-long series stays affordable on small
    // machines; the diurnal shape is unaffected.
    let scale = scale_multiplier();
    let mut spec = spec::named("fig10").expect("registered scenario");
    if scale < 1.0 {
        if let TargetSpec::Fleet {
            ref mut sampled_machines,
            ref mut slice_ms,
            ..
        } = spec.target
        {
            *slice_ms = (*slice_ms as f64 * scale.max(0.2)) as u64;
            *sampled_machines = 1;
        }
        spec.validate().expect("still a valid spec");
    }
    let (fleet_machines, minutes, sampled) = match spec.target {
        TargetSpec::Fleet {
            fleet_machines,
            minutes,
            sampled_machines,
            ..
        } => (fleet_machines, minutes, sampled_machines),
        _ => unreachable!("fig10 is a fleet scenario"),
    };
    section(&format!(
        "Fig 10: {fleet_machines}-machine fleet over {minutes} minutes ({sampled} sampled machines/minute)"
    ));
    let result = run_spec(&spec, &RunOptions::parallel(None)).expect("runnable scenario");
    let report = result.runs[0].as_fleet().expect("fleet target");

    let mut t = Table::new(&[
        "minute",
        "qps/machine",
        "p99 (ms)",
        "cpu util",
        "trainer mb/min",
    ]);
    for (i, ((qb, pb), (ub, gb))) in report
        .qps
        .iter()
        .zip(report.p99_ms.iter())
        .map(|((_, q), (_, p))| (q, p))
        .zip(
            report
                .utilization_pct
                .iter()
                .zip(report.trainer_progress.iter())
                .map(|((_, u), (_, g))| (u, g)),
        )
        .enumerate()
    {
        // Print every fifth minute to keep the table readable.
        if i % 5 == 0 {
            t.row_owned(vec![
                format!("{i}"),
                format!("{:.0}", qb.mean()),
                format!("{:.2}", pb.mean()),
                format!("{:.0}%", ub.mean()),
                format!("{:.0}", gb.mean()),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nmean utilization over the hour: {:.0}%   max per-minute p99: {:.2} ms",
        report.mean_utilization * 100.0,
        report.max_p99.as_millis_f64()
    );
    println!("paper: utilization averages ~70% over 1 hour with flat TLA p99");
}
