//! Ablation — buffer-core sweep (beyond the paper's 4-vs-8 comparison).
//!
//! Sweeps B ∈ {0, 2, 4, 8, 12, 16} at both loads to expose the tradeoff
//! blind isolation navigates: too few buffer cores and bursts queue (tail
//! degradation); too many and the secondary is starved (lost progress).
//! §6.1.3 picks 8 for IndexServe-class machines.

use perfiso_bench::section;
use scenarios::{blind_isolation, standalone, Scale};
use telemetry::table::{ms, pct, Table};

fn main() {
    let scale = Scale::bench();
    let seed = 42;
    let base2k = standalone(2_000.0, seed, scale);
    let base4k = standalone(4_000.0, seed, scale);

    section("Ablation: buffer-core sweep (high bully)");
    let mut t = Table::new(&[
        "buffer",
        "qps",
        "d-p99 (ms)",
        "p99 (ms)",
        "secondary CPU",
        "SLO met",
    ]);
    for buffer in [0u32, 2, 4, 8, 12, 16] {
        for (qps, base) in [(2_000.0, &base2k), (4_000.0, &base4k)] {
            let r = blind_isolation(buffer, qps, seed, scale);
            let d = r.latency.p99.saturating_sub(base.latency.p99);
            let slo =
                telemetry::slo::RelativeSlo::paper_default(base.latency.p99).check(r.latency.p99);
            t.row_owned(vec![
                format!("{buffer}"),
                format!("{qps:.0}"),
                ms(d),
                ms(r.latency.p99),
                pct(r.breakdown.fraction(telemetry::TenantClass::Secondary)),
                if slo.met { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    print!("{}", t.render());
    println!("\npaper: 8 buffer cores suffice for IndexServe's 99th-percentile SLO (Sec 6.1.3)");
}
