//! Figure 7 — statically restricting the secondary's CPU cycles (45 %,
//! 25 %, 5 % of machine CPU) against a high CPU bully.
//!
//! Paper result (shape): cycle capping fails. Even 5 % causes visible
//! degradation and ~1 % drops; at 45 % the latency difference reaches
//! hundreds of milliseconds and up to ~50 % of queries drop. The mechanism:
//! duty-cycle enforcement lets the bully occupy *all* cores at the start of
//! every period, so freshly woken primary workers queue behind it — the
//! cascade §6.1.4 describes.

use perfiso_bench::{cpu_row, cpu_table, policy_cell, section, standalone_cell};
use scenarios::Policy;
use telemetry::table::{ms, pct, Table};
use workloads::BullyIntensity;

fn main() {
    let base2k = standalone_cell(2_000.0);
    let base4k = standalone_cell(4_000.0);

    section("Fig 7a/7c: latency degradation and dropped queries (CPU-cycle caps)");
    let mut lat = Table::new(&[
        "cycle cap",
        "qps",
        "d-p50 (ms)",
        "d-p95 (ms)",
        "d-p99 (ms)",
        "dropped",
    ]);
    let mut cpu = cpu_table();
    for cap in [0.45, 0.25, 0.05] {
        for (qps, base) in [(2_000.0, &base2k), (4_000.0, &base4k)] {
            let r = policy_cell(Policy::CycleCap(cap), BullyIntensity::High, qps);
            lat.row_owned(vec![
                format!("{:.0}%", cap * 100.0),
                format!("{qps:.0}"),
                ms(r.latency.p50.saturating_sub(base.latency.p50)),
                ms(r.latency.p95.saturating_sub(base.latency.p95)),
                ms(r.latency.p99.saturating_sub(base.latency.p99)),
                pct(r.drop_ratio()),
            ]);
            cpu.row_owned(cpu_row(&format!("{:.0}% cycles", cap * 100.0), qps, &r));
        }
    }
    print!("{}", lat.render());
    section("Fig 7b: CPU utilization");
    print!("{}", cpu.render());
    println!(
        "\npaper: cycle caps always drop queries (50% down to ~1%); even 5% degrades the tail"
    );
}
