//! Criterion micro-benchmarks for the PerfIso controller's hot path.
//!
//! Blind isolation polls "in a tight loop" (§4.1): the per-tick cost of
//! reading the idle mask and computing the target set bounds how tight that
//! loop can be. These benches measure the controller's decision latency and
//! the DWRR bookkeeping, in isolation from the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use perfiso::blind::BlindIsolation;
use perfiso::dwrr::{DwrrConfig, DwrrThrottler, TenantIoConfig};
use perfiso::system::IoTenant;
use simcore::{CoreMask, SimRng};
use std::hint::black_box;

fn bench_blind_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("blind_isolation");
    g.bench_function("update_steady_state", |b| {
        let mut blind = BlindIsolation::new(8, 48);
        blind.update(CoreMask::all(48), CoreMask::EMPTY);
        let idle = CoreMask::all(48).difference(blind.secondary());
        b.iter(|| black_box(blind.update(black_box(idle), CoreMask::EMPTY)));
    });
    g.bench_function("update_oscillating", |b| {
        let mut blind = BlindIsolation::new(8, 48);
        let mut rng = SimRng::seed_from_u64(7);
        b.iter(|| {
            let idle = CoreMask(rng.next_u64()).intersection(CoreMask::all(48));
            black_box(blind.update(black_box(idle), CoreMask::EMPTY))
        });
    });
    g.finish();
}

fn bench_mask_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_mask");
    let a = CoreMask::range(3, 37);
    let m = CoreMask::all(48);
    g.bench_function("take_highest", |b| {
        b.iter(|| black_box(m.difference(a).take_highest(8)))
    });
    g.bench_function("count_iter", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for core in black_box(a).iter() {
                n += core.0 as u32;
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_dwrr(c: &mut Criterion) {
    let mut g = c.benchmark_group("dwrr");
    g.bench_function("observe_and_step_8_tenants", |b| {
        let mut d = DwrrThrottler::new(DwrrConfig::default());
        for i in 0..8 {
            d.configure_tenant(
                IoTenant(i),
                TenantIoConfig {
                    weight: 1.0 + i as f64,
                    min_iops: 50.0,
                },
            );
        }
        b.iter(|| {
            d.observe(black_box(750.0));
            black_box(d.step())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_blind_update, bench_mask_ops, bench_dwrr);
criterion_main!(benches);
