//! Figure 8 + §6.1.4 progress — all isolation approaches compared at
//! 2 000 QPS against a high (48-thread) CPU bully: p99 latency, idle CPU,
//! and the bully's absolute progress; plus the relative-progress table at
//! both loads.
//!
//! Paper result (shape): blind isolation and static cores both protect the
//! tail (standalone ≈ blind ≈ cores ≪ cycles ≪ none = 349 ms), but blind
//! isolation leaves ~13 % less CPU idle than static cores and lets the
//! secondary do ~17 % more work. Relative progress vs unrestricted: blind
//! 62 %/25 %, cores 45 %/30 %, cycles 9 %/9 %.

use perfiso_bench::{policy_cell, section};
use scenarios::Policy;
use telemetry::table::{ms, pct, Table};
use workloads::BullyIntensity;

fn main() {
    let policies = [
        Policy::Standalone,
        Policy::NoIsolation,
        Policy::Blind { buffer_cores: 8 },
        Policy::StaticCores(8),
        Policy::CycleCap(0.05),
    ];

    section("Fig 8: comparison at 2000 QPS, high secondary");
    let mut t = Table::new(&[
        "policy",
        "p99 (ms)",
        "idle CPU",
        "bully progress (cpu-s)",
        "dropped",
    ]);
    let mut cpu_unrestricted_2k = 0.0f64;
    for p in policies {
        let r = policy_cell(p, BullyIntensity::High, 2_000.0);
        if p == Policy::NoIsolation {
            cpu_unrestricted_2k = r.secondary_cpu.as_secs_f64();
        }
        t.row_owned(vec![
            p.label(),
            ms(r.latency.p99),
            pct(r.breakdown.idle_fraction()),
            format!("{:.1}", r.secondary_cpu.as_secs_f64()),
            pct(r.drop_ratio()),
        ]);
    }
    print!("{}", t.render());

    section("Sec 6.1.4: secondary progress relative to unrestricted");
    let mut rel = Table::new(&["policy", "2000 QPS", "4000 QPS"]);
    let cpu_unrestricted_4k = policy_cell(Policy::NoIsolation, BullyIntensity::High, 4_000.0)
        .secondary_cpu
        .as_secs_f64();
    for p in [
        Policy::Blind { buffer_cores: 8 },
        Policy::StaticCores(8),
        Policy::CycleCap(0.05),
    ] {
        let r2 = policy_cell(p, BullyIntensity::High, 2_000.0);
        let r4 = policy_cell(p, BullyIntensity::High, 4_000.0);
        rel.row_owned(vec![
            p.label(),
            pct(r2.secondary_cpu.as_secs_f64() / cpu_unrestricted_2k.max(1e-9)),
            pct(r4.secondary_cpu.as_secs_f64() / cpu_unrestricted_4k.max(1e-9)),
        ]);
    }
    print!("{}", rel.render());
    println!("\npaper: p99 standalone=12, none=349, blind~12.5, cores~12.5, cycles fails;");
    println!("paper: progress blind 62%/25%, cores 45%/30%, cycles 9%/9%; blind idles 13% less CPU than cores");
}
