//! Figure 5 — CPU blind isolation with 4 vs 8 buffer cores against a high
//! (48-thread) CPU bully.
//!
//! Paper result (shape): with 8 buffer logical cores the p99 degradation
//! stays under 1 ms at both 2 000 and 4 000 QPS while the secondary soaks
//! the remaining cores; 4 buffer cores are not quite enough. The abstract's
//! headline: colocation lifts average CPU utilization from 21 % to 66 % at
//! off-peak load.

use perfiso_bench::{cpu_row, cpu_table, policy_cell, section, standalone_cell};
use scenarios::Policy;
use telemetry::table::{ms, Table};
use workloads::BullyIntensity;

fn main() {
    let base2k = standalone_cell(2_000.0);
    let base4k = standalone_cell(4_000.0);

    section("Fig 5a: query latency degradation vs standalone (blind isolation)");
    let mut lat = Table::new(&[
        "buffer",
        "qps",
        "d-p50 (ms)",
        "d-p95 (ms)",
        "d-p99 (ms)",
        "p99 (ms)",
    ]);
    let mut cpu = cpu_table();
    let mut util_2k_colocated = 0.0;
    for buffer in [4u32, 8] {
        for (qps, base) in [(2_000.0, &base2k), (4_000.0, &base4k)] {
            let r = policy_cell(
                Policy::Blind {
                    buffer_cores: buffer,
                },
                BullyIntensity::High,
                qps,
            );
            lat.row_owned(vec![
                format!("{buffer} cores"),
                format!("{qps:.0}"),
                ms(r.latency.p50.saturating_sub(base.latency.p50)),
                ms(r.latency.p95.saturating_sub(base.latency.p95)),
                ms(r.latency.p99.saturating_sub(base.latency.p99)),
                ms(r.latency.p99),
            ]);
            cpu.row_owned(cpu_row(&format!("{buffer} buffer cores"), qps, &r));
            if buffer == 8 && qps == 2_000.0 {
                util_2k_colocated = r.breakdown.utilization();
            }
        }
    }
    print!("{}", lat.render());
    section("Fig 5b: CPU utilization");
    print!("{}", cpu.render());
    section("Abstract claim: off-peak utilization lift");
    println!(
        "standalone 2000 QPS utilization: {:.0}%  ->  colocated under blind isolation: {:.0}%",
        base2k.breakdown.utilization() * 100.0,
        util_2k_colocated * 100.0
    );
    println!("\npaper: 8 buffer cores keep p99 within 1 ms of standalone; utilization 21% -> 66%");
}
