//! Criterion micro-benchmarks for the simulation substrate.
//!
//! Event throughput of the DES engine and the machine scheduler bounds how
//! much experiment the harness can afford; regressions here silently stretch
//! every figure's runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::{EventQueue, SimDuration, SimTime};
use simcpu::programs::ComputeLoop;
use simcpu::{CoreMask, Machine, MachineConfig};
use std::hint::black_box;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use telemetry::TenantClass;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1_000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.sample_size(20);
    g.bench_function("advance_100ms_48core_busy", |b| {
        b.iter(|| {
            let mut m = Machine::with_seed(MachineConfig::paper_server(), 11);
            let job = m.create_job(TenantClass::Secondary, CoreMask::all(48));
            for i in 0..48 {
                let p = Arc::new(AtomicU64::new(0));
                m.spawn_thread(
                    SimTime::ZERO,
                    job,
                    Box::new(ComputeLoop::new(SimDuration::from_micros(100), p)),
                    i,
                );
            }
            m.advance_to(SimTime::from_millis(100));
            black_box(m.breakdown())
        })
    });
    g.bench_function("idle_core_mask", |b| {
        let mut m = Machine::with_seed(MachineConfig::paper_server(), 12);
        let job = m.create_job(TenantClass::Primary, CoreMask::all(48));
        for i in 0..20 {
            let p = Arc::new(AtomicU64::new(0));
            m.spawn_thread(
                SimTime::ZERO,
                job,
                Box::new(ComputeLoop::new(SimDuration::from_millis(10), p)),
                i,
            );
        }
        b.iter(|| black_box(m.idle_core_mask()));
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_machine);
criterion_main!(benches);
