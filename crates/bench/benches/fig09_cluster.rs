//! Figure 9 — the 75-machine production cluster (22 columns × 2 rows + 31
//! TLAs) at ~8 000 QPS total, measured at three layers: local IndexServe,
//! MLA, and TLA; baseline vs CPU-bound vs disk-bound secondaries under full
//! PerfIso.
//!
//! Paper result (shape): with PerfIso active the per-layer p99 rises by at
//! most 0.8 / 0.4 / 1.1 ms (CPU-bound) and 0.8 / 1.2 / 1.1 ms (disk-bound)
//! over the baseline. The paper runs each experiment 8 times; set
//! `PERFISO_CLUSTER_RUNS` to change the default of 2. Each case is one
//! multi-seed [`ScenarioSpec`]; the seed repetitions fan out across worker
//! threads.

use indexserve::SecondaryKind;
use perfiso_bench::section;
use scenarios::scale_multiplier;
use scenarios::spec::{self, run_spec, RunOptions, ScaleSpec, ScenarioSpec};
use telemetry::table::{ms, Table};
use telemetry::RunStats;
use workloads::{BullyIntensity, DiskBully};

fn runs() -> u32 {
    std::env::var("PERFISO_CLUSTER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// One case of the figure, derived from the registry's `fig09` scenario
/// (the CPU-bound headline cell) so the bench and `perfiso-run run fig09`
/// agree on seed and shape — only the secondary mix, repetition count,
/// and the `PERFISO_SCALE`-stretched window vary per case (the 75-machine
/// cluster is by far the heaviest bench target).
fn paper_case(name: &str, secondary: SecondaryKind) -> ScenarioSpec {
    let mut s = spec::named("fig09").expect("registered scenario");
    s.name = name.to_string();
    s.secondary = secondary;
    s.seeds = runs();
    if let ScaleSpec::Custom {
        ref mut measure_ms, ..
    } = s.scale
    {
        *measure_ms = (*measure_ms as f64 * scale_multiplier().max(0.1)) as u64;
    }
    s.validate().expect("valid cluster spec");
    s
}

struct Layered {
    local: [RunStats; 3],
    mla: [RunStats; 3],
    tla: [RunStats; 3],
    util: RunStats,
}

fn run_case(spec: ScenarioSpec, label: &str, t: &mut Table) -> Layered {
    let report = run_spec(&spec, &RunOptions::parallel(None)).expect("runnable cluster spec");
    let mut acc = Layered {
        local: [RunStats::new(), RunStats::new(), RunStats::new()],
        mla: [RunStats::new(), RunStats::new(), RunStats::new()],
        tla: [RunStats::new(), RunStats::new(), RunStats::new()],
        util: RunStats::new(),
    };
    for run in report.cluster_reports() {
        for (stats, layer) in [
            (&mut acc.local, &run.local),
            (&mut acc.mla, &run.mla),
            (&mut acc.tla, &run.tla),
        ] {
            stats[0].add(layer.avg.as_millis_f64());
            stats[1].add(layer.p95.as_millis_f64());
            stats[2].add(layer.p99.as_millis_f64());
        }
        acc.util.add(run.mean_utilization);
    }
    for (layer_name, s) in [
        ("local IndexServe", &acc.local),
        ("MLA", &acc.mla),
        ("TLA", &acc.tla),
    ] {
        t.row_owned(vec![
            label.to_string(),
            layer_name.to_string(),
            format!("{:.2}", s[0].mean()),
            format!("{:.2}", s[1].mean()),
            format!("{:.2}", s[2].mean()),
        ]);
    }
    acc
}

fn main() {
    section(&format!(
        "Fig 9: 75-machine cluster, 8000 QPS total, {} runs/case",
        runs()
    ));
    let mut t = Table::new(&["secondary", "layer", "avg (ms)", "p95 (ms)", "p99 (ms)"]);

    let base = run_case(
        paper_case(
            "fig09-baseline",
            SecondaryKind {
                hdfs: true,
                ..SecondaryKind::none()
            },
        ),
        "none (baseline)",
        &mut t,
    );
    let cpu = run_case(
        paper_case(
            "fig09-cpu",
            SecondaryKind {
                cpu_bully: Some(BullyIntensity::High),
                disk_bully: None,
                hdfs: true,
            },
        ),
        "CPU-bound",
        &mut t,
    );
    let disk = run_case(
        paper_case(
            "fig09-disk",
            SecondaryKind {
                cpu_bully: None,
                disk_bully: Some(DiskBully::default()),
                hdfs: true,
            },
        ),
        "disk-bound",
        &mut t,
    );
    print!("{}", t.render());

    section("p99 degradation vs baseline (per layer)");
    let mut d = Table::new(&[
        "secondary",
        "d-local (ms)",
        "d-MLA (ms)",
        "d-TLA (ms)",
        "mean util",
    ]);
    for (label, case) in [("CPU-bound", &cpu), ("disk-bound", &disk)] {
        d.row_owned(vec![
            label.to_string(),
            format!("{:.2}", case.local[2].mean() - base.local[2].mean()),
            format!("{:.2}", case.mla[2].mean() - base.mla[2].mean()),
            format!("{:.2}", case.tla[2].mean() - base.tla[2].mean()),
            format!("{:.0}%", case.util.mean() * 100.0),
        ]);
    }
    print!("{}", d.render());
    let _ = ms; // helper kept for format parity with other benches
    println!("\npaper: p99 deltas <= 0.8/0.4/1.1 ms (CPU-bound) and 0.8/1.2/1.1 ms (disk-bound)");
}
