//! Figure 9 — the 75-machine production cluster (22 columns × 2 rows + 31
//! TLAs) at ~8 000 QPS total, measured at three layers: local IndexServe,
//! MLA, and TLA; baseline vs CPU-bound vs disk-bound secondaries under full
//! PerfIso.
//!
//! Paper result (shape): with PerfIso active the per-layer p99 rises by at
//! most 0.8 / 0.4 / 1.1 ms (CPU-bound) and 0.8 / 1.2 / 1.1 ms (disk-bound)
//! over the baseline. The paper runs each experiment 8 times; set
//! `PERFISO_CLUSTER_RUNS` to change the default of 2.

use cluster::{ClusterConfig, ClusterSim};
use indexserve::SecondaryKind;
use perfiso_bench::section;
use telemetry::table::{ms, Table};
use telemetry::RunStats;
use workloads::{BullyIntensity, DiskBully};

fn runs() -> u64 {
    std::env::var("PERFISO_CLUSTER_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// The `PERFISO_SCALE` multiplier applied to the measured window (the
/// 75-machine cluster is by far the heaviest bench target).
fn scale() -> f64 {
    std::env::var("PERFISO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64)
        .max(0.1)
}

struct Layered {
    local: [RunStats; 3],
    mla: [RunStats; 3],
    tla: [RunStats; 3],
    util: RunStats,
}

fn run_case(secondary: SecondaryKind, label: &str, t: &mut Table) -> Layered {
    let mut acc = Layered {
        local: [RunStats::new(), RunStats::new(), RunStats::new()],
        mla: [RunStats::new(), RunStats::new(), RunStats::new()],
        tla: [RunStats::new(), RunStats::new(), RunStats::new()],
        util: RunStats::new(),
    };
    for run in 0..runs() {
        let mut cfg = ClusterConfig::paper_cluster(secondary.clone(), 0xF19 + run * 7);
        cfg.measure = cfg.measure.mul_f64(scale());
        let report = ClusterSim::new(cfg).run();
        for (stats, layer) in [
            (&mut acc.local, &report.local),
            (&mut acc.mla, &report.mla),
            (&mut acc.tla, &report.tla),
        ] {
            stats[0].add(layer.avg.as_millis_f64());
            stats[1].add(layer.p95.as_millis_f64());
            stats[2].add(layer.p99.as_millis_f64());
        }
        acc.util.add(report.mean_utilization);
    }
    for (layer_name, s) in [
        ("local IndexServe", &acc.local),
        ("MLA", &acc.mla),
        ("TLA", &acc.tla),
    ] {
        t.row_owned(vec![
            label.to_string(),
            layer_name.to_string(),
            format!("{:.2}", s[0].mean()),
            format!("{:.2}", s[1].mean()),
            format!("{:.2}", s[2].mean()),
        ]);
    }
    acc
}

fn main() {
    section(&format!(
        "Fig 9: 75-machine cluster, 8000 QPS total, {} runs/case",
        runs()
    ));
    let mut t = Table::new(&["secondary", "layer", "avg (ms)", "p95 (ms)", "p99 (ms)"]);

    let base = run_case(
        SecondaryKind {
            hdfs: true,
            ..SecondaryKind::none()
        },
        "none (baseline)",
        &mut t,
    );
    let cpu = run_case(
        SecondaryKind {
            cpu_bully: Some(BullyIntensity::High),
            disk_bully: None,
            hdfs: true,
        },
        "CPU-bound",
        &mut t,
    );
    let disk = run_case(
        SecondaryKind {
            cpu_bully: None,
            disk_bully: Some(DiskBully::default()),
            hdfs: true,
        },
        "disk-bound",
        &mut t,
    );
    print!("{}", t.render());

    section("p99 degradation vs baseline (per layer)");
    let mut d = Table::new(&[
        "secondary",
        "d-local (ms)",
        "d-MLA (ms)",
        "d-TLA (ms)",
        "mean util",
    ]);
    for (label, case) in [("CPU-bound", &cpu), ("disk-bound", &disk)] {
        d.row_owned(vec![
            label.to_string(),
            format!("{:.2}", case.local[2].mean() - base.local[2].mean()),
            format!("{:.2}", case.mla[2].mean() - base.mla[2].mean()),
            format!("{:.2}", case.tla[2].mean() - base.tla[2].mean()),
            format!("{:.0}%", case.util.mean() * 100.0),
        ]);
    }
    print!("{}", d.render());
    let _ = ms; // helper kept for format parity with other benches
    println!("\npaper: p99 deltas <= 0.8/0.4/1.1 ms (CPU-bound) and 0.8/1.2/1.1 ms (disk-bound)");
}
