//! Figure 6 — statically restricting the secondary's CPU cores (24/16/8 of
//! 48) against a high CPU bully.
//!
//! Paper result (shape): degradation grows with the secondary's core count
//! and with load (up to ~4.5 ms at 24 cores / 4 000 QPS); a conservative
//! 8-core allocation protects the tail but strands CPU — the secondary only
//! reaches 17 % of machine CPU at peak.

use perfiso_bench::{cpu_row, cpu_table, policy_cell, section, standalone_cell};
use scenarios::Policy;
use telemetry::table::{ms, Table};
use workloads::BullyIntensity;

fn main() {
    let base2k = standalone_cell(2_000.0);
    let base4k = standalone_cell(4_000.0);

    section("Fig 6a: latency degradation vs standalone (static core restriction)");
    let mut lat = Table::new(&[
        "secondary cores",
        "qps",
        "d-p50 (ms)",
        "d-p95 (ms)",
        "d-p99 (ms)",
        "p99 (ms)",
    ]);
    let mut cpu = cpu_table();
    for cores in [24u32, 16, 8] {
        for (qps, base) in [(2_000.0, &base2k), (4_000.0, &base4k)] {
            let r = policy_cell(Policy::StaticCores(cores), BullyIntensity::High, qps);
            lat.row_owned(vec![
                format!("{cores}"),
                format!("{qps:.0}"),
                ms(r.latency.p50.saturating_sub(base.latency.p50)),
                ms(r.latency.p95.saturating_sub(base.latency.p95)),
                ms(r.latency.p99.saturating_sub(base.latency.p99)),
                ms(r.latency.p99),
            ]);
            cpu.row_owned(cpu_row(&format!("{cores} cores"), qps, &r));
        }
    }
    print!("{}", lat.render());
    section("Fig 6b: CPU utilization");
    print!("{}", cpu.render());
    println!("\npaper: degradation grows with secondary cores and load (<= ~4.5 ms); 8-core secondary reaches only 17% CPU at peak");
}
