//! Crash handling and restart policy.
//!
//! Autopilot restarts failed services. A bounded exponential backoff guards
//! against crash loops; after too many failures in a window the service is
//! left down for operator attention (with PerfIso's kill switch, §4.2, that
//! is the safe state: secondaries simply stay unrestricted or get stopped).

use serde::{Deserialize, Serialize};

use crate::registry::{ServiceRegistry, ServiceState};

/// The manager's verdict after a crash report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartDecision {
    /// Restart after the given backoff (milliseconds of wall time).
    RestartAfterMs(u64),
    /// Crash-looping: give up and page an operator.
    GiveUp,
}

/// Restart policy parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartPolicy {
    /// Initial backoff in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff multiplier per consecutive failure.
    pub multiplier: u32,
    /// Give up after this many consecutive failures.
    pub max_failures: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            base_backoff_ms: 1_000,
            multiplier: 2,
            max_failures: 5,
        }
    }
}

/// Tracks consecutive failures per service and applies the restart policy.
///
/// # Examples
///
/// ```
/// use autopilot::{RestartDecision, ServiceKind, ServiceManager, ServiceRegistry};
///
/// let mut reg = ServiceRegistry::new();
/// reg.register("perfiso", ServiceKind::Infrastructure, vec![77]);
/// let mut mgr = ServiceManager::new(Default::default());
/// let d = mgr.report_crash(&mut reg, "perfiso");
/// assert_eq!(d, RestartDecision::RestartAfterMs(1_000));
/// mgr.report_started(&mut reg, "perfiso", vec![78]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServiceManager {
    policy: RestartPolicy,
    consecutive_failures: std::collections::BTreeMap<String, u32>,
}

impl ServiceManager {
    /// Creates a manager with the given policy.
    pub fn new(policy: RestartPolicy) -> Self {
        ServiceManager {
            policy,
            consecutive_failures: Default::default(),
        }
    }

    /// Records a crash; marks the service failed and returns the decision.
    pub fn report_crash(&mut self, registry: &mut ServiceRegistry, name: &str) -> RestartDecision {
        registry.set_state(name, ServiceState::Failed);
        let count = self
            .consecutive_failures
            .entry(name.to_string())
            .or_insert(0);
        *count += 1;
        if *count > self.policy.max_failures {
            return RestartDecision::GiveUp;
        }
        let backoff = self
            .policy
            .base_backoff_ms
            .saturating_mul((self.policy.multiplier as u64).saturating_pow(*count - 1));
        RestartDecision::RestartAfterMs(backoff)
    }

    /// Records a successful (re)start with fresh PIDs; resets the failure
    /// counter.
    pub fn report_started(&mut self, registry: &mut ServiceRegistry, name: &str, pids: Vec<u32>) {
        self.consecutive_failures.remove(name);
        registry.update_pids(name, pids);
        registry.set_state(name, ServiceState::Running);
    }

    /// Consecutive failure count for a service.
    pub fn failure_count(&self, name: &str) -> u32 {
        self.consecutive_failures.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServiceKind;

    fn setup() -> (ServiceRegistry, ServiceManager) {
        let mut reg = ServiceRegistry::new();
        reg.register("perfiso", ServiceKind::Infrastructure, vec![1]);
        (reg, ServiceManager::new(RestartPolicy::default()))
    }

    #[test]
    fn backoff_grows_exponentially() {
        let (mut reg, mut mgr) = setup();
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(1_000)
        );
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(2_000)
        );
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(4_000)
        );
        assert_eq!(reg.get("perfiso").unwrap().state, ServiceState::Failed);
    }

    #[test]
    fn gives_up_after_max_failures() {
        let (mut reg, mut mgr) = setup();
        for _ in 0..5 {
            assert!(matches!(
                mgr.report_crash(&mut reg, "perfiso"),
                RestartDecision::RestartAfterMs(_)
            ));
        }
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::GiveUp
        );
    }

    #[test]
    fn successful_start_resets_counter() {
        let (mut reg, mut mgr) = setup();
        mgr.report_crash(&mut reg, "perfiso");
        mgr.report_crash(&mut reg, "perfiso");
        mgr.report_started(&mut reg, "perfiso", vec![42]);
        assert_eq!(mgr.failure_count("perfiso"), 0);
        assert_eq!(reg.get("perfiso").unwrap().state, ServiceState::Running);
        assert_eq!(reg.get("perfiso").unwrap().pids, vec![42]);
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(1_000)
        );
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let mut reg = ServiceRegistry::new();
        reg.register("perfiso", ServiceKind::Infrastructure, vec![1]);
        let mut mgr = ServiceManager::new(RestartPolicy {
            base_backoff_ms: u64::MAX / 2,
            multiplier: u32::MAX,
            max_failures: 64,
        });
        let mut last = 0;
        for _ in 0..64 {
            match mgr.report_crash(&mut reg, "perfiso") {
                RestartDecision::RestartAfterMs(ms) => {
                    assert!(ms >= last, "backoff must be monotone under saturation");
                    last = ms;
                }
                RestartDecision::GiveUp => panic!("gave up before max_failures"),
            }
        }
        assert_eq!(last, u64::MAX);
    }

    #[test]
    fn give_up_fires_exactly_past_max_failures() {
        let policy = RestartPolicy {
            base_backoff_ms: 10,
            multiplier: 1,
            max_failures: 3,
        };
        let mut reg = ServiceRegistry::new();
        reg.register("perfiso", ServiceKind::Infrastructure, vec![1]);
        let mut mgr = ServiceManager::new(policy);
        for i in 1..=policy.max_failures {
            assert_eq!(
                mgr.report_crash(&mut reg, "perfiso"),
                RestartDecision::RestartAfterMs(10),
                "failure {i} of {} still restarts",
                policy.max_failures
            );
        }
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::GiveUp
        );
        assert_eq!(mgr.failure_count("perfiso"), policy.max_failures + 1);
    }

    #[test]
    fn failure_counters_are_per_service() {
        let mut reg = ServiceRegistry::new();
        reg.register("a", ServiceKind::Secondary, vec![1]);
        reg.register("b", ServiceKind::Secondary, vec![2]);
        let mut mgr = ServiceManager::new(RestartPolicy::default());
        mgr.report_crash(&mut reg, "a");
        mgr.report_crash(&mut reg, "a");
        assert_eq!(
            mgr.report_crash(&mut reg, "b"),
            RestartDecision::RestartAfterMs(1_000),
            "service b starts from the base backoff"
        );
        assert_eq!(mgr.failure_count("a"), 2);
        assert_eq!(mgr.failure_count("b"), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// No parameter choice can make `report_crash` panic, and every
            /// pre-give-up decision is a finite backoff that saturates
            /// rather than overflowing.
            #[test]
            fn prop_backoff_never_panics(
                base in 0u64..=u64::MAX,
                multiplier in 0u32..=u32::MAX,
                max_failures in 1u32..200,
                crashes in 1u32..300,
            ) {
                let mut reg = ServiceRegistry::new();
                reg.register("svc", ServiceKind::Infrastructure, vec![1]);
                let mut mgr = ServiceManager::new(RestartPolicy {
                    base_backoff_ms: base,
                    multiplier,
                    max_failures,
                });
                for i in 1..=crashes {
                    let d = mgr.report_crash(&mut reg, "svc");
                    if i > max_failures {
                        prop_assert_eq!(d, RestartDecision::GiveUp);
                    } else {
                        prop_assert!(matches!(d, RestartDecision::RestartAfterMs(_)));
                    }
                }
            }

            /// A successful run always resets the failure window: the next
            /// crash is decided as if it were the first.
            #[test]
            fn prop_success_resets_window(
                max_failures in 1u32..20,
                crashes in 1u32..40,
            ) {
                let mut reg = ServiceRegistry::new();
                reg.register("svc", ServiceKind::Infrastructure, vec![1]);
                let policy = RestartPolicy {
                    base_backoff_ms: 100,
                    multiplier: 2,
                    max_failures,
                };
                let mut mgr = ServiceManager::new(policy);
                for _ in 0..crashes {
                    mgr.report_crash(&mut reg, "svc");
                }
                mgr.report_started(&mut reg, "svc", vec![9]);
                prop_assert_eq!(mgr.failure_count("svc"), 0);
                prop_assert_eq!(
                    mgr.report_crash(&mut reg, "svc"),
                    RestartDecision::RestartAfterMs(policy.base_backoff_ms)
                );
            }
        }
    }
}
