//! Crash handling and restart policy.
//!
//! Autopilot restarts failed services. A bounded exponential backoff guards
//! against crash loops; after too many failures in a window the service is
//! left down for operator attention (with PerfIso's kill switch, §4.2, that
//! is the safe state: secondaries simply stay unrestricted or get stopped).

use serde::{Deserialize, Serialize};

use crate::registry::{ServiceRegistry, ServiceState};

/// The manager's verdict after a crash report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartDecision {
    /// Restart after the given backoff (milliseconds of wall time).
    RestartAfterMs(u64),
    /// Crash-looping: give up and page an operator.
    GiveUp,
}

/// Restart policy parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RestartPolicy {
    /// Initial backoff in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff multiplier per consecutive failure.
    pub multiplier: u32,
    /// Give up after this many consecutive failures.
    pub max_failures: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            base_backoff_ms: 1_000,
            multiplier: 2,
            max_failures: 5,
        }
    }
}

/// Tracks consecutive failures per service and applies the restart policy.
///
/// # Examples
///
/// ```
/// use autopilot::{RestartDecision, ServiceKind, ServiceManager, ServiceRegistry};
///
/// let mut reg = ServiceRegistry::new();
/// reg.register("perfiso", ServiceKind::Infrastructure, vec![77]);
/// let mut mgr = ServiceManager::new(Default::default());
/// let d = mgr.report_crash(&mut reg, "perfiso");
/// assert_eq!(d, RestartDecision::RestartAfterMs(1_000));
/// mgr.report_started(&mut reg, "perfiso", vec![78]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServiceManager {
    policy: RestartPolicy,
    consecutive_failures: std::collections::BTreeMap<String, u32>,
}

impl ServiceManager {
    /// Creates a manager with the given policy.
    pub fn new(policy: RestartPolicy) -> Self {
        ServiceManager {
            policy,
            consecutive_failures: Default::default(),
        }
    }

    /// Records a crash; marks the service failed and returns the decision.
    pub fn report_crash(&mut self, registry: &mut ServiceRegistry, name: &str) -> RestartDecision {
        registry.set_state(name, ServiceState::Failed);
        let count = self
            .consecutive_failures
            .entry(name.to_string())
            .or_insert(0);
        *count += 1;
        if *count > self.policy.max_failures {
            return RestartDecision::GiveUp;
        }
        let backoff = self
            .policy
            .base_backoff_ms
            .saturating_mul((self.policy.multiplier as u64).saturating_pow(*count - 1));
        RestartDecision::RestartAfterMs(backoff)
    }

    /// Records a successful (re)start with fresh PIDs; resets the failure
    /// counter.
    pub fn report_started(&mut self, registry: &mut ServiceRegistry, name: &str, pids: Vec<u32>) {
        self.consecutive_failures.remove(name);
        registry.update_pids(name, pids);
        registry.set_state(name, ServiceState::Running);
    }

    /// Consecutive failure count for a service.
    pub fn failure_count(&self, name: &str) -> u32 {
        self.consecutive_failures.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServiceKind;

    fn setup() -> (ServiceRegistry, ServiceManager) {
        let mut reg = ServiceRegistry::new();
        reg.register("perfiso", ServiceKind::Infrastructure, vec![1]);
        (reg, ServiceManager::new(RestartPolicy::default()))
    }

    #[test]
    fn backoff_grows_exponentially() {
        let (mut reg, mut mgr) = setup();
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(1_000)
        );
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(2_000)
        );
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(4_000)
        );
        assert_eq!(reg.get("perfiso").unwrap().state, ServiceState::Failed);
    }

    #[test]
    fn gives_up_after_max_failures() {
        let (mut reg, mut mgr) = setup();
        for _ in 0..5 {
            assert!(matches!(
                mgr.report_crash(&mut reg, "perfiso"),
                RestartDecision::RestartAfterMs(_)
            ));
        }
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::GiveUp
        );
    }

    #[test]
    fn successful_start_resets_counter() {
        let (mut reg, mut mgr) = setup();
        mgr.report_crash(&mut reg, "perfiso");
        mgr.report_crash(&mut reg, "perfiso");
        mgr.report_started(&mut reg, "perfiso", vec![42]);
        assert_eq!(mgr.failure_count("perfiso"), 0);
        assert_eq!(reg.get("perfiso").unwrap().state, ServiceState::Running);
        assert_eq!(reg.get("perfiso").unwrap().pids, vec![42]);
        assert_eq!(
            mgr.report_crash(&mut reg, "perfiso"),
            RestartDecision::RestartAfterMs(1_000)
        );
    }
}
