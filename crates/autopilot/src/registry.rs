//! The service registry: which services run on this machine, with which
//! process ids and tenant role.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The role of a service on a colocated machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ServiceKind {
    /// The latency-sensitive primary tenant (runs unrestricted).
    Primary,
    /// A best-effort secondary tenant (managed by PerfIso).
    Secondary,
    /// Infrastructure (PerfIso itself, Autopilot agents, HDFS daemons).
    Infrastructure,
}

/// Lifecycle state of a registered service.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ServiceState {
    /// Running normally.
    Running,
    /// Stopped on purpose.
    Stopped,
    /// Crashed; awaiting a restart decision.
    Failed,
}

/// A registered service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceInfo {
    /// Unique service name ("indexserve", "yarn-nodemanager", ...).
    pub name: String,
    /// Role on this machine.
    pub kind: ServiceKind,
    /// Process ids belonging to the service.
    pub pids: Vec<u32>,
    /// Current lifecycle state.
    pub state: ServiceState,
}

/// The per-machine service registry.
///
/// PerfIso reads secondary-tenant PIDs from here instead of scanning the
/// process table — "Autopilot eases this task by keeping a list of running
/// services and their respective information" (§4).
///
/// # Examples
///
/// ```
/// use autopilot::{ServiceKind, ServiceRegistry};
///
/// let mut r = ServiceRegistry::new();
/// r.register("indexserve", ServiceKind::Primary, vec![100]);
/// r.register("spark-executor", ServiceKind::Secondary, vec![200, 201]);
/// assert_eq!(r.secondary_pids(), vec![200, 201]);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServiceRegistry {
    services: BTreeMap<String, ServiceInfo>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Registers (or replaces) a service in the `Running` state.
    pub fn register(&mut self, name: &str, kind: ServiceKind, pids: Vec<u32>) {
        self.services.insert(
            name.to_string(),
            ServiceInfo {
                name: name.to_string(),
                kind,
                pids,
                state: ServiceState::Running,
            },
        );
    }

    /// Removes a service; returns whether it existed.
    pub fn deregister(&mut self, name: &str) -> bool {
        self.services.remove(name).is_some()
    }

    /// Looks up a service.
    pub fn get(&self, name: &str) -> Option<&ServiceInfo> {
        self.services.get(name)
    }

    /// Updates the PID list of a service (task churn in YARN/Spark).
    ///
    /// Returns false if the service is unknown.
    pub fn update_pids(&mut self, name: &str, pids: Vec<u32>) -> bool {
        match self.services.get_mut(name) {
            Some(s) => {
                s.pids = pids;
                true
            }
            None => false,
        }
    }

    /// Sets a service's lifecycle state. Returns false if unknown.
    pub fn set_state(&mut self, name: &str, state: ServiceState) -> bool {
        match self.services.get_mut(name) {
            Some(s) => {
                s.state = state;
                true
            }
            None => false,
        }
    }

    /// All services, sorted by name.
    pub fn list(&self) -> impl Iterator<Item = &ServiceInfo> {
        self.services.values()
    }

    /// All PIDs of running secondary-tenant services — the set PerfIso
    /// places in its managed job object.
    pub fn secondary_pids(&self) -> Vec<u32> {
        let mut pids: Vec<u32> = self
            .services
            .values()
            .filter(|s| s.kind == ServiceKind::Secondary && s.state == ServiceState::Running)
            .flat_map(|s| s.pids.iter().copied())
            .collect();
        pids.sort_unstable();
        pids
    }

    /// The primary service, if registered and unique.
    pub fn primary(&self) -> Option<&ServiceInfo> {
        let mut it = self
            .services
            .values()
            .filter(|s| s.kind == ServiceKind::Primary);
        let first = it.next();
        if it.next().is_some() {
            return None;
        }
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = ServiceRegistry::new();
        r.register("indexserve", ServiceKind::Primary, vec![10]);
        assert_eq!(r.get("indexserve").unwrap().pids, vec![10]);
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn secondary_pids_filter_running_secondaries() {
        let mut r = ServiceRegistry::new();
        r.register("indexserve", ServiceKind::Primary, vec![10]);
        r.register("spark", ServiceKind::Secondary, vec![30, 20]);
        r.register("hdfs-datanode", ServiceKind::Infrastructure, vec![40]);
        r.register("yarn-task", ServiceKind::Secondary, vec![50]);
        r.set_state("yarn-task", ServiceState::Stopped);
        assert_eq!(r.secondary_pids(), vec![20, 30]);
    }

    #[test]
    fn update_pids_tracks_churn() {
        let mut r = ServiceRegistry::new();
        r.register("spark", ServiceKind::Secondary, vec![1]);
        assert!(r.update_pids("spark", vec![2, 3]));
        assert_eq!(r.secondary_pids(), vec![2, 3]);
        assert!(!r.update_pids("ghost", vec![9]));
    }

    #[test]
    fn primary_must_be_unique() {
        let mut r = ServiceRegistry::new();
        assert!(r.primary().is_none());
        r.register("a", ServiceKind::Primary, vec![1]);
        assert_eq!(r.primary().unwrap().name, "a");
        r.register("b", ServiceKind::Primary, vec![2]);
        assert!(r.primary().is_none(), "two primaries is a config error");
    }

    #[test]
    fn deregister_removes() {
        let mut r = ServiceRegistry::new();
        r.register("x", ServiceKind::Secondary, vec![1]);
        assert!(r.deregister("x"));
        assert!(!r.deregister("x"));
        assert!(r.secondary_pids().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = ServiceRegistry::new();
        r.register("indexserve", ServiceKind::Primary, vec![10]);
        let json = serde_json::to_string(&r).unwrap();
        let back: ServiceRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("indexserve").unwrap().pids, vec![10]);
    }
}
