//! Autopilot-style cluster management substrate.
//!
//! The paper deploys PerfIso under Autopilot (§4.2): Autopilot distributes
//! cluster-wide configuration files, tracks which services run with which
//! process ids (sparing PerfIso from PID discovery), and restarts crashed
//! services — PerfIso "is fully recoverable ... in the event of a crash,
//! Autopilot will bring it up again, and PerfIso will resume its function by
//! loading its state from disk."
//!
//! This crate reproduces that substrate in-memory:
//!
//! - [`ServiceRegistry`] — the list of running services and their PIDs.
//! - [`ConfigStore`] — versioned cluster-wide configuration documents.
//! - [`ServiceManager`] — crash reporting and restart with bounded backoff.

pub mod config_store;
pub mod manager;
pub mod registry;

pub use config_store::ConfigStore;
pub use manager::{RestartDecision, RestartPolicy, ServiceManager};
pub use registry::{ServiceInfo, ServiceKind, ServiceRegistry, ServiceState};
