//! Versioned cluster-wide configuration documents.
//!
//! PerfIso reads its static limits "from cluster-wide configuration files
//! distributed through the Autopilot environment", and resource limits "can
//! be altered independently at runtime by issuing a command" (§4). The
//! store keeps one JSON document per key with a monotonically increasing
//! version so pollers can detect changes cheaply.

use std::collections::BTreeMap;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// A versioned key→JSON document store.
///
/// # Examples
///
/// ```
/// use autopilot::ConfigStore;
///
/// let mut c = ConfigStore::new();
/// c.put("perfiso", &serde_json::json!({"buffer_cores": 8})).unwrap();
/// let (v, doc): (u64, serde_json::Value) = c.get("perfiso").unwrap();
/// assert_eq!(v, 1);
/// assert_eq!(doc["buffer_cores"], 8);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConfigStore {
    docs: BTreeMap<String, (u64, serde_json::Value)>,
}

impl ConfigStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ConfigStore::default()
    }

    /// Writes a document, bumping its version.
    ///
    /// # Errors
    ///
    /// Returns the serialization error if `doc` cannot be converted to JSON.
    pub fn put<T: Serialize>(&mut self, key: &str, doc: &T) -> Result<u64, serde_json::Error> {
        let value = serde_json::to_value(doc)?;
        let entry = self
            .docs
            .entry(key.to_string())
            .or_insert((0, serde_json::Value::Null));
        entry.0 += 1;
        entry.1 = value;
        Ok(entry.0)
    }

    /// Reads a document and its version.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Option<(u64, T)> {
        let (v, doc) = self.docs.get(key)?;
        serde_json::from_value(doc.clone()).ok().map(|t| (*v, t))
    }

    /// The current version of a key (0 when absent).
    pub fn version(&self, key: &str) -> u64 {
        self.docs.get(key).map(|(v, _)| *v).unwrap_or(0)
    }

    /// Returns the document only if its version is newer than `seen`.
    pub fn get_if_newer<T: DeserializeOwned>(&self, key: &str, seen: u64) -> Option<(u64, T)> {
        if self.version(key) > seen {
            self.get(key)
        } else {
            None
        }
    }

    /// All keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Limits {
        disk_mb_s: u64,
    }

    #[test]
    fn put_bumps_version() {
        let mut c = ConfigStore::new();
        assert_eq!(c.version("k"), 0);
        assert_eq!(c.put("k", &Limits { disk_mb_s: 20 }).unwrap(), 1);
        assert_eq!(c.put("k", &Limits { disk_mb_s: 60 }).unwrap(), 2);
        let (v, l): (u64, Limits) = c.get("k").unwrap();
        assert_eq!(v, 2);
        assert_eq!(l, Limits { disk_mb_s: 60 });
    }

    #[test]
    fn get_if_newer_polling() {
        let mut c = ConfigStore::new();
        c.put("k", &Limits { disk_mb_s: 20 }).unwrap();
        let (v, _): (u64, Limits) = c.get_if_newer("k", 0).unwrap();
        assert_eq!(v, 1);
        assert!(c.get_if_newer::<Limits>("k", 1).is_none());
        c.put("k", &Limits { disk_mb_s: 30 }).unwrap();
        assert!(c.get_if_newer::<Limits>("k", 1).is_some());
    }

    #[test]
    fn missing_key_is_none() {
        let c = ConfigStore::new();
        assert!(c.get::<Limits>("nope").is_none());
    }

    #[test]
    fn type_mismatch_is_none() {
        let mut c = ConfigStore::new();
        c.put("k", &serde_json::json!("a string")).unwrap();
        assert!(c.get::<Limits>("k").is_none());
    }

    #[test]
    fn keys_sorted() {
        let mut c = ConfigStore::new();
        c.put("b", &1u32).unwrap();
        c.put("a", &2u32).unwrap();
        let keys: Vec<&str> = c.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
