//! Speculative cluster synchronization: optimistic box advance with
//! checkpoint/rollback.
//!
//! The conservative main loop advances every box only to the global
//! minimum event time — each box pays a scheduling rendezvous per event
//! even though cross-box interactions (fabric deliveries) are orders of
//! magnitude rarer than box-internal events. Speculation lets a box run
//! *ahead* of the delivery barrier inside a bounded window:
//!
//! 1. **Checkpoint** — snapshot the box ([`BoxSim::snapshot`]) at its
//!    committed instant, plus every `checkpoint_stride` micro-steps.
//! 2. **Run ahead** — advance the box event-by-event up to the window
//!    horizon, recording each internal step time and stashing the events
//!    it produced (tagged with their production time) instead of routing
//!    them.
//! 3. **Release** — as the global clock reaches each recorded step time,
//!    the stashed events are routed exactly where the conservative drain
//!    would have routed them. Because the global loop visits every
//!    recorded step time (they feed the next-event scan), the released
//!    sequence is identical to the conservative one.
//! 4. **Rollback** — a fabric delivery landing at `t` before the box's
//!    speculative frontier invalidates the run-ahead: restore the latest
//!    checkpoint older than `t`, silently replay the already-released
//!    steps (the box is deterministic, so they regenerate byte-identical
//!    events, which are discarded), and hand the box back to the
//!    conservative path at its committed state.
//!
//! Determinism is the correctness oracle: with speculation on, every
//! report is byte-identical to the serial conservative run — rollbacks
//! cost time, never accuracy.

use std::collections::VecDeque;

use indexserve::{BoxEvent, BoxSim, BoxSnapshot};
use serde::Serialize;
use simcore::{SimDuration, SimTime};

/// Speculative-sync tuning knobs on [`crate::ClusterConfig`].
#[derive(Clone, Copy, Debug)]
pub struct SpeculationConfig {
    /// Master switch; `false` (the default) keeps the conservative
    /// lock-step loop untouched.
    pub enabled: bool,
    /// How far past the committed clock a box may run ahead. Larger
    /// windows amortize the checkpoint over more steps but make a
    /// rollback replay longer.
    pub window: SimDuration,
    /// Micro-steps between mid-window checkpoints; smaller strides cut
    /// replay length at the cost of more snapshot copies.
    pub checkpoint_stride: u32,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            enabled: false,
            window: SimDuration::from_micros(500),
            checkpoint_stride: 16,
        }
    }
}

/// What speculation actually did during a run (reported honestly even
/// when the rollback ratio says it was a net loss).
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SpeculationStats {
    /// Speculation sessions started (one per checkpoint-and-run-ahead).
    pub sessions: u64,
    /// Box snapshots taken (window starts plus mid-window strides).
    pub checkpoints: u64,
    /// Sessions killed by a fabric delivery landing before the frontier.
    pub rollbacks: u64,
    /// Sessions unwound administratively (warm-up capture, end of run).
    pub unwinds: u64,
    /// Sessions fully released: every speculated step was used as-is.
    pub commits: u64,
    /// Speculated micro-steps released without rework.
    pub released_steps: u64,
    /// Micro-steps re-executed while replaying after a rollback/unwind.
    pub replayed_steps: u64,
}

impl SpeculationStats {
    /// Fraction of sessions that ended in a rollback (administrative
    /// unwinds excluded); above ~0.5 the speculation is thrashing.
    pub fn rollback_ratio(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.sessions as f64
        }
    }
}

/// One recorded run-ahead step: the instant the box processed its
/// internal events, and the events it produced there.
pub(crate) struct SpecStep {
    pub(crate) at: SimTime,
    pub(crate) events: Vec<BoxEvent>,
}

/// Per-box speculation session. Inactive (default) between sessions; a
/// box with an active session has its real clock at the frontier while
/// the cluster loop sees only the unreleased step times.
#[derive(Default)]
pub(crate) struct SpecState {
    /// Unreleased run-ahead steps, strictly ascending in time.
    pub(crate) steps: VecDeque<SpecStep>,
    /// Restore points: the session-start state plus one per stride.
    pub(crate) checkpoints: Vec<(SimTime, BoxSnapshot)>,
    /// Events released at the current global step, awaiting the drain
    /// phase (kept out of the box so its buffer stays speculation-clean).
    pub(crate) released: Vec<BoxEvent>,
}

impl SpecState {
    /// True while a run-ahead session holds unreleased steps.
    pub(crate) fn active(&self) -> bool {
        !self.checkpoints.is_empty()
    }

    /// Time of the first unreleased step, if a session is active.
    pub(crate) fn front_at(&self) -> Option<SimTime> {
        self.steps.front().map(|s| s.at)
    }

    /// Retires a fully-released session: the box's real clock at the
    /// frontier *is* the committed state, so only restore points drop.
    pub(crate) fn commit(&mut self) {
        debug_assert!(self.steps.is_empty(), "commit with unreleased steps");
        self.checkpoints.clear();
    }

    /// Discards the session after a rollback restored the box.
    pub(crate) fn reset(&mut self) {
        self.steps.clear();
        self.checkpoints.clear();
    }
}

/// Starts a run-ahead session: checkpoint, then advance the box through
/// its own events up to `horizon`, recording each step. A box with
/// nothing due inside the window, or one that cannot snapshot (a hosted
/// program without `ThreadProgram::clone_box`), is left untouched on the
/// conservative path.
pub(crate) fn speculate_box(b: &mut BoxSim, spec: &mut SpecState, horizon: SimTime, stride: u32) {
    debug_assert!(!spec.active(), "re-speculating an active session");
    debug_assert!(spec.released.is_empty(), "unrouted released events");
    if b.next_event_time().is_none_or(|u| u > horizon) {
        return;
    }
    let Some(snap) = b.snapshot() else {
        return;
    };
    spec.checkpoints.push((b.now(), snap));
    let stride = stride.max(1);
    let mut since_ckpt = 0u32;
    while let Some(u) = b.next_event_time().filter(|&u| u <= horizon) {
        b.advance_to(u);
        let mut events = Vec::new();
        b.drain_events_into(&mut events);
        spec.steps.push_back(SpecStep { at: u, events });
        since_ckpt += 1;
        // A mid-window restore point, but only if more steps are coming —
        // a checkpoint at the frontier could never be restored to.
        if since_ckpt >= stride && b.next_event_time().is_some_and(|n| n <= horizon) {
            if let Some(s) = b.snapshot() {
                spec.checkpoints.push((u, s));
            }
            since_ckpt = 0;
        }
    }
    debug_assert!(!spec.steps.is_empty(), "session started with no steps");
}

/// Unwinds a session so the box observes `target` exactly as the serial
/// simulation would: restore the newest checkpoint older than `target`,
/// then replay the box's own steps up to (but excluding) `target`,
/// discarding the regenerated events — they were already routed when the
/// global clock released them. Returns the number of replayed steps.
///
/// Steps at exactly `target` are deliberately *not* replayed: the
/// injection that triggered this rollback advances the box to `target`
/// itself, processing those events in serial order and leaving their
/// output in the box buffer for the caller's drain.
pub(crate) fn rollback_box(
    b: &mut BoxSim,
    spec: &mut SpecState,
    target: SimTime,
    scratch: &mut Vec<BoxEvent>,
) -> u64 {
    debug_assert!(
        spec.released.is_empty(),
        "rollback with unrouted released events"
    );
    let k = spec
        .checkpoints
        .iter()
        .rposition(|(at, _)| *at < target)
        .expect("session checkpoints start strictly before any later global step");
    b.restore(&spec.checkpoints[k].1);
    let mut replayed = 0u64;
    while let Some(u) = b.next_event_time().filter(|&u| u < target) {
        b.advance_to(u);
        scratch.clear();
        b.drain_events_into(scratch);
        replayed += 1;
    }
    scratch.clear();
    spec.reset();
    replayed
}
