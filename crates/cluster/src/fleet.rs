//! Fleet-scale production experiment (Fig 10).
//!
//! The paper's Fig 10 shows a 650-machine IndexServe cluster colocated with
//! an ML-training batch job over one hour: live QPS varies, TLA p99 stays
//! flat, CPU utilization averages ~70 %.
//!
//! Simulating 650 machines × 1 hour with full DES is out of budget, so the
//! hour is reproduced by **per-minute steady-state sampling**: for each
//! minute, a handful of representative machines run a short DES slice at
//! that minute's load (from the [`qtrace::DiurnalCurve`]) with the ML
//! trainer colocated under blind isolation; per-minute results extrapolate
//! fleet-wide. DESIGN.md documents this substitution.
//!
//! # Parallelism
//!
//! Every `(minute, machine)` slice is an independent DES run with its own
//! seed (`mix64(cfg.seed) ^ (m << 8) ^ s`), so the sweep fans slices out across
//! [`FleetConfig::threads`] worker threads. Results are collected by slice
//! index and reduced serially in index order, making the parallel report
//! **bit-identical** to `threads: 1`: the per-slice computations never
//! observe each other, and the floating-point reduction happens in one
//! fixed order regardless of which worker finished first.
//!
//! Shared, immutable inputs — the service config, the PerfIso config, and
//! one pre-generated trace template per minute — cross threads behind
//! `Arc`, so a slice allocates no config or Zipf-table state of its own.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use indexserve::{BoxConfig, BoxEvent, BoxSim, SecondaryKind, ServiceConfig};
use perfiso::PerfIsoConfig;
use qtrace::{DiurnalCurve, OpenLoopClient, QuerySpec, TraceConfig, TraceGenerator};
use simcore::{SimDuration, SimTime};
use simcpu::MachineConfig;
use telemetry::{
    LatencyRecorder, ResilienceStats, Sketch, SketchSummary, TelemetryMode, TimeSeries,
};
use workloads::{MlTrainer, ResiliencePolicy};

/// Fleet experiment parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Simulated fleet size (numbers are extrapolated, not simulated).
    pub fleet_machines: u32,
    /// Machines actually simulated per minute.
    pub sampled_machines: u32,
    /// Experiment length in minutes.
    pub minutes: u32,
    /// Per-minute DES slice measured per sampled machine.
    pub slice: SimDuration,
    /// The load curve (per-machine QPS).
    pub curve: DiurnalCurve,
    /// The ML trainer colocated on every machine.
    pub trainer: MlTrainer,
    /// PerfIso configuration.
    pub perfiso: PerfIsoConfig,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the slice sweep: `0` = all available cores,
    /// `1` = serial. The report is bit-identical across thread counts.
    pub threads: usize,
    /// Simulated minutes covered by each sampled slice: slice `m` runs at
    /// the load of wall minute `m * minute_stride`, so a 24-hour day fits
    /// in `1440 / minute_stride` slices. `1` (the default) is the classic
    /// per-minute sweep.
    pub minute_stride: u32,
    /// Hardware roster the sampled machines cycle through (weighted
    /// expansion from [`crate::topology::BoxShape::roster`]). The default
    /// single-entry roster is the paper's uniform 48-core server.
    pub shapes: Vec<MachineConfig>,
    /// Tenant churn: when on, each machine-minute deterministically
    /// reschedules its batch tenant — roughly one slice in eight runs
    /// with the trainer evicted, the rest scale its worker count by
    /// 0.5–1.5×, mimicking a production bin-packer reshuffling batch work.
    pub churn: bool,
    /// Latency-recording backend for the slices. `Sketch` bounds memory
    /// at production scale and adds a fleet-wide merged percentile sketch
    /// to the report.
    pub telemetry: TelemetryMode,
    /// Overload-resilience policy stamped onto every sampled box (`None`
    /// = the classic fleet with no box-level admission control).
    pub resilience: Option<Arc<ResiliencePolicy>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            fleet_machines: 650,
            sampled_machines: 3,
            minutes: 60,
            slice: SimDuration::from_millis(700),
            curve: DiurnalCurve::paper_hour(),
            trainer: MlTrainer {
                workers: 28,
                minibatch: SimDuration::from_millis(2),
                steps_per_sync: 20,
                sync_pause: SimDuration::from_millis(8),
            },
            perfiso: PerfIsoConfig::default(),
            seed: 99,
            threads: 0,
            minute_stride: 1,
            shapes: vec![MachineConfig::paper_server()],
            churn: false,
            telemetry: TelemetryMode::Exact,
            resilience: None,
        }
    }
}

/// The Fig 10 time series.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// Offered QPS per machine, per minute.
    pub qps: TimeSeries,
    /// p99 query latency (ms), per minute (worst sampled machine).
    pub p99_ms: TimeSeries,
    /// Mean CPU utilization (%), per minute.
    pub utilization_pct: TimeSeries,
    /// ML-trainer minibatches completed per machine-minute.
    pub trainer_progress: TimeSeries,
    /// Mean utilization over the whole hour (the paper reports ~70 %).
    pub mean_utilization: f64,
    /// Maximum per-minute p99 (flatness check).
    pub max_p99: SimDuration,
    /// Machine-minute slices simulated.
    pub slices: u64,
    /// Scheduler events processed across all slices (dispatches, context
    /// switches, IPIs, spawns, exits) — the throughput denominator the
    /// fleet bench reports as events/second.
    pub sim_events: u64,
    /// Fleet-wide latency distribution, tree-merged across every slice's
    /// sketch, with its relative-error bound. Present only when the run
    /// used [`TelemetryMode::Sketch`]; exact runs omit the key so
    /// pre-sketch fleet reports are byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency_sketch: Option<SketchSummary>,
    /// Resilience counters merged across every sampled slice (admission
    /// sheds, retries, hedges, breaker trips). Present only when a
    /// mechanism fired, so pre-resilience fleet reports are byte-stable.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resilience: Option<ResilienceStats>,
}

impl FleetReport {
    /// True when every simulation-derived field matches bit-for-bit
    /// (wall-clock measurements excluded) — the equality the parallel ==
    /// serial guarantee promises. The determinism test, the fleet bench,
    /// and this module's own unit test all gate on this one walk so a new
    /// field cannot be forgotten by one of them.
    pub fn bits_eq(&self, other: &FleetReport) -> bool {
        fn series_eq(a: &TimeSeries, b: &TimeSeries) -> bool {
            a.len() == b.len()
                && (0..a.len()).all(|i| {
                    let (x, y) = (a.bucket(i).unwrap(), b.bucket(i).unwrap());
                    x.count == y.count
                        && x.sum.to_bits() == y.sum.to_bits()
                        && x.max.to_bits() == y.max.to_bits()
                })
        }
        self.mean_utilization.to_bits() == other.mean_utilization.to_bits()
            && self.max_p99 == other.max_p99
            && self.slices == other.slices
            && self.sim_events == other.sim_events
            && self.resilience == other.resilience
            && match (&self.latency_sketch, &other.latency_sketch) {
                (None, None) => true,
                (Some(a), Some(b)) => a.bits_eq(b),
                _ => false,
            }
            && series_eq(&self.qps, &other.qps)
            && series_eq(&self.p99_ms, &other.p99_ms)
            && series_eq(&self.utilization_pct, &other.utilization_pct)
            && series_eq(&self.trainer_progress, &other.trainer_progress)
    }
}

/// One slice's measurements, in reduction order.
struct SliceResult {
    utilization: f64,
    p99: SimDuration,
    minibatches_per_min: f64,
    events: u64,
    /// The slice's latency sketch, when the run uses sketch telemetry.
    /// Merged tree-wise in the reduction; counter addition commutes, so
    /// the merged sketch is independent of worker scheduling.
    sketch: Option<Sketch>,
    /// The slice's resilience counters, when any mechanism fired.
    resilience: Option<ResilienceStats>,
}

/// Immutable inputs shared by every slice (and every worker thread).
struct FleetShared {
    service: Arc<ServiceConfig>,
    perfiso: Arc<PerfIsoConfig>,
    /// One trace template per minute, replayed by all of that minute's
    /// sampled machines under independent arrival processes.
    templates: Vec<Arc<Vec<QuerySpec>>>,
    /// Hardware cycle; sampled machine `s` runs shape `s % len`.
    machines: Vec<MachineConfig>,
    /// Avalanched base seed; slice streams derive from this, see [`mix64`].
    mixed_seed: u64,
}

/// SplitMix64 finalizer.
///
/// Multi-seed sweeps hand this driver consecutive base seeds (`seed`,
/// `seed + 1`, …). Deriving per-slice streams by XORing the raw base with
/// small `(minute, machine)` indices would make adjacent repetitions
/// share slice seeds exactly (`base ^ 1 == (base + 1) ^ 0` whenever the
/// low bit is clear), silently collapsing their "independent" samples.
/// Avalanche the base first so nearby seeds differ across all 64 bits.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves a thread-count knob: `0` means all available cores.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Number of queries to pre-generate for one slice at `qps`.
fn slice_queries(qps: f64, total: SimDuration) -> usize {
    (qps * total.as_secs_f64() * 1.05) as usize + 8
}

const WARMUP: SimDuration = SimDuration::from_millis(250);

/// Runs the fleet experiment.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let total = WARMUP + cfg.slice;
    let generator = TraceGenerator::new(TraceConfig {
        queries: 16,
        ..Default::default()
    });
    let stride = cfg.minute_stride.max(1);
    let mixed_seed = mix64(cfg.seed);
    let shared = FleetShared {
        service: Arc::new(ServiceConfig::default()),
        perfiso: Arc::new(cfg.perfiso.clone()),
        templates: (0..cfg.minutes)
            .map(|m| {
                let qps = cfg.curve.qps_at_minute(m * stride);
                let seed = mixed_seed ^ 0xF1EE7 ^ ((m as u64) << 8);
                Arc::new(generator.generate_n(seed, slice_queries(qps, total)))
            })
            .collect(),
        machines: if cfg.shapes.is_empty() {
            vec![MachineConfig::paper_server()]
        } else {
            cfg.shapes.clone()
        },
        mixed_seed,
    };

    let n_slices = (cfg.minutes * cfg.sampled_machines) as usize;
    let run_slice = |idx: usize| -> SliceResult {
        let m = (idx as u32) / cfg.sampled_machines;
        let s = (idx as u32) % cfg.sampled_machines;
        run_fleet_slice(cfg, &shared, m, s)
    };

    let workers = effective_threads(cfg.threads).min(n_slices.max(1));
    let mut results: Vec<Option<SliceResult>> = Vec::with_capacity(n_slices);
    results.resize_with(n_slices, || None);
    if workers <= 1 {
        for (idx, slot) in results.iter_mut().enumerate() {
            *slot = Some(run_slice(idx));
        }
    } else {
        // Work-stealing by atomic index: load balance freely, then scatter
        // results back by slice index so the reduction order is fixed.
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= n_slices {
                                break;
                            }
                            out.push((idx, run_slice(idx)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (idx, r) in handle.join().expect("fleet worker panicked") {
                    results[idx] = Some(r);
                }
            }
        });
    }

    // Serial reduction in slice-index order: identical arithmetic to the
    // fully serial sweep, so parallel output is bit-for-bit the same.
    // (Sketch merging is integer counter addition, also order-safe, but
    // the fixed order keeps the guarantee trivially uniform.)
    let minute = SimDuration::from_secs(60 * stride as u64);
    let mut report = FleetReport {
        qps: TimeSeries::new(minute),
        p99_ms: TimeSeries::new(minute),
        utilization_pct: TimeSeries::new(minute),
        trainer_progress: TimeSeries::new(minute),
        mean_utilization: 0.0,
        max_p99: SimDuration::ZERO,
        slices: n_slices as u64,
        sim_events: 0,
        latency_sketch: None,
        resilience: None,
    };
    let mut util_acc = 0.0;
    let mut sketches: Vec<Sketch> = Vec::new();
    let mut resilience = ResilienceStats::default();
    let mut results = results.into_iter();
    for m in 0..cfg.minutes {
        let qps = cfg.curve.qps_at_minute(m * stride);
        let stamp = SimTime::from_secs(m as u64 * 60 * stride as u64);
        let mut minute_util = 0.0;
        let mut minute_p99 = SimDuration::ZERO;
        let mut minute_prog = 0.0;
        for _ in 0..cfg.sampled_machines {
            let mut r = results.next().flatten().expect("slice result present");
            minute_util += r.utilization / cfg.sampled_machines as f64;
            minute_p99 = minute_p99.max(r.p99);
            minute_prog += r.minibatches_per_min / cfg.sampled_machines as f64;
            report.sim_events += r.events;
            if let Some(sk) = r.sketch.take() {
                sketches.push(sk);
            }
            if let Some(rs) = r.resilience {
                resilience.merge(&rs);
            }
        }
        report.qps.record(stamp, qps);
        report.p99_ms.record(stamp, minute_p99.as_millis_f64());
        report.utilization_pct.record(stamp, minute_util * 100.0);
        report.trainer_progress.record(stamp, minute_prog);
        util_acc += minute_util;
        report.max_p99 = report.max_p99.max(minute_p99);
    }
    report.mean_utilization = util_acc / cfg.minutes as f64;
    report.latency_sketch = Sketch::merge_tree(sketches).map(|s| s.summary());
    report.resilience = (!resilience.is_empty()).then_some(resilience);
    report
}

/// The tenant-churn decision for one machine-minute, derived purely from
/// the slice coordinates so it is identical across thread counts.
fn churned_trainer(cfg: &FleetConfig, shared: &FleetShared, m: u32, s: u32) -> Option<MlTrainer> {
    if !cfg.churn {
        return Some(cfg.trainer.clone());
    }
    let h = mix64(shared.mixed_seed ^ 0xC0FFEE ^ ((m as u64) << 20) ^ ((s as u64) << 2));
    if h.is_multiple_of(8) {
        // The bin-packer scheduled the batch job elsewhere this minute.
        return None;
    }
    // Worker count wobbles 0.5–1.5× around the configured trainer.
    let scale = 0.5 + ((h >> 8) % 101) as f64 / 100.0;
    let workers = ((cfg.trainer.workers as f64 * scale).round() as u32).max(1);
    Some(MlTrainer {
        workers,
        ..cfg.trainer.clone()
    })
}

/// Runs one sampled machine-minute.
fn run_fleet_slice(cfg: &FleetConfig, shared: &FleetShared, m: u32, s: u32) -> SliceResult {
    let seed = shared.mixed_seed ^ ((m as u64) << 8) ^ s as u64;
    let qps = cfg.curve.qps_at_minute(m * cfg.minute_stride.max(1));
    let box_cfg = BoxConfig {
        machine: shared.machines[s as usize % shared.machines.len()],
        service: Arc::clone(&shared.service),
        hosted: Vec::new(),
        // The trainer is spawned via the generic CPU-bully hook: fleet
        // sampling reuses BoxSim by running the trainer as a custom
        // secondary below.
        secondary: SecondaryKind::none(),
        perfiso: Some(Arc::clone(&shared.perfiso)),
        telemetry: cfg.telemetry,
        resilience: cfg.resilience.clone(),
        seed,
        fault: None,
    };
    let mut client =
        OpenLoopClient::replay_shared(Arc::clone(&shared.templates[m as usize]), qps, seed ^ 0xC1);
    let mut sim = BoxSim::new(box_cfg);
    // Spawn the (possibly churned-away or rescaled) trainer into the
    // secondary job.
    let handle = churned_trainer(cfg, shared, m, s).map(|trainer| {
        let (machine, job) = sim.secondary_spawn_access();
        trainer.spawn(machine, job, SimTime::ZERO)
    });
    if let Some(h) = &handle {
        sim.track_secondary_threads(&h.tids);
    }

    let warmup_end = SimTime::ZERO + WARMUP;
    let end = SimTime::ZERO + WARMUP + cfg.slice;
    let mut recorder = cfg.telemetry.recorder();
    let mut warm_snapshot = None;
    let mut prog_at_warm = 0;
    let mut events: Vec<BoxEvent> = Vec::with_capacity(64);

    let record_events =
        |sim: &mut BoxSim, events: &mut Vec<BoxEvent>, recorder: &mut LatencyRecorder| {
            sim.drain_events_into(events);
            for ev in events.drain(..) {
                if let BoxEvent::QueryDone(out) = ev {
                    if out.arrival >= warmup_end {
                        if out.dropped {
                            recorder.record_dropped();
                        } else {
                            recorder.record(out.latency);
                        }
                    }
                }
            }
        };

    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        if warm_snapshot.is_none() && at >= warmup_end {
            sim.advance_to(warmup_end);
            warm_snapshot = Some(sim.breakdown());
            prog_at_warm = handle.as_ref().map_or(0, |h| h.minibatches());
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
        record_events(&mut sim, &mut events, &mut recorder);
    }
    sim.advance_to(end);
    record_events(&mut sim, &mut events, &mut recorder);
    // Snapshot the measurement window before the tail drain so the extra
    // simulated time never leaks into utilization or event counts.
    let warm = warm_snapshot.unwrap_or_else(|| sim.breakdown());
    let window = sim.breakdown().since(&warm);
    let stats = sim.machine_stats();
    let progress = handle.as_ref().map_or(0, |h| h.minibatches()) - prog_at_warm;
    // Stragglers still in flight at the slice end carry deadline events
    // past `end`; without this drain a query that times out there simply
    // vanishes and the sketch undercounts drops. Only drops are recorded
    // from the tail — completions past the slice end stay unrecorded,
    // exactly as before, so drop-free slices are byte-identical.
    let drain_end = end + sim.max_timeout();
    while sim.services_in_flight() > 0 {
        match sim.next_event_time() {
            Some(t) if t <= drain_end => sim.advance_to(t),
            _ => break,
        }
        sim.drain_events_into(&mut events);
        for ev in events.drain(..) {
            if let BoxEvent::QueryDone(out) = ev {
                if out.dropped && out.arrival >= warmup_end {
                    recorder.record_dropped();
                }
            }
        }
    }
    SliceResult {
        utilization: window.utilization(),
        p99: recorder.percentile(0.99),
        minibatches_per_min: progress as f64 / cfg.slice.as_secs_f64() * 60.0,
        events: stats.dispatches + stats.ctx_switches + stats.ipis + stats.spawns + stats.exits,
        sketch: recorder.take_sketch(),
        resilience: sim.resilience_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_fleet_run_has_high_utilization() {
        let cfg = FleetConfig {
            minutes: 3,
            sampled_machines: 1,
            slice: SimDuration::from_millis(400),
            ..Default::default()
        };
        let r = run_fleet(&cfg);
        assert_eq!(r.qps.len(), 3);
        assert_eq!(r.slices, 3);
        assert!(r.sim_events > 0);
        assert!(
            r.mean_utilization > 0.5,
            "colocated fleet should be busy, got {}",
            r.mean_utilization
        );
        assert!(
            r.max_p99 < SimDuration::from_millis(25),
            "p99 stayed flat: {}",
            r.max_p99
        );
    }

    #[test]
    fn production_features_compose_and_stay_deterministic() {
        let base = FleetConfig {
            minutes: 4,
            sampled_machines: 3,
            slice: SimDuration::from_millis(150),
            minute_stride: 15,
            shapes: crate::topology::BoxShape::roster(
                &crate::topology::BoxShape::production_shapes(),
            ),
            churn: true,
            telemetry: TelemetryMode::Sketch,
            curve: DiurnalCurve::production_day(),
            ..Default::default()
        };
        let serial = run_fleet(&FleetConfig {
            threads: 1,
            ..base.clone()
        });
        let parallel = run_fleet(&FleetConfig {
            threads: 4,
            ..base.clone()
        });
        assert!(
            serial.bits_eq(&parallel),
            "production fleet report diverged between serial and parallel"
        );
        // Strided minutes stamp the series at 15-minute buckets.
        assert_eq!(serial.qps.len(), 4);
        assert_eq!(serial.qps.width(), SimDuration::from_secs(900));
        // The merged sketch covers every completed sample and carries
        // its error bound.
        let sk = serial.latency_sketch.expect("sketch telemetry on");
        assert!(sk.count > 0);
        assert!((sk.relative_error - telemetry::Sketch::RELATIVE_ERROR).abs() < 1e-12);
        assert!(sk.p99 >= sk.p50 && sk.max >= sk.p99);
        // Churn must actually vary the trainer mix: with 12 slices at
        // least one should run trainer-free (probability of none being
        // evicted is (7/8)^12 under the deterministic hash, and this
        // seed does evict some).
        let evicted = (0..12u32)
            .filter(|i| {
                let m = i / 3;
                let s = i % 3;
                let h = mix64(mix64(base.seed) ^ 0xC0FFEE ^ ((m as u64) << 20) ^ ((s as u64) << 2));
                h.is_multiple_of(8)
            })
            .count();
        assert!(evicted > 0, "seed 99 should evict at least one trainer");
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let base = FleetConfig {
            minutes: 4,
            sampled_machines: 2,
            slice: SimDuration::from_millis(150),
            ..Default::default()
        };
        let serial = run_fleet(&FleetConfig {
            threads: 1,
            ..base.clone()
        });
        let parallel = run_fleet(&FleetConfig { threads: 4, ..base });
        assert!(
            serial.bits_eq(&parallel),
            "parallel fleet report diverged from serial"
        );
    }
}
