//! Fleet-scale production experiment (Fig 10).
//!
//! The paper's Fig 10 shows a 650-machine IndexServe cluster colocated with
//! an ML-training batch job over one hour: live QPS varies, TLA p99 stays
//! flat, CPU utilization averages ~70 %.
//!
//! Simulating 650 machines × 1 hour with full DES is out of budget, so the
//! hour is reproduced by **per-minute steady-state sampling**: for each
//! minute, a handful of representative machines run a short DES slice at
//! that minute's load (from the [`qtrace::DiurnalCurve`]) with the ML
//! trainer colocated under blind isolation; per-minute results extrapolate
//! fleet-wide. DESIGN.md documents this substitution.
//!
//! # Parallelism
//!
//! Every `(minute, machine)` slice is an independent DES run with its own
//! seed (`mix64(cfg.seed) ^ (m << 8) ^ s`), so the sweep fans slices out across
//! [`FleetConfig::threads`] worker threads. Results are collected by slice
//! index and reduced serially in index order, making the parallel report
//! **bit-identical** to `threads: 1`: the per-slice computations never
//! observe each other, and the floating-point reduction happens in one
//! fixed order regardless of which worker finished first.
//!
//! Shared, immutable inputs — the service config, the PerfIso config, and
//! one pre-generated trace template per minute — cross threads behind
//! `Arc`, so a slice allocates no config or Zipf-table state of its own.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use indexserve::{BoxConfig, BoxEvent, BoxSim, SecondaryKind, ServiceConfig};
use perfiso::PerfIsoConfig;
use qtrace::{DiurnalCurve, OpenLoopClient, QuerySpec, TraceConfig, TraceGenerator};
use simcore::{SimDuration, SimTime};
use simcpu::MachineConfig;
use telemetry::{LatencyRecorder, TimeSeries};
use workloads::MlTrainer;

/// Fleet experiment parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Simulated fleet size (numbers are extrapolated, not simulated).
    pub fleet_machines: u32,
    /// Machines actually simulated per minute.
    pub sampled_machines: u32,
    /// Experiment length in minutes.
    pub minutes: u32,
    /// Per-minute DES slice measured per sampled machine.
    pub slice: SimDuration,
    /// The load curve (per-machine QPS).
    pub curve: DiurnalCurve,
    /// The ML trainer colocated on every machine.
    pub trainer: MlTrainer,
    /// PerfIso configuration.
    pub perfiso: PerfIsoConfig,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the slice sweep: `0` = all available cores,
    /// `1` = serial. The report is bit-identical across thread counts.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            fleet_machines: 650,
            sampled_machines: 3,
            minutes: 60,
            slice: SimDuration::from_millis(700),
            curve: DiurnalCurve::paper_hour(),
            trainer: MlTrainer {
                workers: 28,
                minibatch: SimDuration::from_millis(2),
                steps_per_sync: 20,
                sync_pause: SimDuration::from_millis(8),
            },
            perfiso: PerfIsoConfig::default(),
            seed: 99,
            threads: 0,
        }
    }
}

/// The Fig 10 time series.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FleetReport {
    /// Offered QPS per machine, per minute.
    pub qps: TimeSeries,
    /// p99 query latency (ms), per minute (worst sampled machine).
    pub p99_ms: TimeSeries,
    /// Mean CPU utilization (%), per minute.
    pub utilization_pct: TimeSeries,
    /// ML-trainer minibatches completed per machine-minute.
    pub trainer_progress: TimeSeries,
    /// Mean utilization over the whole hour (the paper reports ~70 %).
    pub mean_utilization: f64,
    /// Maximum per-minute p99 (flatness check).
    pub max_p99: SimDuration,
    /// Machine-minute slices simulated.
    pub slices: u64,
    /// Scheduler events processed across all slices (dispatches, context
    /// switches, IPIs, spawns, exits) — the throughput denominator the
    /// fleet bench reports as events/second.
    pub sim_events: u64,
}

impl FleetReport {
    /// True when every simulation-derived field matches bit-for-bit
    /// (wall-clock measurements excluded) — the equality the parallel ==
    /// serial guarantee promises. The determinism test, the fleet bench,
    /// and this module's own unit test all gate on this one walk so a new
    /// field cannot be forgotten by one of them.
    pub fn bits_eq(&self, other: &FleetReport) -> bool {
        fn series_eq(a: &TimeSeries, b: &TimeSeries) -> bool {
            a.len() == b.len()
                && (0..a.len()).all(|i| {
                    let (x, y) = (a.bucket(i).unwrap(), b.bucket(i).unwrap());
                    x.count == y.count
                        && x.sum.to_bits() == y.sum.to_bits()
                        && x.max.to_bits() == y.max.to_bits()
                })
        }
        self.mean_utilization.to_bits() == other.mean_utilization.to_bits()
            && self.max_p99 == other.max_p99
            && self.slices == other.slices
            && self.sim_events == other.sim_events
            && series_eq(&self.qps, &other.qps)
            && series_eq(&self.p99_ms, &other.p99_ms)
            && series_eq(&self.utilization_pct, &other.utilization_pct)
            && series_eq(&self.trainer_progress, &other.trainer_progress)
    }
}

/// One slice's measurements, in reduction order.
struct SliceResult {
    utilization: f64,
    p99: SimDuration,
    minibatches_per_min: f64,
    events: u64,
}

/// Immutable inputs shared by every slice (and every worker thread).
struct FleetShared {
    service: Arc<ServiceConfig>,
    perfiso: Arc<PerfIsoConfig>,
    /// One trace template per minute, replayed by all of that minute's
    /// sampled machines under independent arrival processes.
    templates: Vec<Arc<Vec<QuerySpec>>>,
    machine: MachineConfig,
    /// Avalanched base seed; slice streams derive from this, see [`mix64`].
    mixed_seed: u64,
}

/// SplitMix64 finalizer.
///
/// Multi-seed sweeps hand this driver consecutive base seeds (`seed`,
/// `seed + 1`, …). Deriving per-slice streams by XORing the raw base with
/// small `(minute, machine)` indices would make adjacent repetitions
/// share slice seeds exactly (`base ^ 1 == (base + 1) ^ 0` whenever the
/// low bit is clear), silently collapsing their "independent" samples.
/// Avalanche the base first so nearby seeds differ across all 64 bits.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves a thread-count knob: `0` means all available cores.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Number of queries to pre-generate for one slice at `qps`.
fn slice_queries(qps: f64, total: SimDuration) -> usize {
    (qps * total.as_secs_f64() * 1.05) as usize + 8
}

const WARMUP: SimDuration = SimDuration::from_millis(250);

/// Runs the fleet experiment.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let total = WARMUP + cfg.slice;
    let generator = TraceGenerator::new(TraceConfig {
        queries: 16,
        ..Default::default()
    });
    let mixed_seed = mix64(cfg.seed);
    let shared = FleetShared {
        service: Arc::new(ServiceConfig::default()),
        perfiso: Arc::new(cfg.perfiso.clone()),
        templates: (0..cfg.minutes)
            .map(|m| {
                let qps = cfg.curve.qps_at_minute(m);
                let seed = mixed_seed ^ 0xF1EE7 ^ ((m as u64) << 8);
                Arc::new(generator.generate_n(seed, slice_queries(qps, total)))
            })
            .collect(),
        machine: MachineConfig::paper_server(),
        mixed_seed,
    };

    let n_slices = (cfg.minutes * cfg.sampled_machines) as usize;
    let run_slice = |idx: usize| -> SliceResult {
        let m = (idx as u32) / cfg.sampled_machines;
        let s = (idx as u32) % cfg.sampled_machines;
        run_fleet_slice(cfg, &shared, m, s)
    };

    let workers = effective_threads(cfg.threads).min(n_slices.max(1));
    let mut results: Vec<Option<SliceResult>> = Vec::with_capacity(n_slices);
    results.resize_with(n_slices, || None);
    if workers <= 1 {
        for (idx, slot) in results.iter_mut().enumerate() {
            *slot = Some(run_slice(idx));
        }
    } else {
        // Work-stealing by atomic index: load balance freely, then scatter
        // results back by slice index so the reduction order is fixed.
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= n_slices {
                                break;
                            }
                            out.push((idx, run_slice(idx)));
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                for (idx, r) in handle.join().expect("fleet worker panicked") {
                    results[idx] = Some(r);
                }
            }
        });
    }

    // Serial reduction in slice-index order: identical arithmetic to the
    // fully serial sweep, so parallel output is bit-for-bit the same.
    let minute = SimDuration::from_secs(60);
    let mut report = FleetReport {
        qps: TimeSeries::new(minute),
        p99_ms: TimeSeries::new(minute),
        utilization_pct: TimeSeries::new(minute),
        trainer_progress: TimeSeries::new(minute),
        mean_utilization: 0.0,
        max_p99: SimDuration::ZERO,
        slices: n_slices as u64,
        sim_events: 0,
    };
    let mut util_acc = 0.0;
    let mut results = results.into_iter();
    for m in 0..cfg.minutes {
        let qps = cfg.curve.qps_at_minute(m);
        let stamp = SimTime::from_secs(m as u64 * 60);
        let mut minute_util = 0.0;
        let mut minute_p99 = SimDuration::ZERO;
        let mut minute_prog = 0.0;
        for _ in 0..cfg.sampled_machines {
            let r = results.next().flatten().expect("slice result present");
            minute_util += r.utilization / cfg.sampled_machines as f64;
            minute_p99 = minute_p99.max(r.p99);
            minute_prog += r.minibatches_per_min / cfg.sampled_machines as f64;
            report.sim_events += r.events;
        }
        report.qps.record(stamp, qps);
        report.p99_ms.record(stamp, minute_p99.as_millis_f64());
        report.utilization_pct.record(stamp, minute_util * 100.0);
        report.trainer_progress.record(stamp, minute_prog);
        util_acc += minute_util;
        report.max_p99 = report.max_p99.max(minute_p99);
    }
    report.mean_utilization = util_acc / cfg.minutes as f64;
    report
}

/// Runs one sampled machine-minute.
fn run_fleet_slice(cfg: &FleetConfig, shared: &FleetShared, m: u32, s: u32) -> SliceResult {
    let seed = shared.mixed_seed ^ ((m as u64) << 8) ^ s as u64;
    let qps = cfg.curve.qps_at_minute(m);
    let box_cfg = BoxConfig {
        machine: shared.machine,
        service: Arc::clone(&shared.service),
        hosted: Vec::new(),
        // The trainer is spawned via the generic CPU-bully hook: fleet
        // sampling reuses BoxSim by running the trainer as a custom
        // secondary below.
        secondary: SecondaryKind::none(),
        perfiso: Some(Arc::clone(&shared.perfiso)),
        seed,
        fault: None,
    };
    let mut client =
        OpenLoopClient::replay_shared(Arc::clone(&shared.templates[m as usize]), qps, seed ^ 0xC1);
    let mut sim = BoxSim::new(box_cfg);
    // Spawn the trainer into the secondary job.
    let handle = {
        let (machine, job) = sim.secondary_spawn_access();
        cfg.trainer.spawn(machine, job, SimTime::ZERO)
    };
    sim.track_secondary_threads(&handle.tids);

    let warmup_end = SimTime::ZERO + WARMUP;
    let end = SimTime::ZERO + WARMUP + cfg.slice;
    let mut recorder = LatencyRecorder::new();
    let mut warm_snapshot = None;
    let mut prog_at_warm = 0;
    let mut events: Vec<BoxEvent> = Vec::with_capacity(64);

    let record_events =
        |sim: &mut BoxSim, events: &mut Vec<BoxEvent>, recorder: &mut LatencyRecorder| {
            sim.drain_events_into(events);
            for ev in events.drain(..) {
                if let BoxEvent::QueryDone(out) = ev {
                    if out.arrival >= warmup_end && !out.dropped {
                        recorder.record(out.latency);
                    }
                }
            }
        };

    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        if warm_snapshot.is_none() && at >= warmup_end {
            sim.advance_to(warmup_end);
            warm_snapshot = Some(sim.breakdown());
            prog_at_warm = handle.minibatches();
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
        record_events(&mut sim, &mut events, &mut recorder);
    }
    sim.advance_to(end);
    record_events(&mut sim, &mut events, &mut recorder);
    let warm = warm_snapshot.unwrap_or_else(|| sim.breakdown());
    let window = sim.breakdown().since(&warm);
    let stats = sim.machine_stats();
    SliceResult {
        utilization: window.utilization(),
        p99: recorder.percentile(0.99),
        minibatches_per_min: (handle.minibatches() - prog_at_warm) as f64 / cfg.slice.as_secs_f64()
            * 60.0,
        events: stats.dispatches + stats.ctx_switches + stats.ipis + stats.spawns + stats.exits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_fleet_run_has_high_utilization() {
        let cfg = FleetConfig {
            minutes: 3,
            sampled_machines: 1,
            slice: SimDuration::from_millis(400),
            ..Default::default()
        };
        let r = run_fleet(&cfg);
        assert_eq!(r.qps.len(), 3);
        assert_eq!(r.slices, 3);
        assert!(r.sim_events > 0);
        assert!(
            r.mean_utilization > 0.5,
            "colocated fleet should be busy, got {}",
            r.mean_utilization
        );
        assert!(
            r.max_p99 < SimDuration::from_millis(25),
            "p99 stayed flat: {}",
            r.max_p99
        );
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let base = FleetConfig {
            minutes: 4,
            sampled_machines: 2,
            slice: SimDuration::from_millis(150),
            ..Default::default()
        };
        let serial = run_fleet(&FleetConfig {
            threads: 1,
            ..base.clone()
        });
        let parallel = run_fleet(&FleetConfig { threads: 4, ..base });
        assert!(
            serial.bits_eq(&parallel),
            "parallel fleet report diverged from serial"
        );
    }
}
