//! Fleet-scale production experiment (Fig 10).
//!
//! The paper's Fig 10 shows a 650-machine IndexServe cluster colocated with
//! an ML-training batch job over one hour: live QPS varies, TLA p99 stays
//! flat, CPU utilization averages ~70 %.
//!
//! Simulating 650 machines × 1 hour with full DES is out of budget, so the
//! hour is reproduced by **per-minute steady-state sampling**: for each
//! minute, a handful of representative machines run a short DES slice at
//! that minute's load (from the [`qtrace::DiurnalCurve`]) with the ML
//! trainer colocated under blind isolation; per-minute results extrapolate
//! fleet-wide. DESIGN.md documents this substitution.

use indexserve::{BoxConfig, SecondaryKind, ServiceConfig};
use perfiso::PerfIsoConfig;
use qtrace::{DiurnalCurve, TraceConfig};
use simcore::{SimDuration, SimTime};
use simcpu::MachineConfig;
use telemetry::TimeSeries;
use workloads::MlTrainer;

/// Fleet experiment parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Simulated fleet size (numbers are extrapolated, not simulated).
    pub fleet_machines: u32,
    /// Machines actually simulated per minute.
    pub sampled_machines: u32,
    /// Experiment length in minutes.
    pub minutes: u32,
    /// Per-minute DES slice measured per sampled machine.
    pub slice: SimDuration,
    /// The load curve (per-machine QPS).
    pub curve: DiurnalCurve,
    /// The ML trainer colocated on every machine.
    pub trainer: MlTrainer,
    /// PerfIso configuration.
    pub perfiso: PerfIsoConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            fleet_machines: 650,
            sampled_machines: 3,
            minutes: 60,
            slice: SimDuration::from_millis(700),
            curve: DiurnalCurve::paper_hour(),
            trainer: MlTrainer {
                workers: 28,
                minibatch: SimDuration::from_millis(2),
                steps_per_sync: 20,
                sync_pause: SimDuration::from_millis(8),
            },
            perfiso: PerfIsoConfig::default(),
            seed: 99,
        }
    }
}

/// The Fig 10 time series.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Offered QPS per machine, per minute.
    pub qps: TimeSeries,
    /// p99 query latency (ms), per minute (worst sampled machine).
    pub p99_ms: TimeSeries,
    /// Mean CPU utilization (%), per minute.
    pub utilization_pct: TimeSeries,
    /// ML-trainer minibatches completed per machine-minute.
    pub trainer_progress: TimeSeries,
    /// Mean utilization over the whole hour (the paper reports ~70 %).
    pub mean_utilization: f64,
    /// Maximum per-minute p99 (flatness check).
    pub max_p99: SimDuration,
}

/// Runs the fleet experiment.
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    let minute = SimDuration::from_secs(60);
    let mut qps_series = TimeSeries::new(minute);
    let mut p99_series = TimeSeries::new(minute);
    let mut util_series = TimeSeries::new(minute);
    let mut prog_series = TimeSeries::new(minute);
    let mut util_acc = 0.0;
    let mut max_p99 = SimDuration::ZERO;

    for m in 0..cfg.minutes {
        let qps = cfg.curve.qps_at_minute(m);
        let stamp = SimTime::from_secs(m as u64 * 60);
        let mut minute_util = 0.0;
        let mut minute_p99 = SimDuration::ZERO;
        let mut minute_prog = 0.0;
        for s in 0..cfg.sampled_machines {
            let box_cfg = BoxConfig {
                machine: MachineConfig::paper_server(),
                service: ServiceConfig::default(),
                // The trainer is spawned via the generic CPU-bully hook:
                // fleet sampling reuses BoxSim by running the trainer as a
                // custom secondary below.
                secondary: SecondaryKind::none(),
                perfiso: Some(cfg.perfiso.clone()),
                seed: cfg.seed ^ ((m as u64) << 8) ^ s as u64,
            };
            let report = run_fleet_slice(box_cfg, &cfg.trainer, qps, cfg.slice);
            minute_util += report.0 / cfg.sampled_machines as f64;
            minute_p99 = minute_p99.max(report.1);
            minute_prog += report.2 / cfg.sampled_machines as f64;
        }
        qps_series.record(stamp, qps);
        p99_series.record(stamp, minute_p99.as_millis_f64());
        util_series.record(stamp, minute_util * 100.0);
        prog_series.record(stamp, minute_prog);
        util_acc += minute_util;
        max_p99 = max_p99.max(minute_p99);
    }

    FleetReport {
        qps: qps_series,
        p99_ms: p99_series,
        utilization_pct: util_series,
        trainer_progress: prog_series,
        mean_utilization: util_acc / cfg.minutes as f64,
        max_p99,
    }
}

/// Runs one sampled machine-minute: returns (utilization, p99, minibatches).
fn run_fleet_slice(
    cfg: BoxConfig,
    trainer: &MlTrainer,
    qps: f64,
    slice: SimDuration,
) -> (f64, SimDuration, f64) {
    use indexserve::BoxSim;
    use qtrace::OpenLoopClient;
    use telemetry::LatencyRecorder;

    let warmup = SimDuration::from_millis(250);
    let total = warmup + slice;
    let n = (qps * total.as_secs_f64() * 1.05) as usize + 8;
    let trace = qtrace::TraceGenerator::new(TraceConfig { queries: n, ..Default::default() })
        .generate(cfg.seed ^ 0xF1EE7);
    let mut client = OpenLoopClient::new(trace, qps, cfg.seed ^ 0xC1);
    let mut sim = BoxSim::new(cfg);
    // Spawn the trainer into the secondary job.
    let handle = {
        let (machine, job) = sim.secondary_spawn_access();
        trainer.spawn(machine, job, SimTime::ZERO)
    };
    sim.track_secondary_threads(&handle.tids);

    let warmup_end = SimTime::ZERO + warmup;
    let end = SimTime::ZERO + total;
    let mut recorder = LatencyRecorder::new();
    let mut warm_snapshot = None;
    let mut prog_at_warm = 0;

    while let Some(at) = client.next_arrival_time() {
        if at > end {
            break;
        }
        if warm_snapshot.is_none() && at >= warmup_end {
            sim.advance_to(warmup_end);
            warm_snapshot = Some(sim.breakdown());
            prog_at_warm = handle.minibatches();
        }
        let (_, spec) = client.pop().expect("peeked");
        sim.inject_query(at, spec);
        for ev in sim.drain_events() {
            if let indexserve::BoxEvent::QueryDone(out) = ev {
                if out.arrival >= warmup_end && !out.dropped {
                    recorder.record(out.latency);
                }
            }
        }
    }
    sim.advance_to(end);
    for ev in sim.drain_events() {
        if let indexserve::BoxEvent::QueryDone(out) = ev {
            if out.arrival >= warmup_end && !out.dropped {
                recorder.record(out.latency);
            }
        }
    }
    let warm = warm_snapshot.unwrap_or_else(|| sim.breakdown());
    let window = sim.breakdown().since(&warm);
    (
        window.utilization(),
        recorder.percentile(0.99),
        (handle.minibatches() - prog_at_warm) as f64 / slice.as_secs_f64() * 60.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_fleet_run_has_high_utilization() {
        let cfg = FleetConfig {
            minutes: 3,
            sampled_machines: 1,
            slice: SimDuration::from_millis(400),
            ..Default::default()
        };
        let r = run_fleet(&cfg);
        assert_eq!(r.qps.len(), 3);
        assert!(
            r.mean_utilization > 0.5,
            "colocated fleet should be busy, got {}",
            r.mean_utilization
        );
        assert!(r.max_p99 < SimDuration::from_millis(25), "p99 stayed flat: {}", r.max_p99);
    }
}
