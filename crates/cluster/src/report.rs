//! Cluster measurement reports.

use indexserve::FaultRecord;
use serde::{Deserialize, Serialize};
use simcore::SimDuration;
use telemetry::recorder::PercentileSummary;
use telemetry::{CpuBreakdown, LatencyRecorder, ResilienceStats, SketchSummary};

/// Latency statistics for one aggregation layer (Fig 9's bar groups).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LayerStats {
    /// Average latency.
    pub avg: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Sample count.
    pub count: u64,
}

impl LayerStats {
    /// Builds layer stats from a recorder.
    pub fn from_recorder(r: &mut LatencyRecorder) -> Self {
        let s: PercentileSummary = r.summary();
        LayerStats {
            avg: s.mean,
            p95: s.p95,
            p99: s.p99,
            count: s.count,
        }
    }
}

/// One cluster run's measurements.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Local IndexServe latency across all index machines.
    pub local: LayerStats,
    /// Mid-level aggregator latency (MLA receipt → response sent).
    pub mla: LayerStats,
    /// Top-level aggregator latency (TLA receipt → response ready).
    pub tla: LayerStats,
    /// Requests completed end-to-end.
    pub completed: u64,
    /// Requests that lost at least one column to a timeout.
    pub degraded: u64,
    /// Mean CPU utilization across index machines.
    pub mean_utilization: f64,
    /// Mean CPU breakdown across index machines.
    pub breakdown: CpuBreakdown,
    /// Executed fault timelines, per index box, when a chaos plan ran.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<BoxFaults>,
    /// End-to-end (TLA) latency sketch with its error bound, when the
    /// run used `TelemetryMode::Sketch`; exact runs omit the key so
    /// pre-sketch reports are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub latency_sketch: Option<SketchSummary>,
    /// Resilience counters merged across every index box (admission
    /// sheds, retries, hedges, breaker trips). Present only when a
    /// resilience mechanism fired somewhere, so pre-resilience cluster
    /// reports serialize unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resilience: Option<ResilienceStats>,
}

/// The fault records one index box executed during a cluster run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoxFaults {
    /// Index-box position in the topology.
    pub box_index: u32,
    /// Faults in firing order.
    pub faults: Vec<FaultRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn layer_stats_from_recorder() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_millis(i));
        }
        let s = LayerStats::from_recorder(&mut r);
        assert_eq!(s.count, 100);
        assert_eq!(s.p99.as_millis(), 99);
        assert!(s.avg > SimDuration::from_millis(49));
    }
}
