//! The cluster layout: rows, columns, TLAs, and node numbering.

use serde::{Deserialize, Serialize};
use simnet::NodeId;

/// The cluster shape (paper default: 22 columns × 2 rows + 31 TLAs = 75).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Index partitions per row.
    pub columns: u32,
    /// Replicated rows.
    pub rows: u32,
    /// Top-level aggregator machines.
    pub tlas: u32,
}

impl Topology {
    /// The paper's 75-machine cluster.
    pub fn paper_cluster() -> Self {
        Topology {
            columns: 22,
            rows: 2,
            tlas: 31,
        }
    }

    /// A small topology for tests.
    pub fn small() -> Self {
        Topology {
            columns: 4,
            rows: 2,
            tlas: 2,
        }
    }

    /// Validates the shape.
    ///
    /// # Errors
    ///
    /// Returns a message for degenerate shapes.
    pub fn validate(&self) -> Result<(), String> {
        if self.columns == 0 || self.rows == 0 || self.tlas == 0 {
            return Err("topology needs at least one column, row, and TLA".into());
        }
        Ok(())
    }

    /// Total index-serving machines.
    pub fn index_machines(&self) -> u32 {
        self.columns * self.rows
    }

    /// Total machines (index + TLA).
    pub fn total_machines(&self) -> u32 {
        self.index_machines() + self.tlas
    }

    /// Network node id of the index machine at `(row, column)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn index_node(&self, row: u32, column: u32) -> NodeId {
        assert!(
            row < self.rows && column < self.columns,
            "({row},{column}) out of range"
        );
        NodeId(row * self.columns + column)
    }

    /// Network node id of TLA machine `t`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn tla_node(&self, t: u32) -> NodeId {
        assert!(t < self.tlas, "tla {t} out of range");
        NodeId(self.index_machines() + t)
    }

    /// Reverse lookup: `(row, column)` of an index node id.
    pub fn index_position(&self, node: NodeId) -> Option<(u32, u32)> {
        if node.0 < self.index_machines() {
            Some((node.0 / self.columns, node.0 % self.columns))
        } else {
            None
        }
    }

    /// Index-machine flat id (0-based over all index machines).
    pub fn index_flat(&self, row: u32, column: u32) -> usize {
        (row * self.columns + column) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_is_75_machines() {
        let t = Topology::paper_cluster();
        assert_eq!(t.index_machines(), 44);
        assert_eq!(t.total_machines(), 75);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn node_numbering_roundtrip() {
        let t = Topology::paper_cluster();
        for row in 0..t.rows {
            for col in 0..t.columns {
                let n = t.index_node(row, col);
                assert_eq!(t.index_position(n), Some((row, col)));
            }
        }
        assert_eq!(t.index_position(t.tla_node(0)), None);
        assert_eq!(t.tla_node(30).0, 74);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_position_panics() {
        let t = Topology::small();
        let _ = t.index_node(5, 0);
    }
}
