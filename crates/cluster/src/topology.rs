//! The cluster layout: rows, columns, TLAs, and node numbering — plus the
//! heterogeneous box shapes a production fleet mixes.

use serde::{Deserialize, Serialize};
use simcpu::MachineConfig;
use simnet::NodeId;

/// The cluster shape (paper default: 22 columns × 2 rows + 31 TLAs = 75).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Index partitions per row.
    pub columns: u32,
    /// Replicated rows.
    pub rows: u32,
    /// Top-level aggregator machines.
    pub tlas: u32,
}

impl Topology {
    /// The paper's 75-machine cluster.
    pub fn paper_cluster() -> Self {
        Topology {
            columns: 22,
            rows: 2,
            tlas: 31,
        }
    }

    /// A small topology for tests.
    pub fn small() -> Self {
        Topology {
            columns: 4,
            rows: 2,
            tlas: 2,
        }
    }

    /// Validates the shape.
    ///
    /// # Errors
    ///
    /// Returns a message for degenerate shapes.
    pub fn validate(&self) -> Result<(), String> {
        if self.columns == 0 || self.rows == 0 || self.tlas == 0 {
            return Err("topology needs at least one column, row, and TLA".into());
        }
        Ok(())
    }

    /// Total index-serving machines.
    pub fn index_machines(&self) -> u32 {
        self.columns * self.rows
    }

    /// Total machines (index + TLA).
    pub fn total_machines(&self) -> u32 {
        self.index_machines() + self.tlas
    }

    /// Network node id of the index machine at `(row, column)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn index_node(&self, row: u32, column: u32) -> NodeId {
        assert!(
            row < self.rows && column < self.columns,
            "({row},{column}) out of range"
        );
        NodeId(row * self.columns + column)
    }

    /// Network node id of TLA machine `t`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn tla_node(&self, t: u32) -> NodeId {
        assert!(t < self.tlas, "tla {t} out of range");
        NodeId(self.index_machines() + t)
    }

    /// Reverse lookup: `(row, column)` of an index node id.
    pub fn index_position(&self, node: NodeId) -> Option<(u32, u32)> {
        if node.0 < self.index_machines() {
            Some((node.0 / self.columns, node.0 % self.columns))
        } else {
            None
        }
    }

    /// Index-machine flat id (0-based over all index machines).
    pub fn index_flat(&self, row: u32, column: u32) -> usize {
        (row * self.columns + column) as usize
    }
}

/// One hardware generation in a heterogeneous fleet.
///
/// Production fleets are never uniform: machines are bought in waves, so
/// at any moment several shapes coexist. A shape's `weight` is its share
/// of the fleet; [`BoxShape::roster`] expands a shape list into a
/// deterministic weighted round-robin of [`MachineConfig`]s for the fleet
/// driver to deal out across machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoxShape {
    /// Human-readable generation label.
    pub name: &'static str,
    /// Logical cores (1..=64).
    pub cores: u32,
    /// Memory in GiB.
    pub memory_gb: u64,
    /// Relative share of the fleet.
    pub weight: u32,
}

impl BoxShape {
    /// The machine this shape describes: the paper server's kernel-cost
    /// model with this generation's core count and memory.
    pub fn machine(&self) -> MachineConfig {
        MachineConfig {
            cores: self.cores,
            memory_bytes: self.memory_gb << 30,
            ..MachineConfig::paper_server()
        }
    }

    /// A production-like mix of three hardware generations: the paper's
    /// 48-core/128 GB workhorse dominating, a trailing wave of smaller
    /// 32-core boxes, and a leading wave of 64-core/256 GB machines.
    pub fn production_shapes() -> Vec<BoxShape> {
        vec![
            BoxShape {
                name: "std-48",
                cores: 48,
                memory_gb: 128,
                weight: 3,
            },
            BoxShape {
                name: "small-32",
                cores: 32,
                memory_gb: 64,
                weight: 2,
            },
            BoxShape {
                name: "big-64",
                cores: 64,
                memory_gb: 256,
                weight: 1,
            },
        ]
    }

    /// Expands a weighted shape list into one weighted cycle of machine
    /// configs (each shape repeated `weight` times, in list order). The
    /// fleet driver indexes into this cycle to assign a deterministic
    /// shape per machine.
    ///
    /// # Panics
    ///
    /// Panics when every weight is zero.
    pub fn roster(shapes: &[BoxShape]) -> Vec<MachineConfig> {
        let cycle: Vec<MachineConfig> = shapes
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.machine(), s.weight as usize))
            .collect();
        assert!(!cycle.is_empty(), "box-shape roster needs a nonzero weight");
        cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_is_75_machines() {
        let t = Topology::paper_cluster();
        assert_eq!(t.index_machines(), 44);
        assert_eq!(t.total_machines(), 75);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn node_numbering_roundtrip() {
        let t = Topology::paper_cluster();
        for row in 0..t.rows {
            for col in 0..t.columns {
                let n = t.index_node(row, col);
                assert_eq!(t.index_position(n), Some((row, col)));
            }
        }
        assert_eq!(t.index_position(t.tla_node(0)), None);
        assert_eq!(t.tla_node(30).0, 74);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_position_panics() {
        let t = Topology::small();
        let _ = t.index_node(5, 0);
    }

    #[test]
    fn production_shapes_expand_by_weight() {
        let shapes = BoxShape::production_shapes();
        let roster = BoxShape::roster(&shapes);
        let total_weight: u32 = shapes.iter().map(|s| s.weight).sum();
        assert_eq!(roster.len(), total_weight as usize);
        // The dominant generation fills the front of the cycle.
        assert_eq!(roster[0].cores, 48);
        assert_eq!(roster[3].cores, 32);
        assert_eq!(roster[5].cores, 64);
        assert_eq!(roster[5].memory_bytes, 256 << 30);
        for m in &roster {
            m.validate().expect("every shape is a valid machine");
        }
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn zero_weight_roster_panics() {
        let _ = BoxShape::roster(&[BoxShape {
            name: "ghost",
            cores: 8,
            memory_gb: 16,
            weight: 0,
        }]);
    }
}
