//! The 75-machine cluster simulation (Fig 9).
//!
//! The main loop is a coupled DES: boxes interact through the fabric, so
//! event routing stays serial and deterministic. The expensive part —
//! advancing many independent boxes to the same instant — fans out across
//! a persistent [`WorkerPool`] of [`ClusterConfig::threads`] workers
//! whenever enough boxes are due at once (controller poll ticks line up
//! on every machine); each box's evolution between routed deliveries is
//! independent, so the parallel run is bit-identical to the serial one.
//!
//! [`SpeculationConfig`] additionally lets boxes run *ahead* of the
//! delivery barrier inside a bounded window, checkpointing first and
//! rolling back when a late cross-box delivery invalidates the run-ahead
//! (see [`crate::speculate`]). Conservative lock-step remains the
//! default, and speculative runs stay byte-identical to serial ones.

use std::collections::HashMap;

use indexserve::{BoxConfig, BoxEvent, BoxSim, FaultPlan, SecondaryKind, ServiceConfig};
use perfiso::PerfIsoConfig;
use qtrace::{OpenLoopClient, QuerySpec, TraceConfig, TraceGenerator};
use simcore::dist::{LogNormal, Sample};
use simcore::{SimDuration, SimRng, SimTime};
use simcpu::MachineConfig;
use simnet::{Delivery, NetConfig, NetSim, NodeId, TrafficClass};
use telemetry::{CpuBreakdown, LatencyRecorder, TelemetryMode};

use crate::pool::WorkerPool;
use crate::report::{ClusterReport, LayerStats};
use crate::speculate::{self, SpecState, SpeculationConfig, SpeculationStats};
use crate::topology::Topology;

/// Cluster experiment configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Cluster shape.
    pub topology: Topology,
    /// Per-index-machine hardware.
    pub machine: MachineConfig,
    /// Service model on each index machine.
    pub service: ServiceConfig,
    /// Secondary tenants on each index machine.
    pub secondary: SecondaryKind,
    /// PerfIso configuration per index machine.
    pub perfiso: Option<PerfIsoConfig>,
    /// Total offered load across the cluster (the paper uses 8 000 QPS,
    /// landing ~4 000 QPS on each machine of each row).
    pub qps_total: f64,
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured window.
    pub measure: SimDuration,
    /// Median MLA aggregation cost (runs on the MLA's machine and contends
    /// with its colocated secondary).
    pub mla_agg_cost_us: f64,
    /// Fixed TLA processing cost per request (TLA machines run clean).
    pub tla_cost: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for advancing boxes in parallel: `0` = all available
    /// cores, `1` = serial. Results are bit-identical across thread counts.
    pub threads: usize,
    /// Cluster-wide fault timeline; each index box receives its slice
    /// (staged config rollouts reach only the leading boxes).
    pub fault: Option<std::sync::Arc<FaultPlan>>,
    /// Latency-recording backend for the boxes and the three layer
    /// recorders. `Exact` (the default) keeps every sample; `Sketch`
    /// bounds memory and adds a TLA sketch summary to the report.
    pub telemetry: TelemetryMode,
    /// Overload-resilience policy stamped onto every index box (`None` =
    /// the classic cluster with no admission control or retries).
    pub resilience: Option<std::sync::Arc<workloads::ResiliencePolicy>>,
    /// Minimum number of boxes due at one instant before the advance (or
    /// a speculation batch) fans out to the worker pool; below it the
    /// hand-off overhead beats the win.
    pub min_par_boxes: usize,
    /// Speculative synchronization: checkpoint boxes and run them ahead
    /// of the delivery barrier, rolling back on late deliveries. Off by
    /// default (conservative lock-step); the `PERFISO_SPECULATE` env var
    /// (`1`/`0`) overrides the switch at construction.
    pub speculation: SpeculationConfig,
}

impl ClusterConfig {
    /// The paper's §5.3 setup with the given secondary.
    pub fn paper_cluster(secondary: SecondaryKind, seed: u64) -> Self {
        ClusterConfig {
            topology: Topology::paper_cluster(),
            machine: MachineConfig::paper_server(),
            service: ServiceConfig::default(),
            secondary,
            perfiso: Some(PerfIsoConfig::paper_cluster()),
            qps_total: 8_000.0,
            warmup: SimDuration::from_millis(400),
            measure: SimDuration::from_millis(1_200),
            mla_agg_cost_us: 260.0,
            tla_cost: SimDuration::from_micros(80),
            seed,
            threads: 0,
            fault: None,
            telemetry: TelemetryMode::Exact,
            resilience: None,
            min_par_boxes: DEFAULT_MIN_PAR_BOXES,
            speculation: SpeculationConfig::default(),
        }
    }
}

/// Default for [`ClusterConfig::min_par_boxes`].
pub const DEFAULT_MIN_PAR_BOXES: usize = 8;

const KIND_SHIFT: u32 = 60;
const REQ_SHIFT: u32 = 16;
const DROP_FLAG: u64 = 0x8000;

fn msg_token(kind: u64, req: u64, aux: u64) -> u64 {
    (kind << KIND_SHIFT) | (req << REQ_SHIFT) | aux
}

fn parse_token(token: u64) -> (u64, u64, u64) {
    (
        token >> KIND_SHIFT,
        (token >> REQ_SHIFT) & ((1 << (KIND_SHIFT - REQ_SHIFT)) - 1),
        token & 0xFFFF,
    )
}

#[derive(Debug)]
struct RequestState {
    tla: u32,
    tla_arrival: SimTime,
    mla_arrival: SimTime,
    row: u32,
    mla_col: u32,
    pending_cols: u32,
    degraded: bool,
    done: bool,
    measured: bool,
}

/// The cluster simulator.
pub struct ClusterSim {
    cfg: ClusterConfig,
    boxes: Vec<BoxSim>,
    net: NetSim,
    requests: Vec<RequestState>,
    /// Per-box map from local query index to request id.
    qmap: Vec<HashMap<u64, u64>>,
    /// Specs awaiting fan-out deliveries, with a remaining-use count.
    specs: HashMap<u64, (QuerySpec, u32)>,
    rr_tla: u32,
    rr_row: u32,
    rr_mla: Vec<u32>,
    agg_dist: LogNormal,
    rng: SimRng,
    local_lat: LatencyRecorder,
    mla_lat: LatencyRecorder,
    tla_lat: LatencyRecorder,
    completed: u64,
    degraded: u64,
    now: SimTime,
    /// Persistent advance workers (`None` when the run is serial).
    pool: Option<WorkerPool>,
    /// Reusable buffers for the per-step fabric drain and box drains.
    scratch_deliveries: Vec<Delivery>,
    scratch_events: Vec<BoxEvent>,
    /// Per-box speculation sessions (all inactive when speculation is
    /// off, which keeps the conservative paths untouched).
    spec: Vec<SpecState>,
    /// Speculation master switch for the current phase; forced off for
    /// the tail drain after the measured window closes.
    spec_on: bool,
    spec_stats: SpeculationStats,
    /// Reusable candidate-index buffer for re-speculation batches.
    spec_candidates: Vec<usize>,
}

impl ClusterSim {
    /// Builds all machines and the fabric.
    ///
    /// # Panics
    ///
    /// Panics on an invalid topology.
    pub fn new(mut cfg: ClusterConfig) -> Self {
        cfg.topology.validate().expect("valid topology");
        // Env override so any existing scenario can run speculatively
        // without a config change (the determinism oracle depends on it).
        match std::env::var("PERFISO_SPECULATE").ok().as_deref() {
            Some("1" | "true" | "on") => cfg.speculation.enabled = true,
            Some("0" | "false" | "off") => cfg.speculation.enabled = false,
            _ => {}
        }
        let n_index = cfg.topology.index_machines();
        // One Arc per run: the 44 index boxes share the service and
        // controller configs instead of cloning them per machine.
        let service = std::sync::Arc::new(cfg.service.clone());
        let perfiso = cfg.perfiso.clone().map(std::sync::Arc::new);
        let boxes: Vec<BoxSim> = (0..n_index)
            .map(|i| {
                BoxSim::new(BoxConfig {
                    machine: cfg.machine,
                    service: std::sync::Arc::clone(&service),
                    hosted: Vec::new(),
                    secondary: cfg.secondary.clone(),
                    perfiso: perfiso.clone(),
                    fault: cfg
                        .fault
                        .as_ref()
                        .and_then(|p| p.slice_for_box(i as usize, n_index as usize))
                        .map(std::sync::Arc::new),
                    telemetry: cfg.telemetry,
                    resilience: cfg.resilience.clone(),
                    seed: cfg.seed ^ (0x9E37 * (i as u64 + 1)),
                })
            })
            .collect();
        let net = NetSim::new(
            NetConfig::default(),
            cfg.topology.total_machines(),
            cfg.seed ^ 0x7E7,
        );
        let qmap = (0..n_index).map(|_| HashMap::new()).collect();
        ClusterSim {
            agg_dist: LogNormal::from_median(cfg.mla_agg_cost_us, 0.4),
            rr_mla: vec![0; cfg.topology.rows as usize],
            boxes,
            net,
            requests: Vec::new(),
            qmap,
            specs: HashMap::new(),
            rr_tla: 0,
            rr_row: 0,
            rng: SimRng::seed_from_u64(cfg.seed ^ 0xC1B5),
            local_lat: cfg.telemetry.recorder(),
            mla_lat: cfg.telemetry.recorder(),
            tla_lat: cfg.telemetry.recorder(),
            completed: 0,
            degraded: 0,
            now: SimTime::ZERO,
            pool: match crate::fleet::effective_threads(cfg.threads) {
                0 | 1 => None,
                workers => Some(WorkerPool::new(workers)),
            },
            scratch_deliveries: Vec::with_capacity(64),
            scratch_events: Vec::with_capacity(64),
            spec: (0..n_index).map(|_| SpecState::default()).collect(),
            spec_on: cfg.speculation.enabled,
            spec_stats: SpeculationStats::default(),
            spec_candidates: Vec::with_capacity(n_index as usize),
            cfg,
        }
    }

    /// Runs the experiment and produces the Fig 9-style report.
    pub fn run(self) -> ClusterReport {
        self.run_impl(None).0
    }

    /// Like [`ClusterSim::run`] but also returns what speculation did
    /// (all-zero counters when it was off). The report itself is
    /// byte-identical to [`ClusterSim::run`]'s.
    pub fn run_with_speculation_stats(self) -> (ClusterReport, SpeculationStats) {
        self.run_impl(None)
    }

    /// Like [`ClusterSim::run`] but reports loop progress to stderr every
    /// `every` iterations (diagnostic aid).
    pub fn run_traced(self, every: u64) -> ClusterReport {
        self.run_impl(Some(every.max(1))).0
    }

    fn run_impl(mut self, trace_every: Option<u64>) -> (ClusterReport, SpeculationStats) {
        let total = self.cfg.warmup + self.cfg.measure;
        let end = SimTime::ZERO + total;
        let n_queries = (self.cfg.qps_total * total.as_secs_f64() * 1.02) as usize + 8;
        let trace = TraceGenerator::new(TraceConfig {
            queries: n_queries,
            ..TraceConfig::default()
        })
        .generate(self.cfg.seed ^ 0x7ACE);
        let mut client = OpenLoopClient::new(trace, self.cfg.qps_total, self.cfg.seed ^ 0xC1);

        let mut warm_bd: Option<Vec<CpuBreakdown>> = None;
        let warmup_end = SimTime::ZERO + self.cfg.warmup;
        let mut iters = 0u64;

        loop {
            let mut t = client.next_arrival_time().unwrap_or(SimTime::MAX);
            if let Some(n) = self.next_any_event() {
                t = t.min(n);
            }
            if t > end || t == SimTime::MAX {
                break;
            }
            if warm_bd.is_none() && t >= warmup_end {
                // Breakdowns must observe the committed present, not a
                // box's speculative future.
                self.despeculate_all();
                warm_bd = Some(self.boxes.iter().map(|b| b.breakdown()).collect());
            }
            self.now = t;
            while client.next_arrival_time() == Some(t) {
                let (_, spec) = client.pop().expect("peeked");
                self.on_client_arrival(t, spec);
            }
            self.step_components(t);
            iters += 1;
            if let Some(every) = trace_every {
                if iters.is_multiple_of(every) {
                    let box_next: Vec<String> = self
                        .boxes
                        .iter()
                        .map(|b| format!("{:?}", b.next_event_time()))
                        .collect();
                    eprintln!(
                        "main loop: iter={iters} now={t} completed={} arrival={:?} net={:?} boxes={:?}",
                        self.completed,
                        client.next_arrival_time(),
                        self.net.next_timer_at(),
                        box_next
                    );
                }
            }
        }

        // Drain the tail: requests in flight resolve within one timeout.
        // Conservatively — run-ahead buys nothing in a winding-down
        // cluster, and the report reads below need committed state.
        self.despeculate_all();
        self.spec_on = false;
        let drain_until = end + self.cfg.service.timeout + SimDuration::from_millis(50);
        while let Some(t) = self.next_any_event().filter(|&t| t <= drain_until) {
            self.now = t;
            self.step_components(t);
            iters += 1;
            if let Some(every) = trace_every {
                if iters.is_multiple_of(every) {
                    eprintln!(
                        "drain loop: iter={iters} now={t} completed={}",
                        self.completed
                    );
                }
            }
        }

        let warm = warm_bd.unwrap_or_else(|| self.boxes.iter().map(|b| b.breakdown()).collect());
        let mut agg = CpuBreakdown::default();
        for (b, w) in self.boxes.iter().zip(warm.iter()) {
            agg.merge(&b.breakdown().since(w));
        }
        let mut faults = Vec::new();
        let mut resilience = telemetry::ResilienceStats::default();
        for (i, b) in self.boxes.iter_mut().enumerate() {
            let records = b.take_fault_records();
            if !records.is_empty() {
                faults.push(crate::report::BoxFaults {
                    box_index: i as u32,
                    faults: records,
                });
            }
            if let Some(r) = b.resilience_report() {
                resilience.merge(&r);
            }
        }
        let report = ClusterReport {
            local: LayerStats::from_recorder(&mut self.local_lat),
            mla: LayerStats::from_recorder(&mut self.mla_lat),
            tla: LayerStats::from_recorder(&mut self.tla_lat),
            latency_sketch: self.tla_lat.sketch_summary(),
            completed: self.completed,
            degraded: self.degraded,
            mean_utilization: agg.utilization(),
            breakdown: agg,
            faults,
            resilience: (!resilience.is_empty()).then_some(resilience),
        };
        (report, self.spec_stats)
    }

    /// Advances network and boxes to `t` and routes everything due.
    fn step_components(&mut self, t: SimTime) {
        self.net.advance_to(t);
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        deliveries.clear();
        self.net.drain_deliveries_into(&mut deliveries);
        // Same-instant delivery order is part of the determinism
        // contract: the global loop stops at every fabric timer, so the
        // drained batch is exactly the messages landing at `t`, in the
        // fabric's send-order tiebreak. Routing (and the speculation
        // rollback decisions below) depend on that order being stable.
        debug_assert!(
            deliveries.iter().all(|d| d.at == t),
            "step batch holds a delivery not due at the step instant"
        );
        for d in deliveries.drain(..) {
            if self.spec_on {
                self.prepare_delivery_target(t, d.to);
            }
            self.on_delivery(t, d.to, d.token);
        }
        self.scratch_deliveries = deliveries;
        if self.spec_on {
            self.release_and_advance(t);
            self.drain_phase(t);
            self.respeculate(t);
        } else {
            self.advance_due_boxes(t);
            for i in 0..self.boxes.len() {
                if self.boxes[i].has_events() {
                    self.drain_box(i, t);
                }
            }
        }
    }

    /// Brings a speculated delivery target back to its committed state so
    /// the injection observes exactly what the serial simulation would.
    /// TLA nodes and unspeculated boxes need nothing.
    fn prepare_delivery_target(&mut self, t: SimTime, to: NodeId) {
        let flat = to.0 as usize;
        if flat >= self.boxes.len() || !self.spec[flat].active() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.scratch_events);
        self.spec_stats.replayed_steps +=
            speculate::rollback_box(&mut self.boxes[flat], &mut self.spec[flat], t, &mut scratch);
        self.scratch_events = scratch;
        self.spec_stats.rollbacks += 1;
    }

    /// The speculative counterpart of [`ClusterSim::advance_due_boxes`]:
    /// speculated boxes whose next recorded step is exactly `t` surrender
    /// that step's events to the drain phase (their real clock is already
    /// past `t`); when the last step releases, the session retires — the
    /// frontier *is* the committed state. Everything off the speculative
    /// path advances conservatively.
    fn release_and_advance(&mut self, t: SimTime) {
        for spec in &mut self.spec {
            if !spec.active() {
                continue;
            }
            let front = spec.front_at().expect("active session has steps");
            debug_assert!(front >= t, "unreleased speculative step skipped");
            if front == t {
                let step = spec.steps.pop_front().expect("front exists");
                debug_assert!(spec.released.is_empty(), "double release in one step");
                spec.released = step.events;
                self.spec_stats.released_steps += 1;
                if spec.steps.is_empty() {
                    spec.commit();
                    self.spec_stats.commits += 1;
                }
            }
        }
        self.advance_due_boxes(t);
    }

    /// Routes everything each box produced at `t`, in box order: first
    /// the events a speculation session released, then anything in the
    /// box's own buffer — the same positions the conservative drain
    /// loop routes from.
    fn drain_phase(&mut self, t: SimTime) {
        for i in 0..self.boxes.len() {
            if !self.spec[i].released.is_empty() {
                let mut events = std::mem::take(&mut self.spec[i].released);
                self.route_events(i, t, &mut events);
                self.spec[i].released = events; // drained; keeps capacity
            }
            if self.boxes[i].has_events() {
                self.drain_box(i, t);
            }
        }
    }

    /// Starts run-ahead sessions for every committed box with work due
    /// inside the speculation window, fanning out to the pool when
    /// enough candidates qualify.
    fn respeculate(&mut self, t: SimTime) {
        let horizon = t + self.cfg.speculation.window;
        let stride = self.cfg.speculation.checkpoint_stride;
        let mut idx = std::mem::take(&mut self.spec_candidates);
        idx.clear();
        for (i, b) in self.boxes.iter().enumerate() {
            if !self.spec[i].active() && b.next_event_time().is_some_and(|n| n <= horizon) {
                idx.push(i);
            }
        }
        let mut pooled = false;
        if idx.len() >= self.cfg.min_par_boxes.max(1) {
            if let Some(pool) = self.pool.as_mut() {
                pool.speculate_batch(&mut self.boxes, &mut self.spec, &idx, horizon, stride);
                pooled = true;
            }
        }
        if !pooled {
            for &i in &idx {
                speculate::speculate_box(&mut self.boxes[i], &mut self.spec[i], horizon, stride);
            }
        }
        for &i in &idx {
            if self.spec[i].active() {
                self.spec_stats.sessions += 1;
                self.spec_stats.checkpoints += self.spec[i].checkpoints.len() as u64;
            }
        }
        self.spec_candidates = idx;
    }

    /// Unwinds every active session so all boxes sit at their committed
    /// state (warm-up captures and report reads must not see the
    /// speculative future).
    fn despeculate_all(&mut self) {
        for i in 0..self.boxes.len() {
            if !self.spec[i].active() {
                continue;
            }
            let target = self.spec[i].front_at().expect("active session has steps");
            let mut scratch = std::mem::take(&mut self.scratch_events);
            self.spec_stats.replayed_steps += speculate::rollback_box(
                &mut self.boxes[i],
                &mut self.spec[i],
                target,
                &mut scratch,
            );
            self.scratch_events = scratch;
            self.spec_stats.unwinds += 1;
        }
    }

    /// Advances every box with work due at or before `t`, handing the
    /// work to the persistent pool when enough boxes are due at the same
    /// instant (poll ticks line up across machines). Boxes evolve
    /// independently between routed deliveries, so the result is
    /// identical to advancing them one by one; the subsequent event drain
    /// always runs serially in box order.
    fn advance_due_boxes(&mut self, t: SimTime) {
        let due = self
            .boxes
            .iter()
            .filter(|b| b.next_event_time().is_some_and(|n| n <= t))
            .count();
        if due == 0 {
            return;
        }
        if due >= self.cfg.min_par_boxes.max(1) {
            if let Some(pool) = self.pool.as_mut() {
                pool.advance_due(&mut self.boxes, t);
                return;
            }
        }
        for b in &mut self.boxes {
            if b.next_event_time().is_some_and(|n| n <= t) {
                b.advance_to(t);
            }
        }
    }

    fn next_any_event(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = self.net.next_timer_at();
        for (i, b) in self.boxes.iter().enumerate() {
            // A speculated box's future is already computed: its next
            // observable step is the first unreleased recorded one, never
            // its real (past-the-frontier) event clock.
            let n = match self.spec[i].front_at() {
                Some(u) => Some(u),
                None => b.next_event_time(),
            };
            if let Some(n) = n {
                t = Some(t.map_or(n, |x: SimTime| x.min(n)));
            }
        }
        t
    }

    fn on_client_arrival(&mut self, now: SimTime, spec: QuerySpec) {
        let topo = self.cfg.topology;
        let tla = self.rr_tla % topo.tlas;
        self.rr_tla += 1;
        let row = self.rr_row % topo.rows;
        self.rr_row += 1;
        let mla_col = self.rr_mla[row as usize] % topo.columns;
        self.rr_mla[row as usize] += 1;

        let req = self.requests.len() as u64;
        self.requests.push(RequestState {
            tla,
            tla_arrival: now,
            mla_arrival: SimTime::ZERO,
            row,
            mla_col,
            pending_cols: topo.columns,
            degraded: false,
            done: false,
            measured: now >= SimTime::ZERO + self.cfg.warmup,
        });
        // One use at the MLA plus one per remote column.
        self.specs.insert(req, (spec, topo.columns));
        self.net.send(
            now + self.cfg.tla_cost,
            topo.tla_node(tla),
            topo.index_node(row, mla_col),
            1 << 10,
            TrafficClass::High,
            msg_token(1, req, 0),
        );
    }

    fn take_spec(&mut self, req: u64) -> QuerySpec {
        let entry = self.specs.get_mut(&req).expect("spec recorded");
        entry.1 -= 1;
        if entry.1 == 0 {
            self.specs.remove(&req).expect("present").0
        } else {
            entry.0.clone()
        }
    }

    fn on_delivery(&mut self, now: SimTime, to: NodeId, token: u64) {
        let (kind, req, aux) = parse_token(token);
        let topo = self.cfg.topology;
        match kind {
            // TLA → MLA: fan out to every column of the row.
            1 => {
                let (row, _) = topo.index_position(to).expect("MLA is an index machine");
                self.requests[req as usize].mla_arrival = now;
                for col in 0..topo.columns {
                    let node = topo.index_node(row, col);
                    if node == to {
                        let spec = self.take_spec(req);
                        let flat = topo.index_flat(row, col);
                        let qidx = self.boxes[flat].inject_query(now, spec);
                        self.qmap[flat].insert(qidx, req);
                        self.drain_box(flat, now);
                    } else {
                        self.net.send(
                            now,
                            to,
                            node,
                            512,
                            TrafficClass::High,
                            msg_token(2, req, col as u64),
                        );
                    }
                }
            }
            // MLA → column: process the query locally.
            2 => {
                let spec = self.take_spec(req);
                let (row, col) = topo.index_position(to).expect("column is an index machine");
                let flat = topo.index_flat(row, col);
                let qidx = self.boxes[flat].inject_query(now, spec);
                self.qmap[flat].insert(qidx, req);
                self.drain_box(flat, now);
            }
            // Column → MLA: one shard response.
            3 => {
                let dropped = aux & DROP_FLAG != 0;
                let (pending, row, mla_col) = {
                    let r = &mut self.requests[req as usize];
                    if dropped {
                        r.degraded = true;
                    }
                    r.pending_cols = r.pending_cols.saturating_sub(1);
                    (r.pending_cols, r.row, r.mla_col)
                };
                if pending == 0 && !self.requests[req as usize].done {
                    let cost = SimDuration::from_micros_f64(self.agg_dist.sample(&mut self.rng));
                    let flat = topo.index_flat(row, mla_col);
                    self.boxes[flat].spawn_primary_aux(now, cost, req);
                    self.drain_box(flat, now);
                }
            }
            // MLA → TLA: the response is ready after the TLA's own cost.
            4 => {
                let done_at = now + self.cfg.tla_cost;
                let r = &mut self.requests[req as usize];
                r.done = true;
                self.completed += 1;
                if r.degraded {
                    self.degraded += 1;
                }
                if r.measured {
                    self.tla_lat.record(done_at.since(r.tla_arrival));
                }
            }
            _ => unreachable!("unknown message kind {kind}"),
        }
    }

    /// Drains one box's events and routes them.
    fn drain_box(&mut self, flat: usize, now: SimTime) {
        let mut events = std::mem::take(&mut self.scratch_events);
        events.clear();
        self.boxes[flat].drain_events_into(&mut events);
        self.route_events(flat, now, &mut events);
        self.scratch_events = events;
    }

    /// Routes box `flat`'s drained `events` (consuming the buffer) —
    /// shared by the live drain and the release of speculated steps.
    fn route_events(&mut self, flat: usize, now: SimTime, events: &mut Vec<BoxEvent>) {
        let topo = self.cfg.topology;
        for ev in events.drain(..) {
            match ev {
                BoxEvent::QueryDone(out) => {
                    let Some(req) = self.qmap[flat].remove(&out.qidx) else {
                        continue;
                    };
                    let (measured, row, mla_col) = {
                        let r = &self.requests[req as usize];
                        (r.measured, r.row, r.mla_col)
                    };
                    if measured {
                        if out.dropped {
                            self.local_lat.record_dropped();
                        } else {
                            self.local_lat.record(out.latency);
                        }
                    }
                    let mla = topo.index_node(row, mla_col);
                    let from = NodeId(flat as u32);
                    let aux = if out.dropped { DROP_FLAG } else { 0 };
                    self.net.send(
                        now,
                        from,
                        mla,
                        2 << 10,
                        TrafficClass::High,
                        msg_token(3, req, aux),
                    );
                }
                BoxEvent::AuxDone(req) => {
                    let (measured, mla_arrival, row, mla_col, tla) = {
                        let r = &self.requests[req as usize];
                        (r.measured, r.mla_arrival, r.row, r.mla_col, r.tla)
                    };
                    if measured {
                        self.mla_lat.record(now.since(mla_arrival));
                    }
                    let mla = topo.index_node(row, mla_col);
                    self.net.send(
                        now,
                        mla,
                        topo.tla_node(tla),
                        4 << 10,
                        TrafficClass::High,
                        msg_token(4, req, 0),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(secondary: SecondaryKind, seed: u64) -> ClusterConfig {
        ClusterConfig {
            topology: Topology::small(),
            qps_total: 600.0,
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(600),
            ..ClusterConfig::paper_cluster(secondary, seed)
        }
    }

    #[test]
    fn small_cluster_completes_requests() {
        let report = ClusterSim::new(small_config(SecondaryKind::none(), 3)).run();
        assert!(report.completed > 300, "completed {}", report.completed);
        assert_eq!(report.degraded, 0, "no drops in an idle cluster");
        // Layering: local <= MLA <= TLA on averages.
        assert!(report.mla.avg >= report.local.avg);
        assert!(report.tla.avg >= report.mla.avg);
        assert!(
            report.tla.p99 < SimDuration::from_millis(60),
            "tla p99 {}",
            report.tla.p99
        );
    }

    /// The tentpole oracle: a speculative run must be byte-identical to
    /// the conservative serial run — rollbacks cost time, never accuracy.
    /// The bully/HDFS secondary keeps every box busy so sessions actually
    /// start, release, and roll back.
    #[test]
    fn speculative_run_is_byte_identical_to_serial() {
        let secondary = SecondaryKind {
            cpu_bully: Some(workloads::BullyIntensity::Mid),
            disk_bully: None,
            hdfs: true,
        };
        let base = ClusterSim::new(small_config(secondary.clone(), 11)).run();
        let mut cfg = small_config(secondary, 11);
        cfg.speculation = crate::speculate::SpeculationConfig {
            enabled: true,
            window: SimDuration::from_micros(800),
            checkpoint_stride: 4,
        };
        let (spec, stats) = ClusterSim::new(cfg).run_with_speculation_stats();
        assert!(stats.sessions > 0, "speculation never engaged: {stats:?}");
        assert!(stats.released_steps > 0, "no speculated step was released");
        assert_eq!(
            serde_json::to_string(&base).expect("report serializes"),
            serde_json::to_string(&spec).expect("report serializes"),
            "speculative report diverged from serial (stats {stats:?})"
        );
    }

    /// Speculation composed with the worker pool must still match the
    /// serial conservative run (sessions fan out across threads).
    #[test]
    fn speculative_parallel_run_matches_serial() {
        let base = ClusterSim::new(small_config(SecondaryKind::none(), 12)).run();
        let mut cfg = small_config(SecondaryKind::none(), 12);
        cfg.threads = 4;
        cfg.min_par_boxes = 2;
        cfg.speculation = crate::speculate::SpeculationConfig {
            enabled: true,
            ..Default::default()
        };
        let (spec, stats) = ClusterSim::new(cfg).run_with_speculation_stats();
        assert!(stats.sessions > 0, "speculation never engaged: {stats:?}");
        assert_eq!(
            serde_json::to_string(&base).expect("report serializes"),
            serde_json::to_string(&spec).expect("report serializes"),
            "pooled speculative report diverged from serial"
        );
    }

    /// Satellite of the speculation work: the fan-out threshold is now a
    /// config knob. A threshold past the box count forces the serial
    /// advance path even with a pool; the result must not change.
    #[test]
    fn min_par_boxes_is_configurable() {
        let base = ClusterSim::new(small_config(SecondaryKind::none(), 13)).run();
        let mut cfg = small_config(SecondaryKind::none(), 13);
        cfg.threads = 3;
        cfg.min_par_boxes = usize::MAX;
        let alt = ClusterSim::new(cfg).run();
        assert_eq!(
            serde_json::to_string(&base).expect("serializes"),
            serde_json::to_string(&alt).expect("serializes"),
        );
    }

    /// Regression for the same-instant delivery-order contract the step
    /// batch (and speculation's rollback decisions) rely on: the drained
    /// sequence is time-sorted, deliveries landing at the *same* instant
    /// keep send order (the fabric's FIFO tiebreak), and the whole
    /// sequence is reproducible run to run.
    #[test]
    fn same_instant_deliveries_drain_deterministically() {
        let run = |seed: u64| -> Vec<(u64, simcore::SimTime)> {
            // Zero jitter: identical-size messages from distinct sources
            // land at identical instants, forcing the tiebreak.
            let cfg = NetConfig {
                jitter_mean: SimDuration::ZERO,
                ..NetConfig::default()
            };
            let mut net = NetSim::new(cfg, 16, seed);
            let t0 = SimTime::from_micros(100);
            for k in 0..8u64 {
                net.send(t0, NodeId(k as u32), NodeId(15), 256, TrafficClass::High, k);
            }
            net.advance_to(SimTime::from_millis(20));
            let mut got = Vec::new();
            net.drain_deliveries_into(&mut got);
            got.into_iter().map(|d| (d.token, d.at)).collect()
        };
        let a = run(77);
        assert_eq!(a.len(), 8);
        assert!(
            a.windows(2).all(|w| w[0].1 <= w[1].1),
            "delivery times must be non-decreasing: {a:?}"
        );
        assert!(
            a.windows(2).any(|w| w[0].1 == w[1].1),
            "test lost its same-instant collisions: {a:?}"
        );
        assert!(
            a.windows(2).all(|w| w[0].1 < w[1].1 || w[0].0 < w[1].0),
            "same-instant deliveries must keep send order: {a:?}"
        );
        assert_eq!(a, run(77), "delivery sequence must be reproducible");
    }

    #[test]
    fn blind_isolation_holds_in_cluster() {
        let base = ClusterSim::new(small_config(SecondaryKind::none(), 5)).run();
        let colo = ClusterSim::new(small_config(
            SecondaryKind {
                cpu_bully: Some(workloads::BullyIntensity::High),
                disk_bully: None,
                hdfs: true,
            },
            5,
        ))
        .run();
        let degr = colo.tla.p99.saturating_sub(base.tla.p99);
        assert!(
            degr < SimDuration::from_millis(4),
            "cluster TLA p99 degradation {degr} (colo {} vs base {})",
            colo.tla.p99,
            base.tla.p99
        );
        assert!(colo.mean_utilization > base.mean_utilization + 0.2);
    }
}
